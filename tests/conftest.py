"""Shared fixtures: tiny machines and small workloads for fast tests.

Also installs a global per-test timeout (``REPRO_TEST_TIMEOUT``
seconds, default 300) via ``SIGALRM``, so a hung worker — exactly what
the chaos tests provoke on purpose — fails the test instead of
stalling the whole suite.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.config import CacheGeometry, MachineConfig

TEST_TIMEOUT_ENV = "REPRO_TEST_TIMEOUT"


@pytest.fixture(autouse=True)
def _global_test_timeout():
    """Fail any test that runs longer than the global timeout."""
    seconds = int(os.environ.get(TEST_TIMEOUT_ENV, "300"))
    if (
        seconds <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the global {seconds}s timeout "
            f"({TEST_TIMEOUT_ENV})"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """A 2-core machine small enough for sub-second runs."""
    return MachineConfig.tiny()


@pytest.fixture
def small_machine() -> MachineConfig:
    """A mid-size machine with realistic geometry ratios."""
    return MachineConfig(
        name="small",
        num_cores=2,
        l1=CacheGeometry(num_sets=4, associativity=4),
        l2=CacheGeometry(num_sets=16, associativity=4),
        l3=CacheGeometry(num_sets=64, associativity=8),
        period_cycles=5_000,
    )


@pytest.fixture
def scaled_machine() -> MachineConfig:
    """The default experiment machine (heavier; use sparingly)."""
    return MachineConfig.scaled_nehalem()
