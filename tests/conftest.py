"""Shared fixtures: tiny machines and small workloads for fast tests."""

from __future__ import annotations

import pytest

from repro.config import CacheGeometry, MachineConfig


@pytest.fixture
def tiny_machine() -> MachineConfig:
    """A 2-core machine small enough for sub-second runs."""
    return MachineConfig.tiny()


@pytest.fixture
def small_machine() -> MachineConfig:
    """A mid-size machine with realistic geometry ratios."""
    return MachineConfig(
        name="small",
        num_cores=2,
        l1=CacheGeometry(num_sets=4, associativity=4),
        l2=CacheGeometry(num_sets=16, associativity=4),
        l3=CacheGeometry(num_sets=64, associativity=8),
        period_cycles=5_000,
    )


@pytest.fixture
def scaled_machine() -> MachineConfig:
    """The default experiment machine (heavier; use sparingly)."""
    return MachineConfig.scaled_nehalem()
