"""Robustness: seed stability and unusual-but-legal topologies."""

from __future__ import annotations

import pytest

from repro import CaerConfig, MachineConfig, benchmark, caer_factory
from repro.arch.chip import MulticoreChip
from repro.caer.runtime import CaerRuntime
from repro.sim import run_colocated, run_solo
from repro.sim.engine import SimulationEngine
from repro.sim.process import AppClass, SimProcess
from repro.workloads import synthetic

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines


class TestSeedStability:
    """Different seeds must not change the qualitative story."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mcf_stays_sensitive(self, seed):
        mcf = benchmark("429.mcf", L3, length=0.03)
        lbm = benchmark("470.lbm", L3, length=0.03)
        solo = run_solo(mcf, MACHINE, seed=seed)
        colo = run_colocated(mcf, lbm, MACHINE, seed=seed)
        slowdown = (
            colo.latency_sensitive().completion_periods
            / solo.latency_sensitive().completion_periods
        )
        assert slowdown > 1.2

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_namd_stays_insensitive(self, seed):
        namd = benchmark("444.namd", L3, length=0.03)
        lbm = benchmark("470.lbm", L3, length=0.03)
        solo = run_solo(namd, MACHINE, seed=seed)
        colo = run_colocated(namd, lbm, MACHINE, seed=seed)
        slowdown = (
            colo.latency_sensitive().completion_periods
            / solo.latency_sensitive().completion_periods
        )
        assert slowdown < 1.1

    def test_same_seed_is_deterministic(self):
        mcf = benchmark("429.mcf", L3, length=0.02)
        lbm = benchmark("470.lbm", L3, length=0.02)
        first = run_colocated(
            mcf, lbm, MACHINE,
            caer_factory=caer_factory(CaerConfig.shutter()),
            seed=5,
        )
        second = run_colocated(
            mcf, lbm, MACHINE,
            caer_factory=caer_factory(CaerConfig.shutter()),
            seed=5,
        )
        assert (
            first.latency_sensitive().llc_miss_series()
            == second.latency_sensitive().llc_miss_series()
        )
        assert first.caer_log == second.caer_log


class TestMultipleLatencySensitiveApps:
    """The Figure 4 vision also allows several latency-sensitive apps;
    the table sums their miss pressure."""

    def make_engine(self, config: CaerConfig) -> SimulationEngine:
        chip = MulticoreChip(MACHINE)
        ls_a = SimProcess(
            synthetic.zipf_worker(
                lines=int(0.4 * L3), alpha=0.7,
                instructions=120_000.0,
            ),
            0,
            name="ls-a",
            seed=1,
        )
        ls_b = SimProcess(
            synthetic.zipf_worker(
                lines=int(0.4 * L3), alpha=0.7,
                instructions=120_000.0,
            ),
            1,
            name="ls-b",
            seed=2,
        )
        batch = SimProcess(
            synthetic.streamer(lines=4 * L3, instructions=60_000.0),
            2,
            AppClass.BATCH,
            name="batch",
            relaunch=True,
            seed=3,
        )
        engine = SimulationEngine(chip, [ls_a, ls_b, batch])
        engine.period_hooks.append(CaerRuntime(engine, config))
        return engine

    def test_runs_to_completion_and_throttles(self):
        engine = self.make_engine(CaerConfig.rule_based())
        result = engine.run()
        assert result.process("ls-a").first_completion_period is not None
        assert result.process("ls-b").first_completion_period is not None
        from repro.sim.process import ProcessState

        batch = result.process("batch")
        assert ProcessState.PAUSED in batch.states

    def test_table_aggregates_both_ls_apps(self):
        engine = self.make_engine(CaerConfig.rule_based())
        runtime = engine.period_hooks[-1]
        engine.run()
        row_a = runtime.table.row("ls-a")
        row_b = runtime.table.row("ls-b")
        assert row_a.samples_published > 0
        assert row_b.samples_published > 0
        assert runtime.table.latency_sensitive_mean() >= max(
            row_a.llc_misses.mean(), row_b.llc_misses.mean()
        )
