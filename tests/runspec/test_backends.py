"""Execution backends: registry, parity with hand-built scenarios."""

from __future__ import annotations

import pytest

from repro.caer.runtime import CaerConfig, caer_factory
from repro.errors import ConfigError, SchedulingError
from repro.obs import RingBufferSink, Tracer
from repro.runspec import (
    BATCH_BENCHMARK,
    ContenderSpec,
    RunSpec,
    backend_names,
    execute,
    execute_run,
    get_backend,
    paper_run_spec,
    register_backend,
)
from repro.sim.scenario import run_colocated, run_solo
from repro.workloads import benchmark

LENGTH = 0.02


class TestRegistry:
    def test_both_engines_registered(self):
        assert backend_names() == ("sim", "statistical")

    def test_unknown_backend_names_the_known_ones(self):
        with pytest.raises(ConfigError, match="sim, statistical"):
            get_backend("quantum")

    def test_duplicate_registration_refused(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_backend("sim", get_backend("sim"))

    def test_replace_allows_override(self):
        original = get_backend("sim")
        register_backend("sim", original, replace=True)
        assert get_backend("sim") is original

    def test_executing_an_unknown_backend_fails(self):
        spec = RunSpec(victim="429.mcf", length=LENGTH, backend="quantum")
        with pytest.raises(ConfigError, match="unknown backend"):
            execute(spec)


class TestSimParity:
    """The sim backend is bit-identical to the hand-built scenarios."""

    def test_solo_matches_run_solo(self, scaled_machine):
        spec = paper_run_spec(
            "429.mcf", "solo", scaled_machine, length=LENGTH
        )
        via_spec = execute(spec)
        workload = benchmark(
            "429.mcf", scaled_machine.l3.capacity_lines, length=LENGTH
        )
        direct = run_solo(workload, scaled_machine, seed=0)
        assert via_spec.latency_sensitive().completion_periods == (
            direct.latency_sensitive().completion_periods
        )
        assert via_spec.latency_sensitive().llc_miss_series() == (
            direct.latency_sensitive().llc_miss_series()
        )

    @pytest.mark.parametrize("config", ["raw", "rule"])
    def test_colocated_matches_run_colocated(self, scaled_machine, config):
        spec = paper_run_spec(
            "429.mcf", config, scaled_machine, length=LENGTH
        )
        via_spec = execute(spec)
        lines = scaled_machine.l3.capacity_lines
        factory = (
            None if spec.caer is None else caer_factory(spec.caer)
        )
        direct = run_colocated(
            benchmark("429.mcf", lines, length=LENGTH),
            benchmark(BATCH_BENCHMARK, lines, length=LENGTH),
            scaled_machine,
            caer_factory=factory,
            seed=0,
        )
        assert via_spec.latency_sensitive().completion_periods == (
            direct.latency_sensitive().completion_periods
        )
        assert via_spec.latency_sensitive().llc_miss_series() == (
            direct.latency_sensitive().llc_miss_series()
        )
        assert via_spec.total_periods == direct.total_periods


class TestStatisticalBackend:
    def test_executes_and_differs_from_sim(self, scaled_machine):
        spec = paper_run_spec(
            "429.mcf", "rule", scaled_machine, length=LENGTH,
            backend="statistical",
        )
        outcome = execute_run(spec)
        assert outcome.backend == "statistical"
        assert outcome.completion_periods > 0
        assert outcome.digest == spec.digest

    def test_caer_hook_engages(self, scaled_machine):
        raw = execute_run(
            paper_run_spec("429.mcf", "raw", scaled_machine,
                           length=LENGTH, backend="statistical"),
            keep_series=False,
        )
        managed = execute_run(
            paper_run_spec("429.mcf", "rule", scaled_machine,
                           length=LENGTH, backend="statistical"),
            keep_series=False,
        )
        assert managed.completion_periods <= raw.completion_periods


class TestExecuteRun:
    def test_outcome_carries_identity_and_telemetry(self, scaled_machine):
        spec = paper_run_spec(
            "429.mcf", "rule", scaled_machine, length=LENGTH
        )
        outcome = execute_run(spec)
        assert outcome.digest == spec.digest
        assert outcome.config == "rule"
        assert outcome.telemetry["spec_digest"] == spec.digest
        assert outcome.telemetry["backend"] == "sim"
        assert "detector_trigger_rate" in outcome.telemetry["derived"]
        assert outcome.wall_seconds > 0.0

    def test_keep_series_false_drops_series(self, scaled_machine):
        spec = paper_run_spec(
            "429.mcf", "solo", scaled_machine, length=LENGTH
        )
        outcome = execute_run(spec, keep_series=False)
        assert outcome.miss_series == []
        assert outcome.instruction_series == []

    def test_too_many_contenders_rejected(self, scaled_machine):
        spec = RunSpec(
            victim="429.mcf",
            contenders=(ContenderSpec(BATCH_BENCHMARK),)
            * scaled_machine.num_cores,
            machine=scaled_machine,
            length=LENGTH,
        )
        with pytest.raises(SchedulingError, match="cores"):
            execute_run(spec)


class TestTracing:
    def test_execute_emits_runspec_event(self, scaled_machine):
        spec = paper_run_spec(
            "429.mcf", "rule", scaled_machine, length=LENGTH
        )
        sink = RingBufferSink()
        tracer = Tracer([sink])
        execute(spec, tracer=tracer)
        events = sink.by_kind("run_spec")
        assert len(events) == 1
        assert events[0].digest == spec.digest
        assert events[0].backend == "sim"
        assert events[0].victim == "429.mcf"
        assert events[0].contenders == 1
