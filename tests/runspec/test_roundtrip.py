"""Satellite: spec round-trip identity, in value, digest, and execution."""

from __future__ import annotations

import pytest

from repro.caer.runtime import CaerConfig
from repro.runspec import (
    BATCH_BENCHMARK,
    ContenderSpec,
    RunSpec,
    execute_run,
    paper_run_spec,
)

LENGTH = 0.02


def spec_corpus(machine) -> list[RunSpec]:
    """A spread of representative specs covering every field."""
    return [
        paper_run_spec("429.mcf", "solo", machine, length=LENGTH),
        paper_run_spec("429.mcf", "raw", machine, length=LENGTH),
        paper_run_spec("462.libquantum", "rule", machine, seed=3,
                       length=LENGTH),
        paper_run_spec("429.mcf", "rule", machine, length=LENGTH,
                       backend="statistical"),
        RunSpec(
            victim="444.namd",
            contenders=(
                ContenderSpec(BATCH_BENCHMARK),
                ContenderSpec(BATCH_BENCHMARK, relaunch=False,
                              launch_period=2),
            ),
            machine=machine,
            caer=CaerConfig.shutter(),
            seed=11,
            length=LENGTH,
            slices_per_period=4,
            launch_stagger=5,
        ),
    ]


def test_json_round_trip_is_identity(scaled_machine):
    for spec in spec_corpus(scaled_machine):
        rebuilt = RunSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.digest == spec.digest
        assert rebuilt.to_json() == spec.to_json()


def test_dict_round_trip_is_identity(scaled_machine):
    for spec in spec_corpus(scaled_machine):
        assert RunSpec.from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("config", ["solo", "rule"])
def test_rebuilt_spec_executes_bit_identically(scaled_machine, config):
    spec = paper_run_spec("429.mcf", config, scaled_machine,
                          length=LENGTH)
    rebuilt = RunSpec.from_json(spec.to_json())
    original = execute_run(spec)
    again = execute_run(rebuilt)
    # RunOutcome equality excludes wall_seconds/telemetry, so this is a
    # field-by-field comparison of the simulated quantities, series
    # included.
    assert again == original
    assert again.miss_series == original.miss_series
    assert again.instruction_series == original.instruction_series


def test_rebuilt_statistical_spec_executes_identically(scaled_machine):
    spec = paper_run_spec("429.mcf", "rule", scaled_machine,
                          length=LENGTH, backend="statistical")
    rebuilt = RunSpec.from_json(spec.to_json())
    assert execute_run(rebuilt) == execute_run(spec)
