"""RunSpec: validation, canonical serialization, digest sensitivity."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.caer.runtime import CaerConfig
from repro.config import MachineConfig
from repro.errors import ConfigError, ExperimentError
from repro.faults import FaultPlan
from repro.runspec import (
    BATCH_BENCHMARK,
    SPEC_VERSION,
    ContenderSpec,
    RunSpec,
    paper_run_spec,
)

MACHINE = MachineConfig.scaled_nehalem()


def colocated_spec(**overrides) -> RunSpec:
    base = dict(
        victim="429.mcf",
        contenders=(ContenderSpec(BATCH_BENCHMARK),),
        machine=MACHINE,
        caer=CaerConfig.rule_based(),
        seed=0,
        length=0.02,
    )
    base.update(overrides)
    return RunSpec(**base)


class TestValidation:
    def test_empty_victim_rejected(self):
        with pytest.raises(ConfigError, match="victim"):
            RunSpec(victim="")

    def test_caer_without_contenders_rejected(self):
        with pytest.raises(ConfigError, match="contender"):
            RunSpec(victim="429.mcf", caer=CaerConfig.rule_based())

    def test_non_positive_length_rejected(self):
        with pytest.raises(ConfigError, match="length"):
            RunSpec(victim="429.mcf", length=0.0)

    def test_contender_list_coerced_to_tuple(self):
        spec = RunSpec(
            victim="429.mcf",
            contenders=[ContenderSpec(BATCH_BENCHMARK)],
        )
        assert isinstance(spec.contenders, tuple)
        hash(spec)  # stays hashable

    def test_negative_launch_period_rejected(self):
        with pytest.raises(ConfigError, match="launch_period"):
            ContenderSpec("470.lbm", launch_period=-1)

    def test_empty_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            RunSpec(victim="429.mcf", backend="")


class TestCanonicalForm:
    def test_json_is_compact_and_sorted(self):
        text = colocated_spec().to_json()
        data = json.loads(text)
        assert list(data) == sorted(data)
        assert ": " not in text and ", " not in text

    def test_version_tag_present(self):
        assert colocated_spec().to_dict()["version"] == SPEC_VERSION

    def test_unsupported_version_rejected(self):
        payload = colocated_spec().to_dict()
        payload["version"] = SPEC_VERSION + 1
        with pytest.raises(ConfigError, match="version"):
            RunSpec.from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(ConfigError, match="JSON"):
            RunSpec.from_json("{not json")

    def test_non_object_json_rejected(self):
        with pytest.raises(ConfigError, match="object"):
            RunSpec.from_json("[1, 2]")

    def test_bad_payload_rejected(self):
        with pytest.raises(ConfigError):
            RunSpec.from_dict({"version": SPEC_VERSION, "victim": "x",
                               "machine": {"bogus": 1}})

    def test_faulted_spec_round_trips(self):
        spec = colocated_spec(faults=FaultPlan.scaled(0.5, seed=7))
        again = RunSpec.from_json(spec.to_json())
        assert again == spec and again.digest == spec.digest

    def test_version_1_payload_still_accepted(self):
        payload = colocated_spec().to_dict()
        payload["version"] = 1
        payload.pop("faults")
        payload["caer"].pop("detector_params")
        payload["caer"].pop("response_params")
        spec = RunSpec.from_dict(payload)
        assert spec.faults is None

    def test_version_2_payload_still_accepted(self):
        """v2 caer payloads predate the plugin-parameter mappings."""
        payload = colocated_spec().to_dict()
        payload["version"] = 2
        payload["caer"].pop("detector_params")
        payload["caer"].pop("response_params")
        spec = RunSpec.from_dict(payload)
        assert spec.caer is not None
        assert spec.caer.detector_params == ()
        assert spec.caer.response_params == ()


class TestDigest:
    def test_equal_specs_share_a_digest(self):
        assert colocated_spec().digest == colocated_spec().digest

    @pytest.mark.parametrize(
        "overrides",
        [
            {"victim": "444.namd"},
            {"contenders": (), "caer": None},
            {"contenders": (ContenderSpec(BATCH_BENCHMARK),) * 2},
            {"contenders": (ContenderSpec(BATCH_BENCHMARK,
                                          relaunch=False),)},
            {"caer": None},
            {"caer": CaerConfig.shutter()},
            {"caer": CaerConfig.rule_based(
                detector_params={"train_periods": 16})},
            {"caer": CaerConfig.rule_based(
                response_params={"hold": 5})},
            {"seed": 1},
            {"length": 0.04},
            {"slices_per_period": 4},
            {"launch_stagger": 5},
            {"backend": "statistical"},
            {"machine": MachineConfig.scaled_nehalem(cache_scale=32)},
            {"faults": FaultPlan()},
            {"faults": FaultPlan(drop_rate=0.1)},
        ],
    )
    def test_every_field_moves_the_digest(self, overrides):
        assert colocated_spec(**overrides).digest != colocated_spec().digest

    def test_no_collision_across_config_tags(self):
        digests = {
            paper_run_spec("429.mcf", config, MACHINE).digest
            for config in ("solo", "raw", "shutter", "rule", "random")
        }
        assert len(digests) == 5

    def test_with_backend_only_moves_backend(self):
        spec = colocated_spec()
        flipped = spec.with_backend("statistical")
        assert flipped.backend == "statistical"
        assert dataclasses.replace(flipped, backend="sim") == spec


class TestPaperSpecs:
    def test_solo_has_no_contenders(self):
        spec = paper_run_spec("429.mcf", "solo", MACHINE)
        assert spec.contenders == () and spec.caer is None
        assert spec.config_tag == "solo"

    def test_raw_has_contender_but_no_caer(self):
        spec = paper_run_spec("429.mcf", "raw", MACHINE)
        assert spec.contenders[0].bench == BATCH_BENCHMARK
        assert spec.caer is None and spec.config_tag == "raw"

    @pytest.mark.parametrize("tag", ["shutter", "rule", "random"])
    def test_caer_tags_recovered_from_policy(self, tag):
        spec = paper_run_spec("429.mcf", tag, MACHINE)
        assert spec.config_tag == tag
        assert spec.describe() == f"(429.mcf, {tag})"

    def test_unknown_tag_rejected_listing_choices(self):
        with pytest.raises(ExperimentError, match="shutter"):
            paper_run_spec("429.mcf", "psychic", MACHINE)

    @pytest.mark.parametrize(
        "name", ["gmm-fence", "cdf-quantile", "proactive-analytic"]
    )
    def test_registry_detector_names_resolve(self, name):
        spec = paper_run_spec("429.mcf", name, MACHINE)
        assert spec.caer is not None
        assert spec.caer.detector == name
        assert spec.caer.response == "soft-lock"

    def test_detector_plus_response_syntax(self):
        spec = paper_run_spec("429.mcf", "gmm-fence+rlgl", MACHINE)
        assert spec.caer.detector == "gmm-fence"
        assert spec.caer.response == "rlgl"

    def test_unknown_response_rejected_listing_choices(self):
        with pytest.raises(ExperimentError, match="soft-lock"):
            paper_run_spec("429.mcf", "gmm-fence+prayer", MACHINE)
