"""End-to-end integration: the paper's story on small scenarios.

These tests exercise the full stack — workload models, cache hierarchy,
memory channel, engine, perfmon, CAER runtime, metrics — and assert the
*directional* results the paper is built on.
"""

from __future__ import annotations

import pytest

from repro import (
    CaerConfig,
    MachineConfig,
    benchmark,
    caer_factory,
    run_colocated,
    run_solo,
)
from repro.caer.metrics import slowdown, utilization_gained

LENGTH = 0.04
MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines


def spec(name):
    return benchmark(name, L3, length=LENGTH)


@pytest.fixture(scope="module")
def mcf_solo():
    return run_solo(spec("429.mcf"), MACHINE)


@pytest.fixture(scope="module")
def mcf_raw(mcf_solo):
    return run_colocated(spec("429.mcf"), spec("470.lbm"), MACHINE)


class TestContentionEmergence:
    def test_lbm_slows_mcf_substantially(self, mcf_solo, mcf_raw):
        assert slowdown(mcf_raw, mcf_solo) > 1.2

    def test_lbm_barely_slows_namd(self):
        solo = run_solo(spec("444.namd"), MACHINE)
        raw = run_colocated(spec("444.namd"), spec("470.lbm"), MACHINE)
        assert slowdown(raw, solo) < 1.1

    def test_misses_and_retirement_anticorrelate(self):
        """Figure 3's premise on the phased xalancbmk model."""
        result = run_solo(spec("483.xalancbmk"), MACHINE)
        ls = result.latency_sensitive()
        misses = ls.llc_miss_series()
        instructions = ls.instruction_series()
        from repro.experiments.figures import _pearson

        assert _pearson(misses, instructions) < -0.5

    def test_inclusion_invariant_after_full_run(self):
        from repro.arch.chip import MulticoreChip
        from repro.sim.engine import SimulationEngine
        from repro.sim.process import AppClass, SimProcess

        chip = MulticoreChip(MACHINE)
        ls = SimProcess(spec("429.mcf"), 0)
        batch = SimProcess(
            spec("470.lbm"), 1, AppClass.BATCH, name="b", relaunch=True
        )
        SimulationEngine(chip, [ls, batch]).run()
        assert chip.hierarchy.check_inclusion() == []


class TestCaerEffectiveness:
    @pytest.mark.parametrize("config_name", ["shutter", "rule_based"])
    def test_caer_reduces_mcf_penalty(
        self, config_name, mcf_solo, mcf_raw
    ):
        config = getattr(CaerConfig, config_name)()
        managed = run_colocated(
            spec("429.mcf"), spec("470.lbm"), MACHINE,
            caer_factory=caer_factory(config),
        )
        raw_penalty = slowdown(mcf_raw, mcf_solo) - 1.0
        managed_penalty = slowdown(managed, mcf_solo) - 1.0
        assert managed_penalty < 0.6 * raw_penalty

    def test_caer_keeps_utilization_for_insensitive_victim(self):
        managed = run_colocated(
            spec("444.namd"), spec("470.lbm"), MACHINE,
            caer_factory=caer_factory(CaerConfig.rule_based()),
        )
        assert utilization_gained(managed) > 0.5

    def test_caer_sacrifices_utilization_for_sensitive_victim(self):
        managed = run_colocated(
            spec("429.mcf"), spec("470.lbm"), MACHINE,
            caer_factory=caer_factory(CaerConfig.rule_based()),
        )
        assert utilization_gained(managed) < 0.4

    def test_heuristics_straddle_random_baseline(self):
        """Equation 2's sign structure on one sensitive victim."""
        random_run = run_colocated(
            spec("429.mcf"), spec("470.lbm"), MACHINE,
            caer_factory=caer_factory(CaerConfig.random_baseline()),
        )
        rule_run = run_colocated(
            spec("429.mcf"), spec("470.lbm"), MACHINE,
            caer_factory=caer_factory(CaerConfig.rule_based()),
        )
        assert (
            utilization_gained(rule_run)
            < utilization_gained(random_run)
        )

    def test_decision_log_has_both_phases(self):
        managed = run_colocated(
            spec("429.mcf"), spec("470.lbm"), MACHINE,
            caer_factory=caer_factory(CaerConfig.shutter()),
        )
        states = {d["state"] for d in managed.caer_log}
        assert "detect" in states
        assert states & {"respond", "c-positive", "c-negative"}
