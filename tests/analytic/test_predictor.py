"""Cross-validation: analytic predictor vs. the trace-driven simulator."""

from __future__ import annotations

import pytest

from repro.analytic.predictor import predict_colocation, predict_solo
from repro.config import MachineConfig
from repro.sim import run_colocated, run_solo
from repro.workloads import synthetic


def simulated_slowdown(victim, contender, machine) -> float:
    solo = run_solo(victim, machine)
    colo = run_colocated(victim, contender, machine)
    return (
        colo.latency_sensitive().completion_periods
        / solo.latency_sensitive().completion_periods
    )


class TestDirectional:
    def test_streamer_hurts_reuse_victim(self, scaled_machine):
        victim = synthetic.zipf_worker(lines=6000, alpha=0.8)
        contender = synthetic.streamer(lines=40_000)
        prediction = predict_colocation(victim, contender, scaled_machine)
        assert prediction.slowdown > 1.15
        assert prediction.victim_occupancy_fraction < 0.6

    def test_compute_bound_victim_unharmed(self, scaled_machine):
        victim = synthetic.compute_bound()
        contender = synthetic.streamer(lines=40_000)
        prediction = predict_colocation(victim, contender, scaled_machine)
        assert prediction.slowdown < 1.1

    def test_bigger_working_set_costs_more_alone(self, scaled_machine):
        small = predict_solo(
            synthetic.zipf_worker(lines=200), scaled_machine
        )
        large = predict_solo(
            synthetic.zipf_worker(lines=20_000), scaled_machine
        )
        assert large > small


class TestCrossValidation:
    @pytest.mark.parametrize(
        "victim_lines,contender_lines",
        [(6000, 40_000), (2000, 40_000)],
    )
    def test_agrees_with_simulator(
        self, scaled_machine, victim_lines, contender_lines
    ):
        """Predictor and simulator must agree within 20% on slowdown."""
        victim = synthetic.zipf_worker(
            lines=victim_lines, alpha=0.8, instructions=120_000.0
        )
        contender = synthetic.streamer(
            lines=contender_lines, instructions=80_000.0
        )
        predicted = predict_colocation(
            victim, contender, scaled_machine
        ).slowdown
        simulated = simulated_slowdown(victim, contender, scaled_machine)
        assert predicted == pytest.approx(simulated, rel=0.35)

    def test_ranks_victims_like_simulator(self, scaled_machine):
        contender = synthetic.streamer(
            lines=40_000, instructions=80_000.0
        )
        sensitive = synthetic.zipf_worker(
            lines=7000, alpha=0.6, instructions=120_000.0
        )
        insensitive = synthetic.zipf_worker(
            lines=300, alpha=1.2, instructions=120_000.0
        )
        pred_gap = (
            predict_colocation(sensitive, contender, scaled_machine).slowdown
            - predict_colocation(
                insensitive, contender, scaled_machine
            ).slowdown
        )
        sim_gap = simulated_slowdown(
            sensitive, contender, scaled_machine
        ) - simulated_slowdown(insensitive, contender, scaled_machine)
        assert pred_gap > 0
        assert sim_gap > 0


class TestPhasedPrediction:
    def test_single_phase_matches_dominant(self, scaled_machine):
        from repro.analytic.predictor import predict_colocation_phased

        victim = synthetic.zipf_worker(lines=5_000, alpha=0.8)
        contender = synthetic.streamer(lines=40_000)
        dominant = predict_colocation(
            victim, contender, scaled_machine
        ).slowdown
        phased = predict_colocation_phased(
            victim, contender, scaled_machine
        )
        assert phased == pytest.approx(dominant, rel=0.02)

    def test_phased_weights_all_phases(self, scaled_machine):
        """A workload whose dominant phase is quiet must still show the
        heavy phase's contention in the phased prediction."""
        from repro.analytic.predictor import (
            predict_colocation,
            predict_colocation_phased,
        )
        from repro.workloads import synthetic as syn

        victim = syn.phased_worker(
            heavy_lines=8_000,
            light_lines=50,
            heavy_instructions=30_000.0,
            light_instructions=60_000.0,  # light phase dominates
        )
        contender = syn.streamer(lines=40_000)
        dominant = predict_colocation(
            victim, contender, scaled_machine
        ).slowdown
        phased = predict_colocation_phased(
            victim, contender, scaled_machine
        )
        # The dominant-phase view sees only the light phase; the
        # phased view must report more contention.
        assert phased > dominant
