"""Property-based invariants of the shared-cache occupancy model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.mrc import MissRateCurve
from repro.analytic.sharing import SharedCacheModel, SharerProfile
from repro.workloads.patterns import UniformRandomSpec, ZipfSpec


def uniform_mrc(lines: int, seed: int) -> MissRateCurve:
    pattern = UniformRandomSpec(lines=lines).instantiate(
        np.random.default_rng(seed), 0
    )
    return MissRateCurve.from_pattern(pattern, 8_000)


@st.composite
def sharer_sets(draw):
    n = draw(st.integers(2, 4))
    sharers = []
    for i in range(n):
        lines = draw(st.integers(100, 3_000))
        rate = draw(st.floats(0.05, 4.0))
        sharers.append((lines, rate, i))
    return sharers


class TestFixedPointProperties:
    @given(sharer_sets(), st.integers(256, 4_096))
    @settings(max_examples=25, deadline=None)
    def test_occupancies_partition_the_cache(self, sharers, capacity):
        model = SharedCacheModel(capacity)
        profiles = [
            SharerProfile(
                name=str(i),
                mrc=uniform_mrc(lines, seed=i),
                access_rate=rate,
            )
            for lines, rate, i in sharers
        ]
        solved = model.solve(profiles)
        total = sum(solved.values())
        assert total == pytest.approx(capacity, rel=0.02)
        for occupancy in solved.values():
            assert occupancy >= 0.0

    @given(st.integers(200, 2_000), st.floats(0.1, 3.0))
    @settings(max_examples=20, deadline=None)
    def test_shared_miss_rate_never_below_solo(self, lines, rate):
        """Sharing a cache can only hurt (or leave unchanged)."""
        capacity = 1_000
        model = SharedCacheModel(capacity)
        victim = SharerProfile(
            name="v", mrc=uniform_mrc(lines, seed=1), access_rate=1.0
        )
        contender = SharerProfile(
            name="c", mrc=uniform_mrc(4_000, seed=2), access_rate=rate
        )
        solo = victim.mrc.miss_rate(capacity)
        shared = model.miss_rates([victim, contender])["v"]
        assert shared >= solo - 1e-6

    @given(st.floats(0.2, 4.0))
    @settings(max_examples=15, deadline=None)
    def test_faster_contender_takes_monotonically_more(self, rate):
        model = SharedCacheModel(1_000)
        victim = SharerProfile(
            name="v", mrc=uniform_mrc(1_500, seed=1), access_rate=1.0
        )
        slow = SharerProfile(
            name="c", mrc=uniform_mrc(4_000, seed=2), access_rate=rate
        )
        fast = SharerProfile(
            name="c", mrc=uniform_mrc(4_000, seed=2),
            access_rate=rate * 2,
        )
        occupancy_slow = model.solve([victim, slow])["c"]
        occupancy_fast = model.solve([victim, fast])["c"]
        assert occupancy_fast >= occupancy_slow - 1.0


class TestZipfSharers:
    def test_hot_reuse_survives_a_streamer(self):
        """Strong reuse keeps a useful share even against a streamer."""
        model = SharedCacheModel(1_000)
        hot = SharerProfile(
            name="hot",
            mrc=MissRateCurve.from_pattern(
                ZipfSpec(lines=800, alpha=1.5).instantiate(
                    np.random.default_rng(3), 0
                ),
                8_000,
            ),
            access_rate=1.0,
        )
        streamer = SharerProfile(
            name="stream",
            mrc=uniform_mrc(8_000, seed=4),
            access_rate=1.0,
        )
        rates = model.miss_rates([hot, streamer])
        # The zipf sharer keeps the bulk of its hits.
        assert rates["hot"] < 0.5
