"""Shared-cache fixed-point occupancy model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.mrc import MissRateCurve
from repro.analytic.sharing import SharedCacheModel, SharerProfile
from repro.errors import ExperimentError
from repro.workloads.patterns import (
    SequentialStreamSpec,
    UniformRandomSpec,
    ZipfSpec,
)


def profile(name, spec, rate=1.0, seed=0) -> SharerProfile:
    pattern = spec.instantiate(np.random.default_rng(seed), 0)
    return SharerProfile(
        name=name,
        mrc=MissRateCurve.from_pattern(pattern, 20_000),
        access_rate=rate,
    )


class TestSolve:
    def test_single_sharer_owns_everything(self):
        model = SharedCacheModel(1000)
        solved = model.solve([profile("a", UniformRandomSpec(lines=500))])
        assert solved["a"] == 1000.0

    def test_symmetric_sharers_split_evenly(self):
        model = SharedCacheModel(1000)
        a = profile("a", UniformRandomSpec(lines=2000), seed=1)
        b = profile("b", UniformRandomSpec(lines=2000), seed=2)
        solved = model.solve([a, b])
        assert solved["a"] == pytest.approx(solved["b"], rel=0.1)
        assert solved["a"] + solved["b"] == pytest.approx(1000.0, rel=0.01)

    def test_streamer_dominates_reuse_app(self):
        """A no-reuse stream inserts relentlessly and wins occupancy."""
        model = SharedCacheModel(1000)
        streamer = profile(
            "stream", SequentialStreamSpec(lines=10_000, line_repeats=1)
        )
        reuser = profile("reuse", ZipfSpec(lines=800, alpha=1.2))
        solved = model.solve([streamer, reuser])
        assert solved["stream"] > solved["reuse"]

    def test_faster_sharer_holds_more(self):
        model = SharedCacheModel(1000)
        fast = profile("fast", UniformRandomSpec(lines=2000), rate=4.0,
                       seed=1)
        slow = profile("slow", UniformRandomSpec(lines=2000), rate=1.0,
                       seed=2)
        solved = model.solve([fast, slow])
        assert solved["fast"] > 2 * solved["slow"]

    def test_miss_rates_consistent_with_occupancy(self):
        model = SharedCacheModel(1000)
        a = profile("a", UniformRandomSpec(lines=2000), seed=1)
        b = profile("b", UniformRandomSpec(lines=2000), seed=2)
        occupancy = model.solve([a, b])
        rates = model.miss_rates([a, b])
        assert rates["a"] == pytest.approx(
            a.mrc.miss_rate(occupancy["a"]), abs=1e-6
        )

    def test_contention_raises_miss_rate(self):
        capacity = 1000
        model = SharedCacheModel(capacity)
        victim = profile("v", UniformRandomSpec(lines=900), seed=1)
        solo_rate = victim.mrc.miss_rate(capacity)
        contender = profile(
            "c", SequentialStreamSpec(lines=10_000, line_repeats=1),
            seed=2,
        )
        shared_rate = model.miss_rates([victim, contender])["v"]
        assert shared_rate > solo_rate


class TestValidation:
    def test_empty_sharers_rejected(self):
        with pytest.raises(ExperimentError):
            SharedCacheModel(100).solve([])

    def test_bad_capacity(self):
        with pytest.raises(ExperimentError):
            SharedCacheModel(0)

    def test_bad_access_rate(self):
        with pytest.raises(ExperimentError):
            SharerProfile(
                name="x",
                mrc=MissRateCurve({1: 1}, 1),
                access_rate=0.0,
            )
