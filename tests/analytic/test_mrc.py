"""Miss-rate curves for patterns with known analytic behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytic.mrc import MissRateCurve
from repro.errors import WorkloadError
from repro.workloads.patterns import (
    PointerChaseSpec,
    SequentialStreamSpec,
    UniformRandomSpec,
    ZipfSpec,
)


def curve_for(spec, samples=20_000, seed=0) -> MissRateCurve:
    pattern = spec.instantiate(np.random.default_rng(seed), 0)
    return MissRateCurve.from_pattern(pattern, samples)


class TestKnownCurves:
    def test_cyclic_scan_cliff(self):
        """A scan of N lines hits fully at size > N, not at all below."""
        curve = curve_for(
            SequentialStreamSpec(lines=100, line_repeats=1)
        )
        assert curve.miss_rate(101) == pytest.approx(
            curve.cold_fraction, abs=0.01
        )
        assert curve.miss_rate(99) > 0.95

    def test_pointer_chase_behaves_like_scan(self):
        curve = curve_for(PointerChaseSpec(lines=100))
        assert curve.miss_rate(99) > 0.95
        assert curve.miss_rate(101) == pytest.approx(
            curve.cold_fraction, abs=0.01
        )

    def test_uniform_random_miss_rate_tracks_size_ratio(self):
        """Uniform reuse over N lines: hit rate at size C ~ C/N."""
        curve = curve_for(UniformRandomSpec(lines=200))
        for size, expected in ((50, 0.25), (100, 0.5), (150, 0.75)):
            assert curve.hit_rate(size) == pytest.approx(
                expected, abs=0.08
            )

    def test_zipf_concentrates_hits_in_small_caches(self):
        zipf = curve_for(ZipfSpec(lines=500, alpha=1.5))
        uniform = curve_for(UniformRandomSpec(lines=500))
        assert zipf.hit_rate(50) > uniform.hit_rate(50) + 0.2

    def test_monotone_in_cache_size(self):
        curve = curve_for(ZipfSpec(lines=300, alpha=1.0))
        rates = [curve.miss_rate(c) for c in (1, 10, 50, 100, 300, 1000)]
        assert rates == sorted(rates, reverse=True)

    def test_zero_size_always_misses(self):
        curve = curve_for(UniformRandomSpec(lines=10))
        assert curve.miss_rate(0) == 1.0

    def test_compulsory_floor(self):
        curve = curve_for(UniformRandomSpec(lines=50), samples=5000)
        assert curve.compulsory_floor == pytest.approx(
            50 / 5000, abs=0.002
        )
        assert curve.footprint() == 50


class TestValidation:
    def test_empty_histogram_rejected(self):
        with pytest.raises(WorkloadError):
            MissRateCurve({}, 0)

    def test_negative_counts_rejected(self):
        with pytest.raises(WorkloadError):
            MissRateCurve({1: -5}, 0)

    def test_from_trace(self):
        curve = MissRateCurve.from_trace([1, 2, 1, 2])
        assert curve.hit_rate(10) == pytest.approx(0.5)
