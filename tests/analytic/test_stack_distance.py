"""Reuse-distance profiling, checked against a naive reference."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic.stack_distance import (
    COLD,
    reuse_distance_histogram,
    reuse_distances,
)
from repro.errors import WorkloadError


def naive_reuse_distances(trace):
    """Textbook O(N^2) reference: distinct lines since previous use."""
    out = []
    last = {}
    for t, addr in enumerate(trace):
        if addr not in last:
            out.append(COLD)
        else:
            out.append(len(set(trace[last[addr] + 1:t])))
        last[addr] = t
    return out


class TestKnownTraces:
    def test_all_cold(self):
        assert reuse_distances([1, 2, 3]) == [COLD, COLD, COLD]

    def test_immediate_reuse_is_distance_zero(self):
        assert reuse_distances([1, 1]) == [COLD, 0]

    def test_one_intervening_line(self):
        assert reuse_distances([1, 2, 1]) == [COLD, COLD, 1]

    def test_repeats_do_not_double_count(self):
        # Between the two 1s: lines {2, 3} -> distance 2, not 3.
        assert reuse_distances([1, 2, 2, 3, 1]) == [
            COLD, COLD, 0, COLD, 2,
        ]

    def test_cyclic_scan_distance_is_footprint_minus_one(self):
        trace = [0, 1, 2, 3] * 3
        distances = reuse_distances(trace)
        assert distances[4:] == [3] * 8

    def test_histogram(self):
        histogram, cold = reuse_distance_histogram([1, 2, 1, 2, 1])
        assert cold == 2
        assert histogram == {1: 3}


class TestAgainstReference:
    @given(st.lists(st.integers(0, 12), min_size=0, max_size=150))
    @settings(max_examples=80, deadline=None)
    def test_matches_naive_model(self, trace):
        assert reuse_distances(trace) == naive_reuse_distances(trace)


class TestSampling:
    def test_sample_trace_length(self):
        import numpy as np

        from repro.analytic.stack_distance import sample_trace
        from repro.workloads.patterns import UniformRandomSpec

        pattern = UniformRandomSpec(lines=16).instantiate(
            np.random.default_rng(0), 0
        )
        assert len(sample_trace(pattern, 100)) == 100

    def test_sample_trace_validates_length(self):
        from repro.analytic.stack_distance import sample_trace

        with pytest.raises(WorkloadError):
            sample_trace(None, 0)
