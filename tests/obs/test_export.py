"""Live telemetry: exposition rendering, HTTP endpoint, beacons, spans.

Covers the export subsystem end to end: the Prometheus text renderer
over registry snapshots, the background ``/metrics`` endpoint with a
live provider, heartbeat write/read/merge (including corrupt-file
tolerance), span-profiler activation semantics, and the integration
claim — a mid-campaign scrape observes strictly increasing
completed-run counters.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    MetricsExporter,
    PROFILER,
    activate_profiling,
    exporter_port,
    merge_beacon_metrics,
    read_beacons,
    render_prometheus,
    sanitize_metric_name,
    spans_enabled,
    start_exporter,
    write_beacon,
)
from repro.obs.export import METRICS_PORT_ENV
from repro.obs.heartbeat import BEACON_DIR_ENV, beacon_age, beacon_dir
from repro.obs.profiling import PROFILE_ENV


def _scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=5) as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode()


class TestSanitization:
    def test_dots_become_underscores(self):
        assert (
            sanitize_metric_name("sim.llc_misses.470.lbm-0")
            == "sim_llc_misses_470_lbm_0"
        )

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("4xx.count") == "_4xx_count"

    def test_valid_name_unchanged(self):
        assert sanitize_metric_name("caer_periods:rate") == \
            "caer_periods:rate"

    def test_empty_name_rejected(self):
        with pytest.raises(ObservabilityError):
            sanitize_metric_name("")


class TestRenderer:
    def test_counter_gains_total_suffix(self):
        registry = MetricsRegistry()
        registry.counter("campaign.runs_simulated").inc(3)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_campaign_runs_simulated_total counter" in text
        assert "repro_campaign_runs_simulated_total 3\n" in text
        assert "# HELP repro_campaign_runs_simulated_total" in text

    def test_gauge_passes_through(self):
        registry = MetricsRegistry()
        registry.gauge("executor.jobs").set(4)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_executor_jobs gauge" in text
        assert "repro_executor_jobs 4\n" in text

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("span.seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        text = render_prometheus(registry.snapshot())
        assert '# TYPE repro_span_seconds histogram' in text
        assert 'repro_span_seconds_bucket{le="0.1"} 2' in text
        assert 'repro_span_seconds_bucket{le="1"} 3' in text
        assert 'repro_span_seconds_bucket{le="+Inf"} 4' in text
        assert "repro_span_seconds_count 4" in text
        assert "repro_span_seconds_sum 5.6" in text

    def test_colliding_names_keep_first(self):
        snapshot = {
            "a.b": {"type": "gauge", "value": 1.0},
            "a_b": {"type": "gauge", "value": 2.0},
        }
        text = render_prometheus(snapshot)
        assert text.count("# TYPE repro_a_b gauge") == 1
        # sorted() puts "a.b" before "a_b" ('.' < '_'), so value 1 wins.
        assert "repro_a_b 1" in text
        assert "repro_a_b 2" not in text

    def test_unknown_types_are_skipped(self):
        text = render_prometheus({"weird": {"type": "mystery", "value": 1}})
        assert text == ""

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""


class TestExporterPort:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(METRICS_PORT_ENV, raising=False)
        assert exporter_port() is None
        assert start_exporter(dict) is None

    def test_valid_port(self, monkeypatch):
        monkeypatch.setenv(METRICS_PORT_ENV, "9099")
        assert exporter_port() == 9099

    @pytest.mark.parametrize("bad", ["nope", "-1", "70000"])
    def test_invalid_port_raises(self, monkeypatch, bad):
        monkeypatch.setenv(METRICS_PORT_ENV, bad)
        with pytest.raises(ObservabilityError):
            exporter_port()


class TestExporterEndpoint:
    def test_scrape_roundtrip_and_live_updates(self):
        registry = MetricsRegistry()
        registry.counter("campaign.runs_simulated").inc()
        with MetricsExporter(registry.snapshot, port=0) as exporter:
            first = _scrape(exporter.url)
            assert "repro_campaign_runs_simulated_total 1" in first
            registry.counter("campaign.runs_simulated").inc(2)
            second = _scrape(exporter.url)
            assert "repro_campaign_runs_simulated_total 3" in second

    def test_root_path_serves_metrics_too(self):
        registry = MetricsRegistry()
        registry.gauge("x").set(1)
        with MetricsExporter(registry.snapshot, port=0) as exporter:
            body = _scrape(f"http://127.0.0.1:{exporter.port}/")
            assert "repro_x 1" in body

    def test_unknown_path_404s(self):
        with MetricsExporter(dict, port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as info:
                _scrape(f"http://127.0.0.1:{exporter.port}/nope")
            assert info.value.code == 404

    def test_provider_error_is_500_not_crash(self):
        def bad_provider():
            raise RuntimeError("registry on fire")

        with MetricsExporter(bad_provider, port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as info:
                _scrape(exporter.url)
            assert info.value.code == 500
            # The endpoint survives a provider error.
            with pytest.raises(urllib.error.HTTPError):
                _scrape(exporter.url)


class TestHeartbeats:
    def test_write_read_roundtrip(self, tmp_path):
        path = write_beacon(
            tmp_path, "worker-0", {"state": "running", "tasks_completed": 2}
        )
        assert path is not None
        beacons = read_beacons(tmp_path)
        payload = beacons["worker-0"]
        assert payload["state"] == "running"
        assert payload["tasks_completed"] == 2
        assert payload["pid"] > 0
        assert beacon_age(payload) < 60.0

    def test_rewrites_advance_seq(self, tmp_path):
        write_beacon(tmp_path, "campaign", {"state": "running"})
        first = read_beacons(tmp_path)["campaign"]["seq"]
        write_beacon(tmp_path, "campaign", {"state": "done"})
        second = read_beacons(tmp_path)["campaign"]["seq"]
        assert second > first

    def test_corrupt_beacon_is_skipped(self, tmp_path):
        write_beacon(tmp_path, "worker-0", {"state": "idle"})
        (tmp_path / "worker-1.json").write_text("{torn")
        (tmp_path / "not-an-object.json").write_text(json.dumps([1, 2]))
        beacons = read_beacons(tmp_path)
        assert set(beacons) == {"worker-0"}

    def test_missing_directory_reads_empty(self, tmp_path):
        assert read_beacons(tmp_path / "never-created") == {}

    def test_unwritable_directory_returns_none(self, tmp_path):
        blocker = tmp_path / "file-not-dir"
        blocker.write_text("x")
        assert write_beacon(blocker, "worker-0", {}) is None

    def test_beacon_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(BEACON_DIR_ENV, raising=False)
        assert beacon_dir() is None
        monkeypatch.setenv(BEACON_DIR_ENV, str(tmp_path))
        assert beacon_dir() == tmp_path

    def test_merge_aggregates_workers_and_campaign(self, tmp_path):
        write_beacon(tmp_path, "worker-0", {
            "state": "running", "tasks_completed": 3, "tasks_failed": 1,
            "reused_dispatches": 2, "detector_verdicts": 10.0,
            "detector_positives": 4.0,
        })
        write_beacon(tmp_path, "worker-1", {
            "state": "idle", "tasks_completed": 5, "tasks_failed": 0,
            "reused_dispatches": 1, "detector_verdicts": 6.0,
            "detector_positives": 1.0,
        })
        write_beacon(tmp_path, "campaign", {
            "state": "running", "runs_total": 20, "runs_completed": 8,
            "runs_cached": 8, "quarantined": 1,
        })
        merged = merge_beacon_metrics(read_beacons(tmp_path))
        assert merged["workerpool.workers"]["value"] == 2
        assert merged["workerpool.workers_running"]["value"] == 1
        assert merged["workerpool.tasks_completed"]["value"] == 8
        assert merged["workerpool.tasks_failed"]["value"] == 1
        assert merged["workerpool.spec_reuse"]["value"] == 3
        assert merged["workerpool.detector_verdicts"]["value"] == 16.0
        assert merged["workerpool.detector_positives"]["value"] == 5.0
        assert merged["campaign.beacon_runs_total"]["value"] == 20
        assert merged["campaign.beacon_runs_completed"]["value"] == 8
        assert merged["campaign.beacon_quarantined"]["value"] == 1
        assert merged["campaign.beacon_running"]["value"] == 1.0
        # The fragment renders like any snapshot.
        text = render_prometheus(merged)
        assert "repro_workerpool_tasks_completed_total 8" in text

    def test_merge_of_nothing_is_empty(self):
        assert merge_beacon_metrics({}) == {}


class TestSpanProfiling:
    def test_disabled_by_default_off_env(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "0")
        assert not spans_enabled()
        registry = MetricsRegistry()
        with activate_profiling(registry):
            assert not PROFILER.enabled
        assert len(registry) == 0

    def test_activation_is_scoped(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert spans_enabled()
        registry = MetricsRegistry()
        assert not PROFILER.enabled
        with activate_profiling(registry):
            assert PROFILER.enabled
            with PROFILER.span("profile.test_seconds"):
                pass
        assert not PROFILER.enabled
        snap = registry.snapshot()
        assert snap["profile.test_seconds"]["count"] == 1

    def test_activation_without_registry_is_noop(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        with activate_profiling(None):
            assert not PROFILER.enabled

    def test_nested_activation_restores_outer(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with activate_profiling(outer):
            with activate_profiling(inner):
                PROFILER.observe("profile.x_seconds", 0.5)
            PROFILER.observe("profile.y_seconds", 0.5)
        assert "profile.x_seconds" in inner.snapshot()
        assert "profile.y_seconds" in outer.snapshot()
        assert "profile.x_seconds" not in outer.snapshot()


class TestMidCampaignScrape:
    def test_completed_runs_strictly_increase_between_scrapes(
        self, tmp_path, monkeypatch
    ):
        """The ISSUE's acceptance claim, in-process.

        A campaign prefetch runs on a worker thread while the exporter
        serves its merged snapshot; successive scrapes must observe the
        ``campaign.runs_simulated`` counter strictly increasing, and
        the final scrape must account for every simulated run.
        """
        import re

        from repro.experiments import Campaign, CampaignSettings

        monkeypatch.setenv("REPRO_WARM_POOL", "0")
        monkeypatch.delenv(BEACON_DIR_ENV, raising=False)
        settings = CampaignSettings(length=0.02, backend="statistical")
        campaign = Campaign(
            settings, cache_dir=tmp_path / "cache", jobs=1
        )
        benches = ["429.mcf", "470.lbm", "462.libquantum", "433.milc"]
        configs = ["solo", "shutter"]

        pattern = re.compile(
            r"^repro_campaign_runs_simulated_total (\d+)$", re.M
        )
        observed: list[int] = []
        with MetricsExporter(campaign.export_snapshot, port=0) as exporter:
            worker = threading.Thread(
                target=campaign.prefetch, args=(benches, configs)
            )
            worker.start()
            try:
                while worker.is_alive():
                    match = pattern.search(_scrape(exporter.url))
                    count = int(match.group(1)) if match else 0
                    if not observed or count > observed[-1]:
                        observed.append(count)
            finally:
                worker.join()
            final = pattern.search(_scrape(exporter.url))
        assert final is not None
        assert int(final.group(1)) == len(benches) * len(configs)
        # Strictly increasing by construction; the claim is that we
        # actually caught the campaign mid-flight at least once.
        assert observed == sorted(set(observed))
