"""Counter/gauge/histogram semantics and registry aggregation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Histogram,
    MetricsRegistry,
    POW2_BUCKETS,
    merge_snapshots,
)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("runs")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert registry.counter("runs") is counter

    def test_counter_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("runs").inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("batch_seconds")
        gauge.set(4.0)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_bucketing_inclusive_upper_bounds(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0):
            hist.observe(value)
        # bounds are inclusive: 1.0 lands in the first bucket,
        # 9.0 in the overflow bucket.
        assert hist.counts == [2, 2, 2, 1]
        assert hist.count == 7
        assert hist.total == pytest.approx(21.0)
        assert hist.min == 0.5 and hist.max == 9.0
        assert hist.mean == pytest.approx(3.0)

    def test_quantile_reports_bucket_bound(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 9.0):
            hist.observe(value)
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(0.5) == 2.0
        assert hist.quantile(1.0) == 9.0  # overflow reports observed max
        with pytest.raises(ObservabilityError):
            hist.quantile(1.5)

    def test_empty_histogram(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0
        assert hist.min is None and hist.max is None

    def test_rejects_bad_bounds(self):
        with pytest.raises(ObservabilityError):
            Histogram(buckets=())
        with pytest.raises(ObservabilityError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram(buckets=(2.0, 1.0))


class TestRegistry:
    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.histogram("x")

    def test_snapshot_is_sorted_and_json_serialisable(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.level").set(0.5)
        registry.histogram("c.dist", buckets=(1.0, 2.0)).observe(1.5)
        snap = registry.snapshot()
        assert list(snap) == ["a.level", "b.count", "c.dist"]
        assert snap["b.count"] == {"type": "counter", "value": 2.0}
        assert snap["c.dist"]["counts"] == [0, 1, 0]
        json.dumps(snap)  # must not raise

    def test_default_buckets_are_powers_of_two(self):
        assert POW2_BUCKETS[0] == 1.0
        assert all(b == 2 * a for a, b in zip(POW2_BUCKETS, POW2_BUCKETS[1:]))


class TestMergeSnapshots:
    def _snap(self):
        registry = MetricsRegistry()
        registry.counter("runs").inc(3)
        registry.gauge("level").set(2.0)
        registry.histogram("dist", buckets=(1.0, 2.0)).observe(0.5)
        return registry.snapshot()

    def test_counters_and_histograms_add_gauges_last_win(self):
        first, second = self._snap(), self._snap()
        second["gauge_only"] = {"type": "gauge", "value": 9.0}
        second["level"]["value"] = 7.0
        merged = merge_snapshots([first, second])
        assert merged["runs"]["value"] == 6.0
        assert merged["level"]["value"] == 7.0
        assert merged["dist"]["counts"] == [2, 0, 0]
        assert merged["dist"]["count"] == 2
        assert merged["gauge_only"]["value"] == 9.0

    def test_merge_does_not_mutate_inputs(self):
        first, second = self._snap(), self._snap()
        merge_snapshots([first, second])
        assert first["runs"]["value"] == 3.0
        assert first["dist"]["counts"] == [1, 0, 0]

    def test_mismatched_buckets_fall_back_to_latest(self):
        first = self._snap()
        registry = MetricsRegistry()
        registry.histogram("dist", buckets=(5.0,)).observe(4.0)
        second = registry.snapshot()
        merged = merge_snapshots([first, second])
        assert merged["dist"]["buckets"] == [5.0]
        assert merged["dist"]["count"] == 1
