"""Tracer fan-out, ring-buffer eviction, and JSONL sink rotation."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    NULL_TRACER,
    DetectionEvent,
    JSONLSink,
    PhaseEvent,
    PMUSampleEvent,
    ResponseEvent,
    RingBufferSink,
    Tracer,
    read_jsonl,
)


def pmu_event(period: int, process: str = "ls") -> PMUSampleEvent:
    return PMUSampleEvent(
        period=period, process=process, state="running",
        cycles=1000.0, instructions=500.0,
        llc_misses=7, llc_references=40,
    )


def detection_event(period: int, verdict=None) -> DetectionEvent:
    return DetectionEvent(
        period=period, detector="rule-based", state="detect",
        own_misses=10.0, neighbor_misses=20.0,
        own_mean=12.0, neighbor_mean=18.0,
        threshold=22.5, pause_self=False, verdict=verdict,
    )


class TestTracer:
    def test_null_tracer_disabled_and_counts_nothing(self):
        assert not NULL_TRACER.enabled
        assert not NULL_TRACER
        NULL_TRACER.emit(pmu_event(0))
        assert NULL_TRACER.total_events() == 0

    def test_fan_out_reaches_every_sink(self):
        a, b = RingBufferSink(10), RingBufferSink(10)
        tracer = Tracer([a, b])
        assert tracer.enabled
        tracer.emit(pmu_event(0))
        assert len(a) == len(b) == 1

    def test_counts_by_kind(self):
        tracer = Tracer([RingBufferSink(10)])
        tracer.emit(pmu_event(0))
        tracer.emit(pmu_event(1))
        tracer.emit(detection_event(1, verdict=True))
        assert tracer.counts == {"pmu_sample": 2, "detection": 1}
        assert tracer.total_events() == 3

    def test_context_manager_closes_sinks(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer([JSONLSink(path)]) as tracer:
            tracer.emit(pmu_event(0))
        assert len(read_jsonl(path)) == 1


class TestRingBufferSink:
    def test_eviction_keeps_newest_and_counts(self):
        sink = RingBufferSink(capacity=3)
        for period in range(5):
            sink.emit(pmu_event(period))
        assert len(sink) == 3
        assert sink.evicted == 2
        assert [e.period for e in sink.events] == [2, 3, 4]

    def test_by_kind_filters(self):
        sink = RingBufferSink(capacity=10)
        sink.emit(pmu_event(0))
        sink.emit(detection_event(0))
        sink.emit(PhaseEvent(
            period=0, scope="process", subject="ls", phase="launched"
        ))
        assert [e.kind for e in sink.by_kind("detection")] == ["detection"]
        assert len(sink.by_kind("pmu_sample")) == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ObservabilityError):
            RingBufferSink(capacity=0)


class TestJSONLSink:
    def test_round_trip_payloads(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(path)
        events = [
            pmu_event(0),
            detection_event(0, verdict=True),
            ResponseEvent(
                period=1, response="soft-lock", verdict=True,
                pause_batch=True, speed=1.0, l3_quota=None, done=False,
            ),
        ]
        for event in events:
            sink.emit(event)
        sink.close()
        records = read_jsonl(path)
        assert records == [e.to_dict() for e in events]
        assert records[1]["kind"] == "detection"
        assert records[1]["verdict"] is True

    def test_rotation_shifts_and_bounds_files(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        line_bytes = len(
            json.dumps(pmu_event(0).to_dict(), separators=(",", ":"))
        ) + 1
        # Room for 2 lines per file; 10 emits -> 4 rotations.
        sink = JSONLSink(path, max_bytes=2 * line_bytes, max_files=2)
        for period in range(10):
            sink.emit(pmu_event(period))
        sink.close()
        assert sink.rotations == 4
        assert path.exists()
        assert (tmp_path / "trace.jsonl.1").exists()
        assert (tmp_path / "trace.jsonl.2").exists()
        assert not (tmp_path / "trace.jsonl.3").exists()
        # The live file holds the newest events, rotations the older.
        newest = [r["period"] for r in read_jsonl(path)]
        older = [r["period"] for r in read_jsonl(tmp_path / "trace.jsonl.1")]
        assert newest == [8, 9]
        assert older == [6, 7]

    def test_no_rotation_without_max_bytes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JSONLSink(path)
        for period in range(50):
            sink.emit(pmu_event(period))
        sink.close()
        assert sink.rotations == 0
        assert len(read_jsonl(path)) == 50

    def test_rejects_bad_limits(self, tmp_path):
        with pytest.raises(ObservabilityError):
            JSONLSink(tmp_path / "t.jsonl", max_bytes=0)
        with pytest.raises(ObservabilityError):
            JSONLSink(tmp_path / "t.jsonl", max_files=0)
