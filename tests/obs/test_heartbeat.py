"""Beacon ingestion hardening: corrupt files counted, fields coerced.

``write_beacon``'s happy path and the worker/campaign aggregation live
in ``test_export.py``; this module pins the defensive half — a sick or
byzantine beacon writer degrades the telemetry, never crashes it, and
the degradation is *visible* (skipped files are counted and exported).
"""

from __future__ import annotations

import pytest

from repro.obs import (
    beacon_field,
    merge_beacon_metrics,
    scan_beacons,
    write_beacon,
)


class TestScanBeacons:
    def test_counts_corrupt_files_and_keeps_good_ones(self, tmp_path):
        write_beacon(tmp_path, "worker-0", {"state": "idle"})
        (tmp_path / "worker-1.json").write_text("{torn")
        (tmp_path / "worker-2.json").write_bytes(b"\xff\xfe garbage")
        beacons, skipped = scan_beacons(tmp_path)
        assert set(beacons) == {"worker-0"}
        assert skipped == 2

    def test_non_object_payload_counts_as_corrupt(self, tmp_path):
        (tmp_path / "fleet.json").write_text("[1, 2, 3]")
        beacons, skipped = scan_beacons(tmp_path)
        assert beacons == {}
        assert skipped == 1

    def test_missing_directory_reads_clean(self, tmp_path):
        assert scan_beacons(tmp_path / "never") == ({}, 0)


class TestBeaconField:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (3, 3.0),
            (2.5, 2.5),
            (True, 1.0),
            ("7", 7.0),
            ("7.5", 7.5),
        ],
    )
    def test_coerces_numericish_values(self, value, expected):
        assert beacon_field({"k": value}, "k") == expected

    @pytest.mark.parametrize(
        "value", ["not-a-number", None, [], {"nested": 1}]
    )
    def test_garbage_reads_as_default(self, value):
        assert beacon_field({"k": value}, "k", default=9.0) == 9.0

    def test_missing_key_reads_as_default(self):
        assert beacon_field({}, "k") == 0.0


class TestMergeHardening:
    def test_invalid_count_exported(self):
        merged = merge_beacon_metrics({}, invalid=3)
        assert merged["beacons.invalid"]["value"] == 3.0

    def test_corrupt_worker_fields_degrade_to_zero(self):
        merged = merge_beacon_metrics(
            {
                "worker-0": {
                    "beacon": "worker-0",
                    "state": "running",
                    "tasks_completed": "not-a-number",
                    "tasks_failed": None,
                },
            }
        )
        assert merged["workerpool.tasks_completed"]["value"] == 0.0
        assert merged["workerpool.tasks_failed"]["value"] == 0.0
        assert merged["workerpool.workers_running"]["value"] == 1.0

    def test_fleet_and_node_beacons_fold_into_gauges(self):
        merged = merge_beacon_metrics(
            {
                "fleet": {
                    "beacon": "fleet",
                    "state": "running",
                    "tick": 7,
                    "nodes": 4,
                    "nodes_dead": 1,
                    "jobs_total": 23,
                    "jobs_done": 9,
                    "migrations": 2,
                },
                "node-0": {
                    "beacon": "node-0",
                    "contended": 1,
                    "straggler": 0,
                    "jobs_running": 2,
                },
                "node-1": {
                    "beacon": "node-1",
                    "contended": 0,
                    "straggler": 1,
                    "jobs_running": "1",
                },
            }
        )
        assert merged["fleet.tick"]["value"] == 7.0
        assert merged["fleet.nodes_dead"]["value"] == 1.0
        assert merged["fleet.jobs_done"]["value"] == 9.0
        assert merged["fleet.migrations"]["value"] == 2.0
        assert merged["fleet.running"]["value"] == 1.0
        assert merged["fleet.nodes_reporting"]["value"] == 2.0
        assert merged["fleet.nodes_contended"]["value"] == 1.0
        assert merged["fleet.nodes_straggling"]["value"] == 1.0
        assert merged["fleet.jobs_running"]["value"] == 3.0

    def test_non_dict_campaign_beacon_ignored(self):
        # A beacon *named* campaign whose payload slot was replaced by
        # garbage upstream must not crash the merge.
        merged = merge_beacon_metrics({"campaign": "garbage"})
        assert "campaign.beacon_running" not in merged
