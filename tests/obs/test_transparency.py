"""Trace transparency: observing a run must never change it.

The acceptance contract for the observability layer: attaching a tracer
and a metrics registry to a simulation leaves the :class:`RunResult`
(and the cached :class:`RunSummary` derived from it) bit-identical to
an unobserved run, while the emitted trace itself satisfies the
one-detection-event-per-period invariant.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caer.runtime import caer_factory
from repro.config import MachineConfig
from repro.experiments.campaign import RunSummary, resolve_caer_config
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.sim import run_colocated
from repro.workloads import benchmark

LENGTH = 0.02


def _run(bench: str, config: str, seed: int, tracer=None, metrics=None):
    machine = MachineConfig.tiny()
    l3 = machine.l3.capacity_lines
    ls = benchmark(bench, l3, length=LENGTH)
    batch = benchmark("470.lbm", l3, length=LENGTH)
    caer = resolve_caer_config(config)
    return run_colocated(
        ls, batch, machine,
        caer_factory=caer_factory(caer) if caer else None,
        seed=seed,
        tracer=tracer,
        metrics=metrics,
    )


@given(
    bench=st.sampled_from(["429.mcf", "462.libquantum"]),
    config=st.sampled_from(["shutter", "rule"]),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=8, deadline=None)
def test_tracing_leaves_run_result_bit_identical(bench, config, seed):
    untraced = _run(bench, config, seed)
    ring = RingBufferSink(1 << 20)
    traced = _run(
        bench, config, seed,
        tracer=Tracer([ring]),
        metrics=MetricsRegistry(),
    )
    assert traced == untraced
    assert RunSummary.from_run(bench, config, traced) == RunSummary.from_run(
        bench, config, untraced
    )
    assert len(ring.events) > 0


@given(
    config=st.sampled_from(["shutter", "rule"]),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=6, deadline=None)
def test_detection_event_per_governed_period(config, seed):
    """Every period the CAER hook runs emits exactly one DetectionEvent."""
    ring = RingBufferSink(1 << 20)
    result = _run(
        "429.mcf", config, seed, tracer=Tracer([ring])
    )
    detections = ring.by_kind("detection")
    assert len(detections) == result.total_periods
    assert [e.period for e in detections] == list(range(result.total_periods))


def test_metrics_alone_are_also_transparent():
    baseline = _run("429.mcf", "shutter", seed=1)
    metrics = MetricsRegistry()
    observed = _run("429.mcf", "shutter", seed=1, metrics=metrics)
    assert observed == baseline
    snap = metrics.snapshot()
    assert snap["caer.periods"]["value"] == baseline.total_periods
    assert snap["sim.periods"]["value"] == baseline.total_periods


def test_live_export_leaves_runs_bit_identical(tmp_path, monkeypatch):
    """The exporter-on world must equal the exporter-off world.

    With the endpoint serving (and being scraped), beacons enabled,
    and span profiling armed, executing the same spec must produce a
    bit-identical :class:`RunOutcome` — live telemetry is read-only
    over runs.
    """
    import urllib.request

    from repro.obs import PROFILE_ENV, start_exporter
    from repro.obs.heartbeat import BEACON_DIR_ENV
    from repro.runspec import RunSpec, execute_run

    spec = RunSpec(
        victim="429.mcf",
        contenders=(),
        machine=MachineConfig.tiny(),
        length=LENGTH,
        backend="sim",
    )
    monkeypatch.delenv(BEACON_DIR_ENV, raising=False)
    monkeypatch.setenv(PROFILE_ENV, "0")
    off = execute_run(spec)

    monkeypatch.setenv(BEACON_DIR_ENV, str(tmp_path / "beacons"))
    monkeypatch.delenv(PROFILE_ENV, raising=False)
    registry = MetricsRegistry()
    exporter = start_exporter(registry.snapshot, port=0)
    try:
        registry.counter("campaign.runs_simulated").inc()
        body = urllib.request.urlopen(exporter.url, timeout=5).read()
        assert b"repro_campaign_runs_simulated_total 1" in body
        on = execute_run(spec)
    finally:
        exporter.close()

    # RunOutcome equality excludes wall_seconds/telemetry by design;
    # the full bit-identity claim covers every compared field plus the
    # series payloads.
    assert on == off
    assert on.miss_series == off.miss_series
    assert on.instruction_series == off.instruction_series
    # ...and the exporter-on run did carry profiling spans, proving
    # the armed world was actually exercised.
    assert any(
        name.startswith("profile.") for name in on.telemetry["metrics"]
    )
    assert not any(
        name.startswith("profile.") for name in off.telemetry["metrics"]
    )
