"""Trace transparency: observing a run must never change it.

The acceptance contract for the observability layer: attaching a tracer
and a metrics registry to a simulation leaves the :class:`RunResult`
(and the cached :class:`RunSummary` derived from it) bit-identical to
an unobserved run, while the emitted trace itself satisfies the
one-detection-event-per-period invariant.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caer.runtime import caer_factory
from repro.config import MachineConfig
from repro.experiments.campaign import RunSummary, resolve_caer_config
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.sim import run_colocated
from repro.workloads import benchmark

LENGTH = 0.02


def _run(bench: str, config: str, seed: int, tracer=None, metrics=None):
    machine = MachineConfig.tiny()
    l3 = machine.l3.capacity_lines
    ls = benchmark(bench, l3, length=LENGTH)
    batch = benchmark("470.lbm", l3, length=LENGTH)
    caer = resolve_caer_config(config)
    return run_colocated(
        ls, batch, machine,
        caer_factory=caer_factory(caer) if caer else None,
        seed=seed,
        tracer=tracer,
        metrics=metrics,
    )


@given(
    bench=st.sampled_from(["429.mcf", "462.libquantum"]),
    config=st.sampled_from(["shutter", "rule"]),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=8, deadline=None)
def test_tracing_leaves_run_result_bit_identical(bench, config, seed):
    untraced = _run(bench, config, seed)
    ring = RingBufferSink(1 << 20)
    traced = _run(
        bench, config, seed,
        tracer=Tracer([ring]),
        metrics=MetricsRegistry(),
    )
    assert traced == untraced
    assert RunSummary.from_run(bench, config, traced) == RunSummary.from_run(
        bench, config, untraced
    )
    assert len(ring.events) > 0


@given(
    config=st.sampled_from(["shutter", "rule"]),
    seed=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=6, deadline=None)
def test_detection_event_per_governed_period(config, seed):
    """Every period the CAER hook runs emits exactly one DetectionEvent."""
    ring = RingBufferSink(1 << 20)
    result = _run(
        "429.mcf", config, seed, tracer=Tracer([ring])
    )
    detections = ring.by_kind("detection")
    assert len(detections) == result.total_periods
    assert [e.period for e in detections] == list(range(result.total_periods))


def test_metrics_alone_are_also_transparent():
    baseline = _run("429.mcf", "shutter", seed=1)
    metrics = MetricsRegistry()
    observed = _run("429.mcf", "shutter", seed=1, metrics=metrics)
    assert observed == baseline
    snap = metrics.snapshot()
    assert snap["caer.periods"]["value"] == baseline.total_periods
    assert snap["sim.periods"]["value"] == baseline.total_periods
