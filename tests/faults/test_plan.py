"""FaultPlan: validation, serialization, scaling, identity."""

from __future__ import annotations

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    DEFAULT_SATURATION_CAP,
    SCALE_COEFFICIENTS,
    FaultPlan,
)


class TestValidation:
    @pytest.mark.parametrize(
        "field", ["drop_rate", "stuck_rate", "saturate_rate", "delay_rate"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, value):
        with pytest.raises(FaultPlanError, match=field):
            FaultPlan(**{field: value})

    def test_jitter_below_one(self):
        with pytest.raises(FaultPlanError, match="jitter"):
            FaultPlan(jitter=1.0)

    def test_noise_non_negative(self):
        with pytest.raises(FaultPlanError, match="noise"):
            FaultPlan(noise=-0.5)

    def test_saturation_cap_positive(self):
        with pytest.raises(FaultPlanError, match="saturation_cap"):
            FaultPlan(saturation_cap=0)


class TestIdentity:
    def test_null_plan(self):
        assert FaultPlan().is_null()
        assert not FaultPlan(drop_rate=0.01).is_null()
        assert FaultPlan.scaled(0.0).is_null()

    def test_hashable_and_frozen(self):
        plan = FaultPlan(drop_rate=0.1, seed=3)
        assert hash(plan) == hash(FaultPlan(drop_rate=0.1, seed=3))
        with pytest.raises(AttributeError):
            plan.drop_rate = 0.2

    def test_round_trip(self):
        plan = FaultPlan.scaled(0.7, seed=11)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_describe_names_every_knob(self):
        text = FaultPlan.scaled(1.0).describe()
        for key in ("drop", "jitter", "noise", "stuck", "saturate",
                    "delay", "seed"):
            assert key in text


class TestScaled:
    def test_scaling_is_linear(self):
        half = FaultPlan.scaled(0.5)
        for field, coefficient in SCALE_COEFFICIENTS.items():
            assert getattr(half, field) == pytest.approx(
                0.5 * coefficient
            )

    def test_intensity_bounds(self):
        with pytest.raises(FaultPlanError, match="intensity"):
            FaultPlan.scaled(-0.1)

    def test_seed_carried(self):
        assert FaultPlan.scaled(0.5, seed=9).seed == 9
        assert FaultPlan.scaled(0.5, seed=9) != FaultPlan.scaled(0.5)

    def test_cap_default(self):
        assert FaultPlan().saturation_cap == DEFAULT_SATURATION_CAP
