"""FaultChannel/FaultInjector: pipeline semantics and observability."""

from __future__ import annotations

import pytest

from repro.arch.pmu import PMUSample
from repro.faults import FaultInjector, FaultPlan, FaultyPerfmonSession
from repro.obs import MetricsRegistry, RingBufferSink, Tracer


def sample(misses: int = 100) -> PMUSample:
    return PMUSample(
        cycles=40_000.0,
        instructions=20_000.0,
        llc_misses=misses,
        llc_references=4 * misses,
        l2_misses=2 * misses,
        l1_misses=8 * misses,
        back_invalidations=0,
        lines_stolen=0,
    )


def drain(injector: FaultInjector, name: str, periods: int = 400):
    """Run ``periods`` identical samples through one channel."""
    return [
        injector.observe(period, name, sample())
        for period in range(periods)
    ]


class TestPipeline:
    def test_null_plan_is_identity(self):
        injector = FaultInjector(FaultPlan())
        for period in range(50):
            assert injector.observe(period, "ls0", sample()) == sample()

    def test_dropped_deltas_carry_into_next_delivery(self):
        injector = FaultInjector(FaultPlan(drop_rate=0.5, seed=1))
        observed = drain(injector, "ls0")
        true_total = 400 * sample().llc_misses
        # Conservation: drops only move deltas later, never lose them
        # (up to one still-carried sample at the end of the run).
        observed_total = sum(s.llc_misses for s in observed)
        assert true_total - sample().llc_misses <= observed_total
        assert observed_total <= true_total
        assert any(s.llc_misses == 0 for s in observed)
        assert any(
            s.llc_misses >= 2 * sample().llc_misses for s in observed
        )

    def test_stuck_counters_repeat_last_observation(self):
        injector = FaultInjector(FaultPlan(stuck_rate=0.3, seed=2))
        ring = RingBufferSink()
        injector.tracer = Tracer([ring])
        observed = drain(injector, "ls0", periods=100)
        stuck = [e for e in ring.events if e.fault == "stuck"]
        assert stuck
        for event in stuck:
            if event.period == 0:
                continue  # nothing observed before period 0
            # A stuck period re-reads the previous period's observation.
            assert observed[event.period] == observed[event.period - 1]

    def test_saturation_pegs_cache_counters(self):
        plan = FaultPlan(saturate_rate=1.0, saturation_cap=7)
        injector = FaultInjector(plan)
        observed = injector.observe(0, "ls0", sample())
        assert observed.llc_misses == 7
        assert observed.llc_references == 7
        assert observed.l2_misses == 7
        assert observed.l1_misses == 7
        assert observed.instructions == sample().instructions

    def test_jitter_scales_within_bounds(self):
        injector = FaultInjector(FaultPlan(jitter=0.2, seed=3))
        for observed in drain(injector, "ls0", periods=100):
            assert 0.8 * 20_000 <= observed.instructions <= 1.2 * 20_000

    def test_counters_never_negative_under_heavy_noise(self):
        injector = FaultInjector(FaultPlan(noise=2.0, seed=4))
        for observed in drain(injector, "ls0", periods=200):
            assert observed.llc_misses >= 0
            assert observed.cycles >= 0.0

    def test_delay_folds_into_next_delivery(self):
        injector = FaultInjector(FaultPlan(delay_rate=0.4, seed=5))
        observed = drain(injector, "ls0", periods=300)
        assert any(s.llc_misses == 0 for s in observed)
        assert any(
            s.llc_misses >= 2 * sample().llc_misses for s in observed
        )


class TestDeterminismAndIsolation:
    def test_same_seed_same_stream(self):
        a = drain(FaultInjector(FaultPlan.scaled(1.0, seed=7)), "ls0")
        b = drain(FaultInjector(FaultPlan.scaled(1.0, seed=7)), "ls0")
        assert a == b

    def test_different_seed_different_stream(self):
        a = drain(FaultInjector(FaultPlan.scaled(1.0, seed=7)), "ls0")
        b = drain(FaultInjector(FaultPlan.scaled(1.0, seed=8)), "ls0")
        assert a != b

    def test_channels_are_independent_per_process(self):
        injector = FaultInjector(FaultPlan.scaled(1.0, seed=7))
        a = drain(injector, "ls0")
        b = drain(FaultInjector(FaultPlan.scaled(1.0, seed=7)), "batch1")
        assert a != b  # distinct per-name streams

    def test_tracing_never_changes_injection(self):
        untraced = drain(
            FaultInjector(FaultPlan.scaled(0.8, seed=9)), "ls0"
        )
        ring = RingBufferSink()
        traced_injector = FaultInjector(
            FaultPlan.scaled(0.8, seed=9), tracer=Tracer([ring])
        )
        traced = drain(traced_injector, "ls0")
        assert traced == untraced
        assert ring.events  # but the faults were observable


class TestObservability:
    def test_metrics_count_each_kind(self):
        metrics = MetricsRegistry()
        injector = FaultInjector(
            FaultPlan(drop_rate=1.0, seed=0), metrics=metrics
        )
        injector.observe(0, "ls0", sample())
        snapshot = metrics.snapshot()
        assert snapshot["faults.injected"]["value"] == 1.0
        assert snapshot["faults.drop"]["value"] == 1.0

    def test_fault_events_carry_identity(self):
        ring = RingBufferSink()
        injector = FaultInjector(
            FaultPlan(saturate_rate=1.0), tracer=Tracer([ring])
        )
        injector.observe(3, "ls0", sample())
        event = ring.by_kind("fault")[0]
        assert event.period == 3
        assert event.process == "ls0"
        assert event.fault == "saturate"
        payload = event.to_dict()
        assert payload["kind"] == "fault"


class TestFaultySession:
    def test_wraps_probe_and_remembers_truth(self, tiny_machine):
        from repro.arch.chip import MulticoreChip
        from repro.perfmon.session import PerfmonSession

        chip = MulticoreChip(tiny_machine, seed=0)
        inner = PerfmonSession(chip.pmu(0), chip.core(0))
        injector = FaultInjector(FaultPlan(drop_rate=1.0, seed=0))
        session = FaultyPerfmonSession(inner, injector.channel("core0"))
        observed = session.probe()
        assert observed == PMUSample.zero()  # the read was dropped
        assert session.true_sample is not None
        assert session.probes == inner.probes
        session.close()
        assert session.closed
