"""Determinism contract under faults (ISSUE 4 satellite).

A faulted run is a pure function of its spec: bit-identical across
repeats, across ``jobs=1`` vs ``jobs>1``, and with or without tracing;
and a zero-intensity plan is bit-identical to running with no plan at
all (only the digest moves).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.executor import run_specs
from repro.faults import FaultPlan
from repro.obs import RingBufferSink, Tracer
from repro.runspec import execute, execute_run, paper_run_spec

LENGTH = 0.02


def faulted_spec(machine, intensity=0.8, config="rule",
                 backend="sim", fault_seed=0):
    return paper_run_spec(
        "429.mcf", config, machine, length=LENGTH, backend=backend
    ).with_faults(FaultPlan.scaled(intensity, seed=fault_seed))


def comparable(outcome):
    """Strip identity so faulted/clean outcomes can compare equal."""
    return dataclasses.replace(outcome, digest="")


@pytest.mark.parametrize("backend", ["sim", "statistical"])
class TestRepeatability:
    def test_repeats_are_bit_identical(self, scaled_machine, backend):
        spec = faulted_spec(scaled_machine, backend=backend)
        assert execute_run(spec) == execute_run(spec)

    def test_zero_intensity_equals_no_faults(self, scaled_machine,
                                             backend):
        clean = paper_run_spec(
            "429.mcf", "rule", scaled_machine, length=LENGTH,
            backend=backend,
        )
        nulled = clean.with_faults(FaultPlan.scaled(0.0))
        assert nulled.digest != clean.digest
        assert comparable(execute_run(nulled)) == comparable(
            execute_run(clean)
        )

    def test_fault_seed_changes_results(self, scaled_machine, backend):
        a = execute_run(faulted_spec(scaled_machine, backend=backend,
                                     fault_seed=0))
        b = execute_run(faulted_spec(scaled_machine, backend=backend,
                                     fault_seed=1))
        assert comparable(a) != comparable(b)


class TestParallelism:
    def test_jobs1_matches_jobs2(self, scaled_machine):
        specs = [
            faulted_spec(scaled_machine, intensity=i)
            for i in (0.4, 0.8)
        ]
        serial = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert serial == parallel


class TestTracingNeutrality:
    def test_traced_equals_untraced_under_faults(self, scaled_machine):
        spec = faulted_spec(scaled_machine)
        untraced = execute(spec)
        ring = RingBufferSink()
        traced = execute(spec, tracer=Tracer([ring]))
        ls = untraced.latency_sensitive()
        traced_ls = traced.latency_sensitive()
        assert ls.llc_miss_series() == traced_ls.llc_miss_series()
        assert ls.completion_periods == traced_ls.completion_periods
        assert ring.by_kind("fault")  # faults really fired

    def test_raw_run_ignores_faults_bit_identically(self, scaled_machine):
        """No hook consumes observations in a raw run, so even an
        aggressive plan cannot change its physical results."""
        clean = paper_run_spec(
            "429.mcf", "raw", scaled_machine, length=LENGTH
        )
        faulted = clean.with_faults(FaultPlan.scaled(1.0))
        assert comparable(execute_run(faulted)) == comparable(
            execute_run(clean)
        )
