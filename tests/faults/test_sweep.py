"""The `faults` experiment driver: intensity sweep end to end.

The expensive end-to-end sweep runs once (module-scoped fixture) on the
statistical backend and several assertions read it; validation tests
are cheap and run nothing.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.campaign import CampaignSettings
from repro.experiments.faults import (
    DEFAULT_INTENSITIES,
    SWEEP_CONFIGS,
    fault_sweep,
)

SETTINGS = CampaignSettings(length=0.2, backend="statistical")
INTENSITIES = DEFAULT_INTENSITIES


@pytest.fixture(scope="module")
def sweep():
    return fault_sweep(
        SETTINGS, victim="429.mcf", intensities=INTENSITIES, jobs=1
    )


class TestValidation:
    def test_rejects_empty_intensities(self):
        with pytest.raises(ExperimentError, match="intensity"):
            fault_sweep(SETTINGS, intensities=())

    @pytest.mark.parametrize("config", ["raw", "solo", "bogus"])
    def test_rejects_non_detector_configs(self, config):
        with pytest.raises(ExperimentError, match="config"):
            fault_sweep(SETTINGS, configs=(config,))


class TestSweepShape:
    def test_one_row_per_intensity(self, sweep):
        assert sweep.row_names == [
            f"i={intensity:g}" for intensity in INTENSITIES
        ]

    def test_three_series_per_config(self, sweep):
        for config in SWEEP_CONFIGS:
            for suffix in ("acc", "pen", "util"):
                assert len(sweep.column(f"{config}_{suffix}")) == len(
                    INTENSITIES
                )

    def test_renders_with_notes(self, sweep):
        text = sweep.render()
        assert "Detection robustness" in text
        assert "clean-signal baseline" in text
        assert "flat control" in text


class TestDegradation:
    def test_clean_baseline_detects_well(self, sweep):
        accuracy = sweep.column("shutter_acc")
        assert accuracy[0] > 0.5

    def test_shutter_accuracy_degrades_monotonically(self, sweep):
        """The headline curve: more signal corruption, never better
        detection (rule/random are small-N noisy; shutter is the
        documented monotone curve)."""
        accuracy = sweep.column("shutter_acc")
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(accuracy, accuracy[1:])
        )
        assert accuracy[-1] < accuracy[0]

    def test_random_control_never_reads_the_signal(self, sweep):
        """The random detector's accuracy is fault-independent."""
        accuracy = sweep.column("random_acc")
        assert max(accuracy) - min(accuracy) == pytest.approx(0.0)

    def test_penalties_stay_finite_and_sane(self, sweep):
        for config in SWEEP_CONFIGS:
            for penalty in sweep.column(f"{config}_pen"):
                assert -0.5 < penalty < 10.0
