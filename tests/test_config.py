"""Machine configuration and scaling."""

from __future__ import annotations

import pytest

from repro.config import (
    REFERENCE_PERIOD_CYCLES,
    CacheLatencies,
    MachineConfig,
    default_usage_threshold,
    scale_misses_per_period,
)
from repro.errors import ConfigError


class TestLatencies:
    def test_defaults_are_increasing(self):
        lat = CacheLatencies()
        assert lat.l1 < lat.l2 < lat.l3 < lat.memory

    def test_for_level(self):
        lat = CacheLatencies()
        assert lat.for_level(1) == lat.l1
        assert lat.for_level(4) == lat.memory
        with pytest.raises(ConfigError):
            lat.for_level(5)

    def test_rejects_non_monotone(self):
        with pytest.raises(ConfigError):
            CacheLatencies(l1=10, l2=5, l3=38, memory=200)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            CacheLatencies(l1=0)


class TestMachine:
    def test_full_scale_nehalem_geometry(self):
        machine = MachineConfig.nehalem_i7_920()
        assert machine.num_cores == 4
        assert machine.l3.capacity_bytes == 8 * 1024 * 1024
        assert machine.l3.associativity == 16
        assert machine.period_cycles == REFERENCE_PERIOD_CYCLES

    def test_scaled_nehalem_preserves_ratios(self):
        full = MachineConfig.nehalem_i7_920()
        scaled = MachineConfig.scaled_nehalem(cache_scale=16)
        assert (
            full.l3.capacity_lines / scaled.l3.capacity_lines == 16
        )
        assert (
            full.l2.capacity_lines / scaled.l2.capacity_lines == 16
        )
        assert scaled.l3.associativity == full.l3.associativity

    def test_period_scale(self):
        scaled = MachineConfig.scaled_nehalem(period_cycles=40_000)
        assert scaled.period_scale == pytest.approx(
            40_000 / REFERENCE_PERIOD_CYCLES
        )

    def test_hierarchy_ordering_enforced(self):
        from repro.config import CacheGeometry

        with pytest.raises(ConfigError):
            MachineConfig(
                l1=CacheGeometry(num_sets=512, associativity=8),
                l2=CacheGeometry(num_sets=32, associativity=8),
            )

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            MachineConfig(num_cores=0)


class TestThresholds:
    def test_paper_threshold_scales_with_period(self):
        machine = MachineConfig.scaled_nehalem(period_cycles=40_000)
        thresh = default_usage_threshold(machine)
        assert thresh == pytest.approx(
            1500.0 * 40_000 / REFERENCE_PERIOD_CYCLES
        )

    def test_full_scale_threshold_is_papers(self):
        machine = MachineConfig.nehalem_i7_920()
        assert default_usage_threshold(machine) == pytest.approx(1500.0)

    def test_negative_threshold_rejected(self):
        machine = MachineConfig.tiny()
        with pytest.raises(ConfigError):
            scale_misses_per_period(-1.0, machine)
