"""Workload specs, phases, and instance accounting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.base import PhaseSpec, WorkloadSpec
from repro.workloads.patterns import (
    SequentialStreamSpec,
    UniformRandomSpec,
)


def two_phase_spec(
    d1=100.0, d2=50.0, total=1000.0, mem1=0.5, mem2=0.25
) -> WorkloadSpec:
    return WorkloadSpec(
        name="t",
        phases=(
            PhaseSpec(
                pattern=SequentialStreamSpec(lines=8, line_repeats=1),
                duration_instructions=d1,
                mem_ratio=mem1,
            ),
            PhaseSpec(
                pattern=UniformRandomSpec(lines=8),
                duration_instructions=d2,
                mem_ratio=mem2,
            ),
        ),
        total_instructions=total,
    )


class TestValidation:
    def test_phase_rejects_bad_mem_ratio(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(
                pattern=UniformRandomSpec(lines=4),
                duration_instructions=10.0,
                mem_ratio=0.0,
            )
        with pytest.raises(WorkloadError):
            PhaseSpec(
                pattern=UniformRandomSpec(lines=4),
                duration_instructions=10.0,
                mem_ratio=1.5,
            )

    def test_phase_rejects_bad_overlap(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(
                pattern=UniformRandomSpec(lines=4),
                duration_instructions=10.0,
                overlap=0.5,
            )

    def test_workload_needs_phases(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="x", phases=(), total_instructions=10.0)

    def test_workload_needs_budget(self):
        phase = PhaseSpec(
            pattern=UniformRandomSpec(lines=4),
            duration_instructions=10.0,
        )
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="x", phases=(phase,), total_instructions=0.0)


class TestInstance:
    def test_derived_per_access_constants(self):
        instance = two_phase_spec().instantiate()
        phase = instance.current_phase()
        assert phase.instructions_per_access == pytest.approx(2.0)
        assert phase.compute_cycles_per_access == pytest.approx(1.0)

    def test_phase_rotation(self):
        instance = two_phase_spec(d1=100.0, d2=50.0).instantiate()
        # Phase 1 is 100 instructions = 50 accesses at mem_ratio .5.
        instance.account(50)
        assert instance.current_phase().spec.mem_ratio == 0.25
        # Phase 2 is 50 instructions = 12.5 accesses at mem_ratio .25.
        instance.account(13)
        assert instance.current_phase().spec.mem_ratio == 0.5

    def test_finishes_at_budget(self):
        instance = two_phase_spec(total=100.0).instantiate()
        instance.account(50)  # exactly 100 instructions
        assert instance.finished
        assert instance.progress == pytest.approx(1.0)

    def test_account_zero_is_noop(self):
        instance = two_phase_spec().instantiate()
        instance.account(0)
        assert instance.instructions_retired == 0.0

    def test_account_negative_rejected(self):
        instance = two_phase_spec().instantiate()
        with pytest.raises(WorkloadError):
            instance.account(-1)

    def test_accesses_left_is_positive_until_finished(self):
        instance = two_phase_spec(total=100.0).instantiate()
        while not instance.finished:
            left = instance.accesses_left_in_phase()
            assert left >= 1
            instance.account(min(left, 7))
        assert instance.accesses_left_in_phase() == 0

    def test_patterns_persist_across_phase_revisits(self):
        instance = two_phase_spec(d1=2.0, d2=2.0, total=1000.0).instantiate()
        first = instance.current_phase().pattern
        instance.account(1)  # finish phase 1 (2 instructions)
        instance.account(8)  # finish phase 2
        assert instance.current_phase().pattern is first

    @given(
        st.lists(st.integers(1, 40), min_size=1, max_size=200),
        st.floats(50.0, 5000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_retired_instructions_monotone_and_bounded(
        self, chunks, total
    ):
        instance = two_phase_spec(total=total).instantiate()
        last = 0.0
        for chunk in chunks:
            if instance.finished:
                break
            instance.account(chunk)
            assert instance.instructions_retired >= last
            last = instance.instructions_retired
        if instance.finished:
            # May overshoot by at most one chunk of instructions.
            assert instance.instructions_retired >= total - 1e-6

    def test_footprint_is_max_over_phases(self):
        assert two_phase_spec().footprint_lines() == 8


class TestRuntimePhaseBatching:
    """take_addresses / push_back must preserve the scalar stream."""

    def _phase(self, seed=0):
        from repro.workloads.base import RuntimePhase

        spec = PhaseSpec(
            pattern=SequentialStreamSpec(lines=11, line_repeats=2),
            duration_instructions=1e6,
        )
        import numpy as np

        return RuntimePhase(
            spec, spec.pattern.instantiate(np.random.default_rng(seed), 0)
        )

    def _reference(self, n, seed=0):
        phase = self._phase(seed)
        return phase.take_addresses(n)

    def test_push_back_resumes_exactly(self):
        expected = self._reference(60)
        phase = self._phase()
        batch = phase.take_addresses(20)
        # Consume only 7, return the rest.
        phase.push_back(batch, 7)
        got = batch[:7]
        got += phase.take_addresses(13)
        got += phase.take_addresses(40)
        assert got == expected

    def test_push_back_of_pending_window_rewinds_cursor(self):
        expected = self._reference(30)
        phase = self._phase()
        first = phase.take_addresses(25)
        phase.push_back(first, 5)  # 20 pending
        second = phase.take_addresses(8)  # window into pending
        phase.push_back(second, 3)  # rewind 5 of them
        got = first[:5] + second[:3]
        got += phase.take_addresses(30 - len(got))
        assert got == expected

    def test_push_back_of_fully_consumed_batch_is_noop(self):
        expected = self._reference(20)
        phase = self._phase()
        batch = phase.take_addresses(10)
        phase.push_back(batch, 10)
        assert batch + phase.take_addresses(10) == expected

    def test_take_spanning_pending_and_fresh(self):
        expected = self._reference(50)
        phase = self._phase()
        batch = phase.take_addresses(10)
        phase.push_back(batch, 4)
        # 6 pending + 44 fresh in one draw.
        assert batch[:4] + phase.take_addresses(46) == expected
