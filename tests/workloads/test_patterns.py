"""Access-pattern generators: ranges, footprints, distributions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.patterns import (
    HotColdSpec,
    MixtureSpec,
    PointerChaseSpec,
    SequentialStreamSpec,
    StridedScanSpec,
    TraceSpec,
    UniformRandomSpec,
    ZipfSpec,
)


def sample(spec, n=2000, base=0, seed=0):
    pattern = spec.instantiate(np.random.default_rng(seed), base)
    return [pattern.next_address() for _ in range(n)]


class TestSequentialStream:
    def test_walks_lines_in_order(self):
        addrs = sample(SequentialStreamSpec(lines=4, line_repeats=1), 8)
        assert addrs == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_line_repeats(self):
        addrs = sample(SequentialStreamSpec(lines=3, line_repeats=2), 6)
        assert addrs == [0, 0, 1, 1, 2, 2]

    def test_base_offset(self):
        addrs = sample(
            SequentialStreamSpec(lines=2, line_repeats=1), 2, base=100
        )
        assert addrs == [100, 101]

    def test_footprint(self):
        assert SequentialStreamSpec(lines=7).footprint_lines() == 7

    def test_validation(self):
        with pytest.raises(WorkloadError):
            SequentialStreamSpec(lines=0)


class TestUniformRandom:
    def test_stays_in_range(self):
        addrs = sample(UniformRandomSpec(lines=50), 5000, base=1000)
        assert min(addrs) >= 1000
        assert max(addrs) < 1050

    def test_covers_working_set(self):
        addrs = sample(UniformRandomSpec(lines=20), 2000)
        assert len(set(addrs)) == 20

    def test_roughly_uniform(self):
        addrs = sample(UniformRandomSpec(lines=10), 10_000)
        counts = np.bincount(addrs, minlength=10)
        assert counts.min() > 0.5 * counts.mean()
        assert counts.max() < 1.5 * counts.mean()

    def test_deterministic_under_seed(self):
        a = sample(UniformRandomSpec(lines=100), 500, seed=3)
        b = sample(UniformRandomSpec(lines=100), 500, seed=3)
        assert a == b

    def test_line_repeats(self):
        addrs = sample(UniformRandomSpec(lines=100, line_repeats=3), 30)
        for i in range(0, 30, 3):
            assert addrs[i] == addrs[i + 1] == addrs[i + 2]


class TestPointerChase:
    def test_visits_every_line_exactly_once_per_cycle(self):
        spec = PointerChaseSpec(lines=64)
        addrs = sample(spec, 64)
        assert sorted(addrs) == list(range(64))

    def test_cycle_repeats(self):
        addrs = sample(PointerChaseSpec(lines=16), 32)
        assert addrs[:16] == addrs[16:]

    def test_base_offset(self):
        addrs = sample(PointerChaseSpec(lines=8), 8, base=500)
        assert sorted(addrs) == list(range(500, 508))

    def test_chase_is_not_sequential(self):
        addrs = sample(PointerChaseSpec(lines=256), 256, seed=1)
        strides = {b - a for a, b in zip(addrs, addrs[1:])}
        assert len(strides) > 10  # genuinely scrambled


class TestZipf:
    def test_skew_increases_with_alpha(self):
        flat = sample(ZipfSpec(lines=100, alpha=0.5), 20_000)
        steep = sample(ZipfSpec(lines=100, alpha=2.0), 20_000)

        def top_share(addrs):
            counts = sorted(
                np.bincount(addrs, minlength=100), reverse=True
            )
            return sum(counts[:5]) / len(addrs)

        assert top_share(steep) > top_share(flat) + 0.2

    def test_stays_in_range(self):
        addrs = sample(ZipfSpec(lines=64, alpha=1.0), 5000, base=64)
        assert min(addrs) >= 64
        assert max(addrs) < 128

    def test_hot_lines_are_scattered(self):
        """Placement decouples popularity from address order."""
        addrs = sample(ZipfSpec(lines=1000, alpha=1.5), 20_000, seed=5)
        counts = np.bincount(addrs, minlength=1000)
        hottest = int(np.argmax(counts))
        # With random placement the hottest line is almost surely not 0.
        assert counts[hottest] > counts[0] or hottest != 0


class TestHotCold:
    def test_hot_region_dominates(self):
        spec = HotColdSpec(hot_lines=10, cold_lines=1000, hot_fraction=0.9)
        addrs = sample(spec, 10_000)
        hot_hits = sum(1 for a in addrs if a < 10)
        assert hot_hits / len(addrs) == pytest.approx(0.9, abs=0.03)

    def test_footprint(self):
        spec = HotColdSpec(hot_lines=10, cold_lines=90)
        assert spec.footprint_lines() == 100

    def test_validation(self):
        with pytest.raises(WorkloadError):
            HotColdSpec(hot_lines=1, cold_lines=1, hot_fraction=1.0)


class TestStridedScan:
    def test_stride(self):
        addrs = sample(StridedScanSpec(lines=8, stride=2), 4)
        assert addrs == [0, 2, 4, 6]

    def test_wraps(self):
        addrs = sample(StridedScanSpec(lines=4, stride=2), 4)
        assert addrs == [0, 2, 0, 2]

    def test_footprint_counts_touched_lines(self):
        assert StridedScanSpec(lines=10, stride=3).footprint_lines() == 4


class TestMixture:
    def test_components_get_disjoint_ranges(self):
        spec = MixtureSpec(
            components=(
                (1.0, SequentialStreamSpec(lines=10, line_repeats=1)),
                (1.0, UniformRandomSpec(lines=10)),
            )
        )
        addrs = sample(spec, 4000, base=0)
        assert min(addrs) >= 0
        assert max(addrs) < 20

    def test_weights_respected(self):
        spec = MixtureSpec(
            components=(
                (3.0, SequentialStreamSpec(lines=10, line_repeats=1)),
                (1.0, UniformRandomSpec(lines=10)),
            )
        )
        addrs = sample(spec, 20_000)
        first = sum(1 for a in addrs if a < 10)
        assert first / len(addrs) == pytest.approx(0.75, abs=0.03)

    def test_needs_two_components(self):
        with pytest.raises(WorkloadError):
            MixtureSpec(
                components=((1.0, UniformRandomSpec(lines=4)),)
            )

    def test_footprint_sums_components(self):
        spec = MixtureSpec(
            components=(
                (1.0, SequentialStreamSpec(lines=5, line_repeats=1)),
                (1.0, UniformRandomSpec(lines=7)),
            )
        )
        assert spec.footprint_lines() == 12


@st.composite
def any_pattern_spec(draw):
    lines = draw(st.integers(1, 200))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return SequentialStreamSpec(
            lines=lines, line_repeats=draw(st.integers(1, 4))
        )
    if kind == 1:
        return UniformRandomSpec(lines=lines)
    if kind == 2:
        return PointerChaseSpec(lines=lines)
    if kind == 3:
        return ZipfSpec(lines=lines, alpha=draw(st.floats(0.2, 3.0)))
    return HotColdSpec(
        hot_lines=lines,
        cold_lines=draw(st.integers(1, 200)),
        hot_fraction=draw(st.floats(0.1, 0.9)),
    )


class TestPatternProperties:
    @given(any_pattern_spec(), st.integers(0, 2**20))
    @settings(max_examples=50, deadline=None)
    def test_addresses_within_declared_footprint(self, spec, base):
        pattern = spec.instantiate(np.random.default_rng(0), base)
        footprint = spec.footprint_lines()
        for _ in range(200):
            addr = pattern.next_address()
            assert base <= addr < base + max(footprint, spec.footprint_lines())

    @given(any_pattern_spec())
    @settings(max_examples=30, deadline=None)
    def test_distinct_lines_bounded_by_footprint(self, spec):
        pattern = spec.instantiate(np.random.default_rng(1), 0)
        seen = {pattern.next_address() for _ in range(500)}
        assert len(seen) <= spec.footprint_lines()


class TestTraceReplay:
    def test_replays_in_order_cyclically(self):
        from repro.workloads.patterns import TraceSpec

        addrs = sample(TraceSpec(trace=(3, 1, 4)), 6)
        assert addrs == [3, 1, 4, 3, 1, 4]

    def test_base_offset(self):
        from repro.workloads.patterns import TraceSpec

        addrs = sample(TraceSpec(trace=(0, 1)), 2, base=10)
        assert addrs == [10, 11]

    def test_footprint(self):
        from repro.workloads.patterns import TraceSpec

        assert TraceSpec(trace=(0, 7, 3)).footprint_lines() == 8

    def test_empty_trace_rejected(self):
        from repro.workloads.patterns import TraceSpec

        with pytest.raises(WorkloadError):
            TraceSpec(trace=())

    def test_negative_address_rejected(self):
        from repro.workloads.patterns import TraceSpec

        with pytest.raises(WorkloadError):
            TraceSpec(trace=(1, -2))

    def test_runs_through_the_simulator(self, tiny_machine=None):
        from repro.sim import run_solo
        from repro.workloads.base import PhaseSpec, WorkloadSpec
        from repro.workloads.patterns import TraceSpec
        from repro.config import MachineConfig

        spec = WorkloadSpec(
            name="traced",
            phases=(
                PhaseSpec(
                    pattern=TraceSpec(trace=tuple(range(64)) * 2),
                    duration_instructions=5_000.0,
                    mem_ratio=0.3,
                ),
            ),
            total_instructions=5_000.0,
        )
        result = run_solo(spec, MachineConfig.tiny())
        assert result.latency_sensitive().first_completion_period is not None


#: One spec per pattern family, for the batch-equality checks below.
BATCH_SPECS = [
    SequentialStreamSpec(lines=7, line_repeats=3),
    SequentialStreamSpec(lines=64, line_repeats=1),
    UniformRandomSpec(lines=50),
    PointerChaseSpec(lines=40),
    ZipfSpec(lines=30, alpha=1.1),
    HotColdSpec(hot_lines=4, cold_lines=60, hot_fraction=0.9),
    StridedScanSpec(lines=64, stride=5, line_repeats=2),
    MixtureSpec(
        components=(
            (0.7, SequentialStreamSpec(lines=16, line_repeats=2)),
            (0.3, UniformRandomSpec(lines=32)),
        )
    ),
    TraceSpec(trace=(0, 3, 3, 1, 7, 2, 2, 5)),
]


class TestBatchGeneration:
    """``next_addresses(n)`` must equal ``n`` ``next_address()`` calls.

    The simulator's core loop draws addresses in batches; any
    divergence from the scalar stream would silently change simulated
    results, so the equivalence is exact, per pattern family, across
    uneven batch boundaries.
    """

    @pytest.mark.parametrize(
        "spec", BATCH_SPECS, ids=lambda s: type(s).__name__
    )
    def test_matches_scalar_stream(self, spec):
        scalar = spec.instantiate(np.random.default_rng(7), 16)
        batched = spec.instantiate(np.random.default_rng(7), 16)
        expected = [scalar.next_address() for _ in range(500)]
        got: list[int] = []
        for n in (1, 2, 3, 5, 17, 64, 100, 308):
            got.extend(batched.next_addresses(n))
        assert got == expected

    @pytest.mark.parametrize(
        "spec", BATCH_SPECS, ids=lambda s: type(s).__name__
    )
    def test_scalar_and_batch_draws_interleave(self, spec):
        scalar = spec.instantiate(np.random.default_rng(3), 0)
        mixed = spec.instantiate(np.random.default_rng(3), 0)
        expected = [scalar.next_address() for _ in range(120)]
        got: list[int] = []
        while len(got) < 120:
            got.append(mixed.next_address())
            got.extend(mixed.next_addresses(9))
        assert got == expected[: len(got)]

    @given(sizes=st.lists(st.integers(1, 50), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_batch_sizes(self, sizes):
        spec = SequentialStreamSpec(lines=13, line_repeats=2)
        scalar = spec.instantiate(np.random.default_rng(1), 5)
        batched = spec.instantiate(np.random.default_rng(1), 5)
        expected = [scalar.next_address() for _ in range(sum(sizes))]
        got: list[int] = []
        for n in sizes:
            got.extend(batched.next_addresses(n))
        assert got == expected
