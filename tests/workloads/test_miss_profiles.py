"""Calibration-facing checks: the SPEC models' solo miss profiles.

These are the properties the detectors rely on: a clear separation in
LLC-miss volume between the paper's sensitive and insensitive groups,
and thresholds that actually cut between them.
"""

from __future__ import annotations

import pytest

from repro.config import MachineConfig, default_usage_threshold
from repro.experiments.paperdata import LEAST_SENSITIVE, MOST_SENSITIVE
from repro.sim import run_solo
from repro.workloads import benchmark

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines
LENGTH = 0.04


def misses_per_period(name: str) -> float:
    """Steady-state misses/period: the second half of the run, past
    the cold-start transient that dominates short measurements."""
    result = run_solo(benchmark(name, L3, length=LENGTH), MACHINE)
    series = result.latency_sensitive().llc_miss_series()
    tail = series[len(series) // 2:]
    return sum(tail) / len(tail)


@pytest.fixture(scope="module")
def profiles() -> dict[str, float]:
    names = set(MOST_SENSITIVE) | set(LEAST_SENSITIVE)
    return {name: misses_per_period(name) for name in names}


class TestMissProfiles:
    def test_sensitive_group_misses_heavily(self, profiles):
        threshold = default_usage_threshold(MACHINE)
        for name in MOST_SENSITIVE:
            assert profiles[name] > 3 * threshold, name

    def test_insensitive_group_stays_below_threshold(self, profiles):
        threshold = default_usage_threshold(MACHINE)
        for name in LEAST_SENSITIVE:
            assert profiles[name] < threshold, name

    def test_group_separation_is_wide(self, profiles):
        """The rule-based threshold has real margin on both sides."""
        heaviest_light = max(
            profiles[name] for name in LEAST_SENSITIVE
        )
        lightest_heavy = min(
            profiles[name] for name in MOST_SENSITIVE
        )
        assert lightest_heavy > 5 * heaviest_light

    def test_contender_is_the_heaviest_class(self, profiles):
        """lbm belongs with the heavy missers (it is in the sensitive
        panel precisely because a second lbm hurts it)."""
        assert profiles["470.lbm"] > 10 * default_usage_threshold(
            MACHINE
        )
