"""Synthetic microbenchmark builders."""

from __future__ import annotations

from repro.workloads import synthetic


class TestBuilders:
    def test_streamer(self):
        spec = synthetic.streamer(lines=100, instructions=500.0)
        assert spec.total_instructions == 500.0
        assert spec.footprint_lines() == 100
        assert spec.phases[0].overlap >= 2.0

    def test_pointer_chaser_has_no_overlap(self):
        spec = synthetic.pointer_chaser(lines=64)
        assert spec.phases[0].overlap == 1.0

    def test_zipf_worker(self):
        spec = synthetic.zipf_worker(lines=32, alpha=1.5)
        assert spec.footprint_lines() == 32

    def test_compute_bound_barely_touches_memory(self):
        spec = synthetic.compute_bound()
        assert spec.phases[0].mem_ratio <= 0.05
        assert spec.footprint_lines() <= 8

    def test_phased_worker_alternates(self):
        spec = synthetic.phased_worker(
            heavy_lines=100, light_lines=10
        )
        assert len(spec.phases) == 2
        assert spec.phases[0].mem_ratio > spec.phases[1].mem_ratio

    def test_custom_names(self):
        assert synthetic.streamer(8, name="x").name == "x"
