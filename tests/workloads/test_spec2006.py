"""The SPEC CPU2006 model registry."""

from __future__ import annotations

import pytest

from repro.errors import UnknownBenchmarkError
from repro.workloads.spec2006 import (
    SPEC2006_CPP,
    benchmark,
    benchmark_names,
    spec_registry,
)


class TestRegistry:
    def test_all_21_cpp_benchmarks_present(self):
        assert len(SPEC2006_CPP) == 21
        assert len(spec_registry()) == 21
        assert set(benchmark_names()) == set(spec_registry())

    def test_paper_figure_order(self):
        names = benchmark_names()
        assert names[0] == "400.perlbench"
        assert names[11] == "483.xalancbmk"  # last CINT
        assert names[-1] == "482.sphinx3"

    def test_suites_assigned(self):
        registry = spec_registry()
        ints = [n for n, i in registry.items() if i.suite == "int"]
        fps = [n for n, i in registry.items() if i.suite == "fp"]
        assert len(ints) == 12
        assert len(fps) == 9

    def test_descriptions_nonempty(self):
        for info in spec_registry().values():
            assert len(info.description) > 20


class TestBuilders:
    @pytest.mark.parametrize("name", SPEC2006_CPP)
    def test_builds_valid_spec(self, name):
        spec = benchmark(name, l3_lines=8192)
        assert spec.name == name
        assert spec.total_instructions > 0
        assert spec.phases
        for phase in spec.phases:
            assert 0 < phase.mem_ratio <= 1
            assert phase.overlap >= 1.0

    @pytest.mark.parametrize("name", SPEC2006_CPP)
    def test_scales_with_l3(self, name):
        small = benchmark(name, l3_lines=1024)
        large = benchmark(name, l3_lines=8192)
        assert small.footprint_lines() <= large.footprint_lines()

    def test_length_scales_budget(self):
        short = benchmark("429.mcf", 8192, length=0.5)
        full = benchmark("429.mcf", 8192, length=1.0)
        assert short.total_instructions == pytest.approx(
            full.total_instructions / 2
        )

    def test_suffix_lookup(self):
        assert benchmark("mcf").name == "429.mcf"
        assert benchmark("lbm").name == "470.lbm"

    def test_unknown_benchmark(self):
        with pytest.raises(UnknownBenchmarkError, match="known:"):
            benchmark("999.nonesuch")

    def test_contender_streams_beyond_l3(self):
        lbm = benchmark("470.lbm", l3_lines=8192)
        assert lbm.footprint_lines() > 4 * 8192

    def test_insensitive_models_fit_small_slice(self):
        for name in ("444.namd", "453.povray", "456.hmmer"):
            spec = benchmark(name, l3_lines=8192)
            assert spec.footprint_lines() < 0.1 * 8192

    def test_sensitive_models_press_the_l3(self):
        for name in ("429.mcf", "483.xalancbmk", "450.soplex"):
            spec = benchmark(name, l3_lines=8192)
            assert spec.footprint_lines() > 0.5 * 8192

    def test_phase_mix_invariant_under_length(self):
        """Multi-phase benchmarks keep their phase-duration ratios."""
        for name in ("429.mcf", "403.gcc", "483.xalancbmk"):
            long = benchmark(name, 8192, length=1.0)
            short = benchmark(name, 8192, length=0.5)
            ratio_long = (
                long.phases[0].duration_instructions
                / long.phases[1].duration_instructions
            )
            ratio_short = (
                short.phases[0].duration_instructions
                / short.phases[1].duration_instructions
            )
            assert ratio_long == pytest.approx(ratio_short, rel=0.01)
