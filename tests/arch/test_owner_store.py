"""Tier-5 ownership store (array-backed L3 owner bitmasks) vs. dict.

The owner-bitmask column (`REPRO_OWNER_ARRAYS`, default on) replaces
the `_l3_owners` dict-of-sets with one int64 mask per L3 line slot.
It is a pure representation change: for any stream, any interleaving,
and any tier, every observable — serving levels, counters, stats,
owner sets, occupancy, back-invalidations, stolen lines — must match
the dict walk bit for bit.  These tests drive owner-on and owner-off
hierarchies differentially (kernel and vector tiers), pin the
edge-case semantics the ISSUE names (multi-owner victims with
own-core back-invalidation, flush, the non-inclusive refusal), and
prove the opt-in invariant checker actually catches corruption.
"""

from __future__ import annotations

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.arch import vector_kernel
from repro.arch.cache import SetAssociativeCache
from repro.arch.hierarchy import CacheHierarchy
from repro.arch.replacement import make_policy
from repro.config import CacheGeometry

from tests.arch.test_bulk_kernel import (
    BATCHES,
    VECTOR_BATCHES,
    snapshot,
    tier_env,
    tiny_machine,
)


def owner_pair(machine, vector: str = "0"):
    """Identically seeded hierarchies: array store vs. dict reference."""
    with tier_env(vector=vector, owner="1"):
        arr = CacheHierarchy(machine, seed=11)
    with tier_env(vector=vector, owner="0"):
        ref = CacheHierarchy(machine, seed=11)
    return arr, ref


def drive_pair_kernel(machine, batches):
    arr, ref = owner_pair(machine)
    assert arr._owner_arrays
    assert not ref._owner_arrays
    for core, addrs in batches:
        assert arr.access_many(core, addrs) == \
            ref.access_many(core, addrs)
    assert snapshot(arr) == snapshot(ref)
    arr.check_owner_invariants()
    ref.check_owner_invariants()


def drive_pair_vector(machine, batches):
    """Both hierarchies walk the tier-4 ladder; must stay in lockstep."""
    arr, ref = owner_pair(machine, vector="1")
    assert arr._owner_arrays
    assert not ref._owner_arrays
    for core, addrs in batches:
        arr_np = np.asarray(addrs, dtype=np.int64)
        levels = []
        for h in (arr, ref):
            plan = (h.vector_classify(core, arr_np)
                    if h.vector_kernel_ok(core) else None)
            if plan is not None and h.vector_commit(
                core, plan, len(addrs)
            ):
                levels.append(plan.levels.tolist())
            else:
                levels.append(h.access_many(core, addrs))
        assert levels[0] == levels[1]
    assert snapshot(arr) == snapshot(ref)
    arr.check_owner_invariants()
    ref.check_owner_invariants()


class TestOwnerDifferential:
    """Array store == dict store, bit for bit, on every tier."""

    @settings(max_examples=40, deadline=None)
    @given(batches=BATCHES)
    def test_kernel_tier_randomized(self, batches):
        drive_pair_kernel(tiny_machine(), batches)

    @settings(max_examples=40, deadline=None)
    @given(batches=VECTOR_BATCHES)
    def test_vector_tier_randomized(self, batches):
        drive_pair_vector(tiny_machine(), batches)

    @settings(max_examples=20, deadline=None)
    @given(batches=BATCHES)
    def test_vector_tier_revisit_heavy(self, batches):
        # Classify-declined batches: the scalar re-route over the
        # owner column (the access_many inlined L3 shifts).
        drive_pair_vector(tiny_machine(), batches)

    @settings(max_examples=20, deadline=None)
    @given(batches=BATCHES)
    def test_scalar_ladder_with_quota(self, batches):
        # An L3 quota denies the bulk kernel, so both stores run the
        # scalar access path — including `_evict_own_line`'s logical
        # LRU scan over the bitmask column.
        arr, ref = owner_pair(tiny_machine())
        for h in (arr, ref):
            h.set_l3_quota(0, 0.25)
        for core, addrs in batches:
            assert arr.access_many(core, addrs) == \
                ref.access_many(core, addrs)
        assert snapshot(arr) == snapshot(ref)
        arr.check_owner_invariants()


class TestOwnerEdgeCases:
    """The ISSUE's named owner-record edge cases."""

    def test_multi_owner_victim_with_own_core_back_invalidation(self):
        # Core 0 and core 1 share line 0 (owners {0, 1}); core 0's
        # prefetches then fill L3 set 0 until line 0 is evicted while
        # it still sits in core 0's own L2 (the demand stream lives in
        # a different L2 set, so it survives there) and in core 1's
        # caches.  The multi-owner fan-out must back-invalidate BOTH
        # cores and charge core 1 a stolen line — identically in both
        # stores.
        machine = tiny_machine(prefetch_degree=1)
        arr, ref = owner_pair(machine)
        for h in (arr, ref):
            h.access(0, 0)
            h.access(1, 0)
            # Demands 15, 31, ... land in L3 set 15 / L2 set 3; their
            # next-line prefetches 16, 32, ... land in L3 set 0.
            for i in range(1, 10):
                h.access(0, 16 * i - 1)
        assert snapshot(arr) == snapshot(ref)
        assert not arr.l3.contains(0)
        assert arr.counters[0].back_invalidations >= 1
        assert arr.counters[1].back_invalidations >= 1
        assert arr.counters[1].lines_stolen >= 1
        arr.check_owner_invariants()

    def test_multi_owner_victim_in_bulk_kernel(self):
        # The same fan-out through access_many's inlined fill: core 1
        # sweeps core 0's hot set-0 lines out of the L3 from behind.
        machine = tiny_machine()
        arr, ref = owner_pair(machine)
        hot = [a * 16 for a in range(8)]
        sweep = [(8 + a) * 16 for a in range(16)]
        for h in (arr, ref):
            for _ in range(6):
                h.access_many(0, hot * 3)
                h.access_many(1, sweep)
        assert snapshot(arr) == snapshot(ref)
        assert any(c.back_invalidations > 0 for c in arr.counters)
        assert any(c.lines_stolen > 0 for c in arr.counters)
        arr.check_owner_invariants()

    def test_flush_clears_ownership_and_occupancy(self):
        arr, _ = owner_pair(tiny_machine())
        arr.access_many(0, list(range(64)))
        arr.access_many(1, list(range(32)))
        assert arr.l3_owner_sets()
        assert any(arr._occupancy)
        arr.flush()
        assert arr.l3_owner_sets() == {}
        assert arr._occupancy == [0] * arr.machine.num_cores
        assert not any(arr.l3._owner_tags)
        arr.check_owner_invariants()
        # The store keeps working after the reset.
        arr.access_many(0, list(range(16)))
        assert arr._occupancy[0] == 16
        arr.check_owner_invariants()

    def test_non_inclusive_l3_refuses_array_path(self):
        with tier_env(owner="1"):
            h = CacheHierarchy(
                tiny_machine(l3_inclusive=False), seed=3
            )
        assert not h._owner_arrays
        assert h.l3._owner_tags is None
        h.access_many(0, list(range(16)))
        # The reference dict carries the records instead.
        assert h._l3_owners
        h.check_owner_invariants()

    def test_env_gate_reverts_to_dict(self):
        with tier_env(owner="0"):
            h = CacheHierarchy(tiny_machine(), seed=3)
        assert not h._owner_arrays
        assert h.l3._owner_tags is None
        h.access_many(0, list(range(16)))
        assert h._l3_owners
        h.check_owner_invariants()

    def test_attach_owner_column_requires_flat_storage(self):
        cache = SetAssociativeCache(
            "loose", CacheGeometry(num_sets=4, associativity=4),
            make_policy("plru", 4),
        )
        assert not cache._flat
        with pytest.raises(ValueError):
            cache.attach_owner_column()


def fill_pair(num_sets: int = 8, assoc: int = 4):
    """Two identical cold list-backed private levels (batched vs scalar)."""
    with tier_env():
        geo = CacheGeometry(num_sets=num_sets, associativity=assoc)
        bat = SetAssociativeCache("bat", geo, make_policy("lru", assoc))
        ref = SetAssociativeCache("ref", geo, make_policy("lru", assoc))
    assert bat._flat and not bat._vector
    assert isinstance(bat._tags, list)
    return bat, ref


def drive_fill(bat, ref, stream):
    """One all-miss distinct stream through both verbs; compare state."""
    c = np.asarray(stream, dtype=np.int64)
    assert vector_kernel._fill_batch(bat, c, stream, len(stream)) == \
        vector_kernel._fill_scalar(ref, list(stream))
    assert bat._tags == ref._tags
    assert bat._fill_counts == ref._fill_counts
    assert bat._heads == ref._heads
    assert bat._mru == ref._mru
    assert bat._resident == ref._resident


class TestFillBatchVerb:
    """`_fill_batch` replays `_fill_scalar`'s exact physical state.

    The verb only dispatches for collapsed streams of ≥ 384 misses —
    beyond what the tiny-machine differential suites generate — so it
    gets direct coverage here: every window branch (partial append,
    in-place circular overwrite with and without wrap-around, full
    replacement from empty/partial/full, overflowing partial set),
    plus a randomized soak and an end-to-end commit that proves the
    dispatch actually routes through it on a wide machine.
    """

    def test_each_window_branch(self):
        bat, ref = fill_pair()
        counter = itertools.count()

        def seg(s, k):
            # k fresh distinct addresses all mapping to set s.
            return [next(counter) * 8 + s for _ in range(k)]

        def merge(*segs):
            # Round-robin interleave so the argsort grouping is real.
            return [a for tup in itertools.zip_longest(*segs)
                    for a in tup if a is not None]

        # Cold: partial (2), exactly-full (4), overflow-from-empty
        # k >= a (6), partial (3).
        drive_fill(bat, ref, merge(seg(0, 2), seg(1, 4),
                                   seg(2, 6), seg(3, 3)))
        assert bat._fill_counts[:4] == [2, 4, 4, 3]
        assert bat._heads[2] == 2  # 6 inserts into 4 ways wrapped
        # Warm: partial append (1), full-set in-place without wrap
        # (k=2, head 0 -> 2), full-set in-place WITH wrap (k=3 from
        # head 2), overflowing partial set (fill 3 + k 3 > a).
        drive_fill(bat, ref, merge(seg(0, 1), seg(1, 2),
                                   seg(2, 3), seg(3, 3)))
        assert bat._heads[1] == 2 and bat._heads[2] == 1
        # Full replacement over a full set (k=5 >= a) and over a
        # partial set (set 0 holds 3 of 4).
        drive_fill(bat, ref, merge(seg(1, 5), seg(0, 7)))
        drive_fill(bat, ref, seg(4, 1))  # untouched-set sanity

    def test_randomized_soak(self):
        bat, ref = fill_pair()
        rng = random.Random(1234)
        counter = itertools.count()
        for _ in range(200):
            stream = [next(counter) * 8 + rng.randrange(8)
                      for _ in range(rng.randrange(1, 40))]
            drive_fill(bat, ref, stream)

    def test_vector_commit_routes_through_fill_batch(self, monkeypatch):
        # A wide L2 (512 lines) puts a 400-miss batch inside
        # `_fill_batch`'s window [384, 2*cap); the stride keeps the
        # stream non-consecutive so the replacement verbs stay out.
        calls = []
        orig = vector_kernel._fill_batch
        monkeypatch.setattr(
            vector_kernel, "_fill_batch",
            lambda *a: calls.append(1) or orig(*a),
        )
        machine = tiny_machine(
            l2=CacheGeometry(num_sets=128, associativity=4),
            l3=CacheGeometry(num_sets=1024, associativity=8),
        )
        drive_pair_vector(machine, [
            (0, list(range(0, 1200, 3))),
            (0, list(range(1201, 2401, 3))),
        ])
        assert calls


class TestInvariantChecker:
    """REPRO_DEBUG_INVARIANTS must catch real corruption, not just pass."""

    def _hier(self):
        arr, _ = owner_pair(tiny_machine())
        arr.access_many(0, list(range(48)))
        arr.access_many(1, list(range(24)))
        arr.check_owner_invariants()
        return arr

    def test_occupancy_drift_detected(self):
        h = self._hier()
        h._occupancy[0] += 1
        with pytest.raises(AssertionError, match="occupancy"):
            h.check_owner_invariants()

    def test_ownerless_resident_line_detected(self):
        h = self._hier()
        # Zero out an occupied slot's mask: its line becomes resident
        # but ownerless.
        si = next(
            si for si in range(h.l3._num_sets)
            if h.l3._fill_counts[si]
        )
        h.l3._owner_tags[si * h.l3._assoc] = 0
        with pytest.raises(AssertionError):
            h.check_owner_invariants()

    def test_dict_store_checked_too(self):
        with tier_env(owner="0"):
            h = CacheHierarchy(tiny_machine(), seed=7)
        h.access_many(0, list(range(48)))
        h.check_owner_invariants()
        addr = next(iter(h._l3_owners))
        h._l3_owners[addr].add(1)
        with pytest.raises(AssertionError):
            h.check_owner_invariants()
