"""PMU counter banks and samples."""

from __future__ import annotations

import pytest

from repro.arch.hierarchy import HierarchyCounters
from repro.arch.pmu import CorePMU, PMUEvent, PMUSample


class FakeCore:
    def __init__(self):
        self.cycles_executed = 0.0
        self.instructions_retired = 0.0


def make_pmu() -> tuple[CorePMU, FakeCore, HierarchyCounters]:
    core = FakeCore()
    counters = HierarchyCounters()
    return CorePMU(core, counters), core, counters


class TestReadRestart:
    def test_first_read_is_zero(self):
        pmu, _, _ = make_pmu()
        sample = pmu.read()
        assert sample.cycles == 0
        assert sample.llc_misses == 0

    def test_read_returns_deltas(self):
        pmu, core, counters = make_pmu()
        core.cycles_executed = 1000.0
        core.instructions_retired = 500.0
        counters.l3_misses = 7
        counters.l2_misses = 9
        sample = pmu.read()
        assert sample.cycles == 1000.0
        assert sample.instructions == 500.0
        assert sample.llc_misses == 7

    def test_read_restarts_counting(self):
        pmu, core, counters = make_pmu()
        core.cycles_executed = 1000.0
        counters.l3_misses = 7
        pmu.read()
        core.cycles_executed = 1500.0
        counters.l3_misses = 10
        sample = pmu.read()
        assert sample.cycles == 500.0
        assert sample.llc_misses == 3

    def test_peek_does_not_restart(self):
        pmu, core, _ = make_pmu()
        core.cycles_executed = 100.0
        assert pmu.peek().cycles == 100.0
        assert pmu.peek().cycles == 100.0
        assert pmu.read().cycles == 100.0

    def test_reads_counted(self):
        pmu, _, _ = make_pmu()
        pmu.read()
        pmu.read()
        assert pmu.reads == 2


class TestSample:
    def test_ipc(self):
        sample = PMUSample(1000.0, 1500.0, 0, 0, 0, 0, 0, 0)
        assert sample.ipc == pytest.approx(1.5)

    def test_ipc_zero_cycles(self):
        assert PMUSample.zero().ipc == 0.0

    def test_llc_miss_rate(self):
        sample = PMUSample(1.0, 1.0, 25, 100, 0, 0, 0, 0)
        assert sample.llc_miss_rate == pytest.approx(0.25)

    def test_llc_miss_rate_without_references(self):
        assert PMUSample.zero().llc_miss_rate == 0.0

    def test_get_by_event(self):
        sample = PMUSample(10.0, 20.0, 1, 2, 3, 4, 5, 6)
        assert sample.get(PMUEvent.CYCLES) == 10.0
        assert sample.get(PMUEvent.INSTRUCTIONS_RETIRED) == 20.0
        assert sample.get(PMUEvent.LLC_MISSES) == 1
        assert sample.get(PMUEvent.LLC_REFERENCES) == 2
        assert sample.get(PMUEvent.L2_MISSES) == 3
        assert sample.get(PMUEvent.L1_MISSES) == 4
        assert sample.get(PMUEvent.BACK_INVALIDATIONS) == 5
        assert sample.get(PMUEvent.LINES_STOLEN) == 6
