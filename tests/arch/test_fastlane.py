"""Hot-path specializations vs. the generic reference implementation.

The LRU-specialized probe/fill rebindings and the core's inlined L1
MRU-hit check are pure optimisations: every observable — set contents,
stats, per-core counters, simulated results — must match the generic
path bit for bit.  These tests drive both paths with identical inputs
and compare, and check the cache invariants on the specialized path.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import SetAssociativeCache
from repro.arch.chip import MulticoreChip
from repro.arch.replacement import make_policy
from repro.config import CacheGeometry, MachineConfig
from repro.sim import run_colocated, run_solo
from repro.workloads import synthetic

GEOMETRY = CacheGeometry(num_sets=8, associativity=4)


def make_pair() -> tuple[SetAssociativeCache, SetAssociativeCache]:
    """One specialized and one generic LRU cache, same geometry."""
    fast = SetAssociativeCache(
        "fast", GEOMETRY, make_policy("lru", 4), specialize=True
    )
    slow = SetAssociativeCache(
        "slow", GEOMETRY, make_policy("lru", 4), specialize=False
    )
    return fast, slow


def snapshot(cache: SetAssociativeCache):
    return (
        [cache.set_contents(i) for i in range(GEOMETRY.num_sets)],
        cache.stats.hits,
        cache.stats.misses,
        cache.stats.fills,
        cache.stats.evictions,
        cache.stats.invalidations,
    )


#: (op, addr) streams: 0=probe, 1=fill, 2=invalidate.
OP_STREAM = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 63)),
    min_size=1,
    max_size=300,
)


class TestSpecializedLru:
    def test_specialized_verbs_are_rebound(self):
        fast, slow = make_pair()
        assert fast.probe.__func__ is fast._probe_lru.__func__
        assert slow.probe.__func__ is SetAssociativeCache.probe

    @pytest.mark.parametrize("policy", ["fifo", "random", "plru"])
    def test_other_policies_stay_generic(self, policy):
        cache = SetAssociativeCache(
            "c", GEOMETRY, make_policy(policy, 4), specialize=True
        )
        assert cache.probe.__func__ is SetAssociativeCache.probe

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_mru_noop_flag_for_tail_stable_policies(self, policy):
        cache = SetAssociativeCache(
            "c", GEOMETRY, make_policy(policy, 4), specialize=True
        )
        assert cache.hit_is_mru_noop

    def test_mru_noop_flag_denied_for_plru(self):
        # PLRU flips tree bits even when the tail line re-hits, so the
        # inlined MRU shortcut would diverge from the reference.
        cache = SetAssociativeCache(
            "c", GEOMETRY, make_policy("plru", 4), specialize=True
        )
        assert not cache.hit_is_mru_noop

    @given(ops=OP_STREAM)
    @settings(max_examples=200, deadline=None)
    def test_equivalent_to_generic_path(self, ops):
        fast, slow = make_pair()
        for op, addr in ops:
            if op == 0:
                assert fast.probe(addr) == slow.probe(addr)
            elif op == 1:
                assert fast.fill(addr) == slow.fill(addr)
            else:
                assert fast.invalidate(addr) == slow.invalidate(addr)
        assert snapshot(fast) == snapshot(slow)

    @given(ops=OP_STREAM)
    @settings(max_examples=100, deadline=None)
    def test_invariants_on_specialized_path(self, ops):
        fast, _ = make_pair()
        probes = 0
        for op, addr in ops:
            if op == 0:
                fast.probe(addr)
                probes += 1
            elif op == 1:
                fast.fill(addr)
            else:
                fast.invalidate(addr)
        assert fast.stats.hits + fast.stats.misses == probes
        assert fast.occupancy <= fast.capacity_lines
        for i in range(GEOMETRY.num_sets):
            contents = fast.set_contents(i)
            assert len(contents) <= GEOMETRY.associativity
            assert len(set(contents)) == len(contents)  # no duplicates


def run_fixture(flag: str):
    """A small co-located run with the fast lane forced on/off."""
    os.environ["REPRO_FAST_LANE"] = flag
    try:
        machine = MachineConfig.tiny()
        result = run_colocated(
            synthetic.streamer(lines=600, instructions=40_000.0),
            synthetic.streamer(lines=900, instructions=60_000.0),
            machine,
            seed=11,
        )
    finally:
        os.environ.pop("REPRO_FAST_LANE", None)
    return result


class TestFullRunEquivalence:
    def test_colocated_run_identical_fast_vs_generic(self):
        fast = run_fixture("1")
        slow = run_fixture("0")
        assert set(fast.processes) == set(slow.processes)
        for name, a in fast.processes.items():
            b = slow.processes[name]
            assert a.llc_miss_series() == b.llc_miss_series()
            assert a.instruction_series() == b.instruction_series()
        assert (
            fast.latency_sensitive().completion_periods
            == slow.latency_sensitive().completion_periods
        )

    def test_solo_counters_identical_fast_vs_generic(self):
        counters = {}
        for flag in ("1", "0"):
            os.environ["REPRO_FAST_LANE"] = flag
            try:
                result = run_solo(
                    synthetic.streamer(lines=700, instructions=30_000.0),
                    MachineConfig.tiny(),
                    seed=5,
                )
                ls = result.latency_sensitive()
                counters[flag] = (
                    ls.llc_miss_series(),
                    ls.completion_periods,
                )
            finally:
                os.environ.pop("REPRO_FAST_LANE", None)
        assert counters["1"] == counters["0"]

    def test_inclusion_holds_with_fast_lane(self):
        os.environ["REPRO_FAST_LANE"] = "1"
        try:
            chip = MulticoreChip(MachineConfig.tiny(), seed=2)
            from repro.sim.process import AppClass, SimProcess

            procs = [
                SimProcess(
                    synthetic.streamer(lines=800, instructions=1e9),
                    0,
                    AppClass.LATENCY_SENSITIVE,
                ),
                SimProcess(
                    synthetic.pointer_chaser(
                        lines=500, instructions=1e9
                    ),
                    1,
                    AppClass.BATCH,
                ),
            ]
            for proc in procs:
                proc.launch()
                for _ in range(40):
                    chip.core(proc.core_id).run(proc, 5_000.0)
            assert chip.hierarchy.check_inclusion() == []
        finally:
            os.environ.pop("REPRO_FAST_LANE", None)
