"""Main-memory latency/bandwidth model."""

from __future__ import annotations

import pytest

from repro.arch.memory import MAX_RHO, MainMemory
from repro.errors import ConfigError


class TestBasics:
    def test_base_latency_with_idle_channel(self):
        mem = MainMemory(latency=200, service_cycles=20.0)
        assert mem.access(0.0) == 200.0

    def test_bandwidth_disabled(self):
        mem = MainMemory(latency=150, service_cycles=None)
        for _ in range(1000):
            assert mem.access(0.0) == 150.0
        mem.end_period(1_000)
        assert mem.access(0.0) == 150.0

    def test_queue_grows_with_load(self):
        mem = MainMemory(latency=200, service_cycles=20.0)
        for _ in range(40):  # rho = 40*20/1000 = 0.8
            mem.access(0.0)
        mem.end_period(1_000)
        loaded = mem.access(0.0)
        assert loaded > 200.0

    def test_queue_follows_mdi_formula(self):
        mem = MainMemory(latency=200, service_cycles=20.0, smoothing=1.0)
        for _ in range(25):  # rho = 0.5
            mem.access(0.0)
        mem.end_period(1_000)
        expected = 20.0 * 0.5 / (2 * 0.5)
        assert mem.current_queue_delay == pytest.approx(expected)

    def test_rho_capped(self):
        mem = MainMemory(latency=200, service_cycles=20.0, smoothing=1.0)
        for _ in range(10_000):
            mem.access(0.0)
        mem.end_period(1_000)
        assert mem.rho_history[-1] == pytest.approx(MAX_RHO)

    def test_smoothing_damps_jumps(self):
        fast = MainMemory(latency=200, service_cycles=20.0, smoothing=1.0)
        slow = MainMemory(latency=200, service_cycles=20.0, smoothing=0.25)
        for mem in (fast, slow):
            for _ in range(40):
                mem.access(0.0)
            mem.end_period(1_000)
        assert slow.current_queue_delay < fast.current_queue_delay

    def test_idle_period_decays_queue(self):
        mem = MainMemory(latency=200, service_cycles=20.0)
        for _ in range(40):
            mem.access(0.0)
        mem.end_period(1_000)
        busy = mem.current_queue_delay
        mem.end_period(1_000)  # no arrivals
        assert mem.current_queue_delay < busy

    def test_reset(self):
        mem = MainMemory()
        mem.access(0.0)
        mem.end_period(1_000)
        mem.reset()
        assert mem.accesses == 0
        assert mem.current_queue_delay == 0.0
        assert mem.rho_history == []

    def test_mean_queue_accounting(self):
        mem = MainMemory(latency=200, service_cycles=20.0, smoothing=1.0)
        for _ in range(25):
            mem.access(0.0)
        mem.end_period(1_000)
        mem.access(0.0)
        assert mem.mean_queue_cycles > 0.0


class TestValidation:
    def test_bad_latency(self):
        with pytest.raises(ConfigError):
            MainMemory(latency=0)

    def test_bad_service(self):
        with pytest.raises(ConfigError):
            MainMemory(service_cycles=-1.0)

    def test_bad_smoothing(self):
        with pytest.raises(ConfigError):
            MainMemory(smoothing=0.0)
        with pytest.raises(ConfigError):
            MainMemory(smoothing=1.5)
