"""Dirty-line writeback modelling (optional extension)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.arch.chip import MulticoreChip
from repro.config import MachineConfig
from repro.errors import WorkloadError
from repro.sim import run_solo
from repro.sim.process import SimProcess
from repro.workloads import synthetic
from repro.workloads.base import PhaseSpec
from repro.workloads.patterns import UniformRandomSpec


def machine(enabled: bool) -> MachineConfig:
    return dataclasses.replace(
        MachineConfig.tiny(), model_writebacks=enabled
    )


class TestWritebacks:
    def test_disabled_by_default(self):
        assert not MachineConfig.scaled_nehalem().model_writebacks
        chip = MulticoreChip(MachineConfig.tiny())
        proc = SimProcess(
            synthetic.streamer(lines=1_000, instructions=1e9), 0
        )
        proc.launch()
        chip.core(0).run(proc, 20_000.0)
        assert chip.hierarchy.counters_for(0).writebacks == 0

    def test_streaming_stores_produce_writebacks(self):
        chip = MulticoreChip(machine(True))
        proc = SimProcess(
            synthetic.streamer(lines=1_000, instructions=1e9), 0
        )
        proc.launch()
        chip.core(0).run(proc, 20_000.0)
        counters = chip.hierarchy.counters_for(0)
        assert counters.writebacks > 0
        # Writebacks are additional memory-channel traffic.
        assert chip.memory.accesses > counters.l3_misses

    def test_writeback_volume_tracks_store_ratio(self):
        def run_with(store_ratio: float) -> int:
            chip = MulticoreChip(machine(True))
            spec = synthetic.streamer(lines=1_000, instructions=1e9)
            phase = dataclasses.replace(
                spec.phases[0], store_ratio=store_ratio
            )
            spec = dataclasses.replace(spec, phases=(phase,))
            proc = SimProcess(spec, 0)
            proc.launch()
            chip.core(0).run(proc, 20_000.0)
            return chip.hierarchy.counters_for(0).writebacks

        # Dirtiness saturates per line (any store dirties it), so
        # compare against a ratio low enough to leave most lines clean.
        assert run_with(0.6) > 2.0 * run_with(0.05)
        assert run_with(0.0) == 0

    def test_clean_reuse_produces_no_writebacks(self):
        chip = MulticoreChip(machine(True))
        spec = synthetic.zipf_worker(lines=8, instructions=1e9)
        phase = dataclasses.replace(spec.phases[0], store_ratio=0.0)
        spec = dataclasses.replace(spec, phases=(phase,))
        proc = SimProcess(spec, 0)
        proc.launch()
        chip.core(0).run(proc, 20_000.0)
        assert chip.hierarchy.counters_for(0).writebacks == 0

    def test_store_ratio_validated(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(
                pattern=UniformRandomSpec(lines=4),
                duration_instructions=10.0,
                store_ratio=1.5,
            )

    def test_writebacks_slow_a_streamer_down(self):
        stream = synthetic.streamer(lines=30_000, instructions=60_000.0)
        base = MachineConfig.scaled_nehalem()
        on = dataclasses.replace(base, model_writebacks=True)
        clean = run_solo(stream, base)
        dirty = run_solo(stream, on)
        assert (
            dirty.latency_sensitive().completion_periods
            >= clean.latency_sensitive().completion_periods
        )
