"""Replacement-policy behaviour and invariants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    TreePLRUPolicy,
    make_policy,
)
from repro.errors import CacheConfigError


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy()
        contents = []
        for addr in (1, 2, 3):
            policy.on_fill(contents, addr, 0)
        assert contents[policy.victim_index(contents, 0)] == 1

    def test_hit_refreshes_recency(self):
        policy = LRUPolicy()
        contents = []
        for addr in (1, 2, 3):
            policy.on_fill(contents, addr, 0)
        policy.on_hit(contents, contents.index(1), 0)
        assert contents[policy.victim_index(contents, 0)] == 2

    def test_repeated_hits_keep_order_stable(self):
        policy = LRUPolicy()
        contents = []
        for addr in (1, 2, 3):
            policy.on_fill(contents, addr, 0)
        for _ in range(3):
            policy.on_hit(contents, contents.index(3), 0)
        assert contents == [1, 2, 3]

    @given(st.lists(st.integers(0, 9), min_size=1, max_size=60))
    def test_matches_reference_lru_model(self, accesses):
        """LRU policy + 4-way set == textbook LRU on the same stream."""
        policy = LRUPolicy()
        contents: list[int] = []
        reference: list[int] = []  # MRU at end
        for addr in accesses:
            if addr in contents:
                policy.on_hit(contents, contents.index(addr), 0)
                reference.remove(addr)
                reference.append(addr)
            else:
                if len(contents) == 4:
                    victim = policy.victim_index(contents, 0)
                    assert contents[victim] == reference[0]
                    policy.on_invalidate(contents, victim, 0)
                    reference.pop(0)
                policy.on_fill(contents, addr, 0)
                reference.append(addr)
            assert contents == reference


class TestFIFO:
    def test_hits_do_not_refresh(self):
        policy = FIFOPolicy()
        contents = []
        for addr in (1, 2, 3):
            policy.on_fill(contents, addr, 0)
        policy.on_hit(contents, 0, 0)  # hit on 1
        assert contents[policy.victim_index(contents, 0)] == 1


class TestRandom:
    def test_victim_in_range(self):
        policy = RandomPolicy(seed=42)
        contents = [10, 20, 30, 40]
        for _ in range(50):
            assert 0 <= policy.victim_index(contents, 0) < 4

    def test_deterministic_under_seed(self):
        a = RandomPolicy(seed=7)
        b = RandomPolicy(seed=7)
        contents = [1, 2, 3, 4]
        seq_a = [a.victim_index(contents, 0) for _ in range(20)]
        seq_b = [b.victim_index(contents, 0) for _ in range(20)]
        assert seq_a == seq_b

    def test_eventually_covers_all_ways(self):
        policy = RandomPolicy(seed=3)
        contents = [1, 2, 3, 4]
        seen = {policy.victim_index(contents, 0) for _ in range(200)}
        assert seen == {0, 1, 2, 3}


class TestTreePLRU:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(CacheConfigError):
            TreePLRUPolicy(3)

    def test_victim_avoids_recently_touched(self):
        policy = TreePLRUPolicy(4)
        contents = []
        for addr in (1, 2, 3, 4):
            policy.on_fill(contents, addr, 0)
        # 4 was filled last; the PLRU victim must not be it.
        assert contents[policy.victim_index(contents, 0)] != 4

    def test_touch_protects_way(self):
        policy = TreePLRUPolicy(4)
        contents = []
        for addr in (1, 2, 3, 4):
            policy.on_fill(contents, addr, 0)
        for way in range(4):
            policy.on_hit(contents, way, 0)
            assert policy.victim_index(contents, 0) != way

    def test_per_set_state_is_independent(self):
        policy = TreePLRUPolicy(2)
        s0, s1 = [], []
        policy.on_fill(s0, 1, 0)
        policy.on_fill(s0, 2, 0)
        policy.on_fill(s1, 3, 1)
        policy.on_fill(s1, 4, 1)
        policy.on_hit(s0, 0, 0)
        # set 1 state untouched by set 0 hit: victim is way 0 there.
        assert policy.victim_index(s1, 1) == 0
        assert policy.victim_index(s0, 0) == 1

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=40))
    def test_victim_always_valid(self, touches):
        policy = TreePLRUPolicy(4)
        contents = []
        for addr in (1, 2, 3, 4):
            policy.on_fill(contents, addr, 0)
        for way in touches:
            policy.on_hit(contents, way, 0)
            assert 0 <= policy.victim_index(contents, 0) < 4


class TestFactory:
    @pytest.mark.parametrize("name", ["lru", "fifo", "random", "plru"])
    def test_known_policies(self, name):
        policy = make_policy(name, associativity=8, seed=1)
        contents = []
        policy.on_fill(contents, 5, 0)
        assert contents == [5]

    def test_unknown_policy(self):
        with pytest.raises(CacheConfigError, match="unknown replacement"):
            make_policy("mru", associativity=4)
