"""Cache-hierarchy behaviour: levels, inclusion, cross-core effects."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.hierarchy import (
    L1_HIT,
    L2_HIT,
    L3_HIT,
    MEMORY,
    CacheHierarchy,
)
from repro.config import CacheGeometry, MachineConfig
from repro.errors import ConfigError


def tiny_hierarchy(inclusive=True, cores=2) -> CacheHierarchy:
    machine = MachineConfig(
        name="h",
        num_cores=cores,
        l1=CacheGeometry(num_sets=2, associativity=2),
        l2=CacheGeometry(num_sets=4, associativity=2),
        l3=CacheGeometry(num_sets=8, associativity=4),
        period_cycles=1_000,
        l3_inclusive=inclusive,
    )
    return CacheHierarchy(machine)


class TestLevels:
    def test_cold_access_goes_to_memory(self):
        h = tiny_hierarchy()
        assert h.access(0, 100) == MEMORY

    def test_second_access_hits_l1(self):
        h = tiny_hierarchy()
        h.access(0, 100)
        assert h.access(0, 100) == L1_HIT

    def test_l2_hit_after_l1_eviction(self):
        h = tiny_hierarchy()
        # L1: 2 sets x 2 ways. Fill set 0 of L1 past capacity with
        # addresses 0, 4, 8 (all set 0 in L1), then re-access the first.
        for addr in (0, 4, 8):
            h.access(0, addr)
        level = h.access(0, 0)
        assert level in (L2_HIT, L3_HIT)  # evicted from L1 at least

    def test_cross_core_l3_hit(self):
        h = tiny_hierarchy()
        h.access(0, 100)
        # Same line from the other core: private caches cold, L3 warm.
        assert h.access(1, 100) == L3_HIT

    def test_counters_track_levels(self):
        h = tiny_hierarchy()
        h.access(0, 1)
        h.access(0, 1)
        counters = h.counters_for(0)
        assert counters.l3_misses == 1
        assert counters.l1_hits == 1
        assert counters.llc_references == 1

    def test_counters_for_validates(self):
        h = tiny_hierarchy()
        with pytest.raises(ConfigError):
            h.counters_for(5)


class TestInclusion:
    def test_inclusion_holds_after_traffic(self):
        h = tiny_hierarchy()
        for addr in range(64):
            h.access(addr % 2, addr)
        assert h.check_inclusion() == []

    def test_back_invalidation_removes_private_copy(self):
        h = tiny_hierarchy()
        h.access(0, 0)
        # Core 1 floods L3 set 0 (L3: 8 sets, so addrs = 0 mod 8).
        for k in range(1, 6):
            h.access(1, 8 * k)
        # Core 0's line 0 must have left L3 -- and its private caches.
        assert not h.l3.contains(0)
        assert not h.l1[0].contains(0)
        assert not h.l2[0].contains(0)
        assert h.counters_for(0).back_invalidations >= 1

    def test_lines_stolen_attributed_to_victim(self):
        h = tiny_hierarchy()
        h.access(0, 0)
        for k in range(1, 6):
            h.access(1, 8 * k)
        assert h.counters_for(0).lines_stolen >= 1
        assert h.counters_for(1).lines_stolen == 0

    def test_non_inclusive_keeps_private_copies(self):
        h = tiny_hierarchy(inclusive=False)
        h.access(0, 0)
        for k in range(1, 6):
            h.access(1, 8 * k)
        assert not h.l3.contains(0)
        assert h.l1[0].contains(0) or h.l2[0].contains(0)


class TestOccupancy:
    def test_single_core_owns_everything(self):
        h = tiny_hierarchy()
        for addr in range(16):
            h.access(0, addr)
        assert h.l3_occupancy(0) == h.l3.occupancy
        assert h.l3_occupancy(1) == 0

    def test_occupancy_fraction_bounds(self):
        h = tiny_hierarchy()
        for addr in range(100):
            h.access(addr % 2, addr)
        f0 = h.l3_occupancy_fraction(0)
        f1 = h.l3_occupancy_fraction(1)
        assert 0.0 <= f0 <= 1.0
        assert 0.0 <= f1 <= 1.0

    def test_streaming_core_steals_occupancy(self):
        h = tiny_hierarchy()
        # Core 0 establishes a small working set.
        for addr in range(8):
            h.access(0, addr)
        before = h.l3_occupancy(0)
        # Core 1 streams far more lines through the shared L3.
        for addr in range(1000, 1200):
            h.access(1, addr)
        assert h.l3_occupancy(0) < before
        assert h.l3_occupancy(1) > h.l3_occupancy(0)

    def test_flush_resets_occupancy(self):
        h = tiny_hierarchy()
        for addr in range(32):
            h.access(0, addr)
        h.flush()
        assert h.l3.occupancy == 0
        assert h.l3_occupancy(0) == 0
        assert h.check_inclusion() == []


class TestInvariants:
    @given(
        st.lists(
            st.tuples(st.integers(0, 1), st.integers(0, 63)),
            min_size=1,
            max_size=400,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_inclusion_and_occupancy_invariants(self, accesses):
        h = tiny_hierarchy()
        for core, addr in accesses:
            level = h.access(core, addr)
            assert level in (L1_HIT, L2_HIT, L3_HIT, MEMORY)
        assert h.check_inclusion() == []
        total_owned = h.l3_occupancy(0) + h.l3_occupancy(1)
        # Owner sets can overlap on shared lines, never undercount.
        assert total_owned >= h.l3.occupancy - 1  # allow in-flight skew
        for core in (0, 1):
            c = h.counters_for(core)
            assert c.l1_hits + c.l1_misses == sum(
                1 for cc, _ in accesses if cc == core
            )
            assert c.l2_hits + c.l2_misses == c.l1_misses
            assert c.l3_hits + c.l3_misses == c.l2_misses
