"""Set-associative cache behaviour and invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import SetAssociativeCache
from repro.arch.replacement import LRUPolicy
from repro.config import CacheGeometry
from repro.errors import CacheConfigError


def make_cache(num_sets=4, associativity=2) -> SetAssociativeCache:
    return SetAssociativeCache(
        "test",
        CacheGeometry(num_sets=num_sets, associativity=associativity),
        LRUPolicy(),
    )


class TestBasics:
    def test_cold_miss_then_hit_after_fill(self):
        cache = make_cache()
        assert not cache.probe(12)
        cache.fill(12)
        assert cache.probe(12)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_fill_evicts_lru_within_set(self):
        cache = make_cache(num_sets=1, associativity=2)
        assert cache.fill(1) is None
        assert cache.fill(2) is None
        assert cache.fill(3) == 1
        assert not cache.contains(1)
        assert cache.contains(2)
        assert cache.contains(3)

    def test_addresses_map_to_distinct_sets(self):
        cache = make_cache(num_sets=4, associativity=1)
        for addr in range(4):
            assert cache.fill(addr) is None
        assert cache.occupancy == 4

    def test_conflicting_addresses_share_a_set(self):
        cache = make_cache(num_sets=4, associativity=1)
        cache.fill(0)
        assert cache.fill(4) == 0  # 0 and 4 conflict in set 0

    def test_refill_resident_line_refreshes_not_duplicates(self):
        cache = make_cache(num_sets=1, associativity=2)
        cache.fill(1)
        cache.fill(2)
        cache.fill(1)  # refresh, not duplicate
        assert cache.occupancy == 2
        assert cache.fill(3) == 2  # 2 is now LRU

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(9)
        assert cache.invalidate(9)
        assert not cache.contains(9)
        assert not cache.invalidate(9)
        assert cache.stats.invalidations == 1

    def test_flush_keeps_stats(self):
        cache = make_cache()
        cache.fill(1)
        cache.probe(1)
        cache.flush()
        assert cache.occupancy == 0
        assert cache.stats.hits == 1

    def test_probe_updates_recency(self):
        cache = make_cache(num_sets=1, associativity=2)
        cache.fill(1)
        cache.fill(2)
        cache.probe(1)  # 1 becomes MRU
        assert cache.fill(3) == 2

    def test_contains_has_no_side_effects(self):
        cache = make_cache(num_sets=1, associativity=2)
        cache.fill(1)
        cache.fill(2)
        cache.contains(1)  # must NOT refresh
        assert cache.fill(3) == 1


class TestStats:
    def test_miss_rate(self):
        cache = make_cache()
        assert cache.stats.miss_rate == 0.0
        cache.probe(1)
        cache.fill(1)
        cache.probe(1)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_reset(self):
        cache = make_cache()
        cache.probe(1)
        cache.fill(1)
        cache.stats.reset()
        assert cache.stats.accesses == 0
        assert cache.stats.fills == 0


class TestGeometryValidation:
    def test_non_power_of_two_sets(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(num_sets=3, associativity=2)

    def test_zero_associativity(self):
        with pytest.raises(CacheConfigError):
            CacheGeometry(num_sets=4, associativity=0)

    def test_capacity(self):
        geometry = CacheGeometry(num_sets=8, associativity=4)
        assert geometry.capacity_lines == 32
        assert geometry.capacity_bytes == 32 * 64

    def test_scaled(self):
        geometry = CacheGeometry(num_sets=8, associativity=4)
        assert geometry.scaled(4).num_sets == 2
        assert geometry.scaled(4).associativity == 4
        with pytest.raises(CacheConfigError):
            geometry.scaled(16)


@st.composite
def access_streams(draw):
    return draw(st.lists(st.integers(0, 63), min_size=1, max_size=300))


class TestInvariants:
    @given(access_streams())
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, stream):
        cache = make_cache(num_sets=4, associativity=2)
        for addr in stream:
            if not cache.probe(addr):
                cache.fill(addr)
            assert cache.occupancy <= cache.capacity_lines

    @given(access_streams())
    @settings(max_examples=60, deadline=None)
    def test_hits_plus_misses_equals_probes(self, stream):
        cache = make_cache()
        for addr in stream:
            if not cache.probe(addr):
                cache.fill(addr)
        assert cache.stats.hits + cache.stats.misses == len(stream)

    @given(access_streams())
    @settings(max_examples=60, deadline=None)
    def test_fills_equal_misses_under_fill_on_miss(self, stream):
        cache = make_cache()
        for addr in stream:
            if not cache.probe(addr):
                cache.fill(addr)
        assert cache.stats.fills == cache.stats.misses

    @given(access_streams())
    @settings(max_examples=60, deadline=None)
    def test_resident_lines_match_set_contents(self, stream):
        cache = make_cache()
        for addr in stream:
            if not cache.probe(addr):
                cache.fill(addr)
        resident = cache.resident_lines()
        assert len(resident) == cache.occupancy
        for addr in resident:
            assert cache.contains(addr)

    @given(access_streams())
    @settings(max_examples=40, deadline=None)
    def test_probe_after_fill_always_hits(self, stream):
        cache = make_cache(num_sets=8, associativity=4)
        for addr in stream:
            if not cache.probe(addr):
                cache.fill(addr)
            # Immediately after an access the line must be resident.
            assert cache.contains(addr)
