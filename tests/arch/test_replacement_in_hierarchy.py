"""Every replacement policy drives the full hierarchy correctly."""

from __future__ import annotations

import dataclasses

import pytest

from repro.arch.chip import MulticoreChip
from repro.config import MachineConfig
from repro.sim import run_solo
from repro.workloads import synthetic

POLICIES = ("lru", "fifo", "random", "plru")


def machine_with(policy: str) -> MachineConfig:
    return dataclasses.replace(
        MachineConfig.tiny(), replacement=policy
    )


class TestPoliciesInHierarchy:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_runs_and_preserves_invariants(self, policy):
        chip = MulticoreChip(machine_with(policy), seed=3)
        for addr in range(500):
            chip.hierarchy.access(addr % 2, addr * 7 % 300)
        assert chip.hierarchy.check_inclusion() == []
        l3 = chip.hierarchy.l3
        assert l3.occupancy <= l3.capacity_lines

    @pytest.mark.parametrize("policy", POLICIES)
    def test_workload_completes_under_policy(self, policy):
        result = run_solo(
            synthetic.zipf_worker(lines=200, instructions=20_000.0),
            machine_with(policy),
        )
        assert (
            result.latency_sensitive().first_completion_period
            is not None
        )

    def test_policies_differ_behaviourally(self):
        """LRU must beat FIFO on a reuse-heavy stream (sanity that the
        policy knob actually changes victim selection)."""

        def misses(policy: str) -> int:
            result = run_solo(
                synthetic.zipf_worker(
                    lines=150, alpha=1.2, instructions=40_000.0
                ),
                machine_with(policy),
                seed=1,
            )
            return result.latency_sensitive().total_llc_misses()

        assert misses("lru") <= misses("fifo")
