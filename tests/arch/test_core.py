"""Core execution model: budgets, stalls, accounting."""

from __future__ import annotations

import pytest

from repro.arch.chip import MulticoreChip
from repro.config import MachineConfig
from repro.sim.process import AppClass, SimProcess
from repro.workloads import synthetic


def make_chip() -> MulticoreChip:
    return MulticoreChip(MachineConfig.tiny())


def make_process(spec, core_id=0) -> SimProcess:
    proc = SimProcess(spec, core_id, AppClass.LATENCY_SENSITIVE)
    proc.launch()
    return proc


class TestBudget:
    def test_consumes_at_most_budget(self):
        chip = make_chip()
        proc = make_process(synthetic.compute_bound(instructions=1e9))
        used = chip.core(0).run(proc, 1_000.0)
        assert used <= 1_000.0

    def test_zero_budget_is_noop(self):
        chip = make_chip()
        proc = make_process(synthetic.compute_bound())
        assert chip.core(0).run(proc, 0.0) == 0.0
        assert chip.core(0).instructions_retired == 0.0

    def test_finishes_early_when_budget_ample(self):
        chip = make_chip()
        proc = make_process(synthetic.compute_bound(instructions=100.0))
        used = chip.core(0).run(proc, 1_000_000.0)
        assert proc.finished
        assert used < 1_000_000.0

    def test_instructions_close_to_budget_for_compute_bound(self):
        chip = make_chip()
        proc = make_process(synthetic.compute_bound(instructions=1e9))
        chip.core(0).run(proc, 10_000.0)
        retired = chip.core(0).instructions_retired
        # base_cpi=0.5, tiny memory traffic: ~2 instructions per cycle.
        assert retired == pytest.approx(20_000.0, rel=0.25)


class TestStalls:
    def test_memory_bound_runs_slower_than_compute_bound(self):
        chip = make_chip()
        compute = make_process(
            synthetic.compute_bound(instructions=1e9), core_id=0
        )
        chaser = make_process(
            synthetic.pointer_chaser(lines=4096, instructions=1e9),
            core_id=1,
        )
        chip.core(0).run(compute, 20_000.0)
        chip.core(1).run(chaser, 20_000.0)
        assert (
            chip.core(0).instructions_retired
            > 3 * chip.core(1).instructions_retired
        )

    def test_warm_cache_speeds_execution(self):
        chip = make_chip()
        # Footprint fits the tiny L3 (16*8=128 lines): second window of
        # execution should hit far more than the first.
        proc = make_process(
            synthetic.zipf_worker(lines=64, instructions=1e9)
        )
        chip.core(0).run(proc, 5_000.0)
        cold = chip.core(0).instructions_retired
        chip.core(0).run(proc, 5_000.0)
        warm = chip.core(0).instructions_retired - cold
        assert warm > cold

    def test_counters_accumulate(self):
        chip = make_chip()
        proc = make_process(synthetic.streamer(lines=512, instructions=1e9))
        chip.core(0).run(proc, 5_000.0)
        core = chip.core(0)
        assert core.accesses_issued > 0
        assert core.cycles_executed > 0
        assert chip.hierarchy.counters_for(0).l3_misses > 0


class TestOverhead:
    def test_charge_overhead(self):
        chip = make_chip()
        chip.core(0).charge_overhead(50.0)
        assert chip.core(0).cycles_executed == 50.0

    def test_negative_overhead_rejected(self):
        chip = make_chip()
        with pytest.raises(ValueError):
            chip.core(0).charge_overhead(-1.0)


class TestChip:
    def test_core_and_pmu_lookup_validated(self):
        from repro.errors import ConfigError

        chip = make_chip()
        with pytest.raises(ConfigError):
            chip.core(99)
        with pytest.raises(ConfigError):
            chip.pmu(-1)

    def test_reset_restores_cold_state(self):
        chip = make_chip()
        proc = make_process(synthetic.streamer(lines=256, instructions=1e9))
        chip.core(0).run(proc, 5_000.0)
        chip.reset()
        assert chip.core(0).cycles_executed == 0.0
        assert chip.hierarchy.l3.occupancy == 0
        assert chip.memory.accesses == 0

    def test_default_machine_is_scaled_nehalem(self):
        chip = MulticoreChip()
        assert chip.machine.l3.capacity_lines == 8192
        assert chip.num_cores == 4


class TestCycleAccounting:
    """Charged cycles never exceed the granted budgets (no overshoot).

    The final access of a ``run()`` call can stall past the budget; the
    excess is carried as debt into the next call instead of being
    charged immediately, so cumulative accounting stays exact.
    """

    def test_cycles_never_exceed_sum_of_budgets(self):
        chip = make_chip()
        proc = make_process(
            synthetic.streamer(lines=4096, instructions=1e9)
        )
        core = chip.core(0)
        granted = 0.0
        for _ in range(200):
            used = core.run(proc, 137.0)
            assert used <= 137.0 + 1e-9
            granted += 137.0
        assert core.cycles_executed <= granted + 1e-9

    def test_debt_drains_small_budgets(self):
        # A memory stall dwarfs a 5-cycle budget: the budget must be
        # consumed by the outstanding debt, never overcharged.
        chip = make_chip()
        proc = make_process(
            synthetic.pointer_chaser(lines=8192, instructions=1e9)
        )
        core = chip.core(0)
        for _ in range(50):
            assert core.run(proc, 5.0) <= 5.0 + 1e-9
        assert core.cycles_executed <= 250.0 + 1e-9

    def test_accounting_matches_between_fast_and_generic(self):
        import os

        results = {}
        for flag in ("1", "0"):
            os.environ["REPRO_FAST_LANE"] = flag
            try:
                chip = make_chip()
                proc = make_process(
                    synthetic.streamer(lines=2048, instructions=50_000.0)
                )
                core = chip.core(0)
                while not proc.finished:
                    core.run(proc, 313.0)
                results[flag] = (
                    core.cycles_executed,
                    core.accesses_issued,
                    core.instructions_retired,
                    chip.hierarchy.counters[0].as_dict(),
                )
            finally:
                os.environ.pop("REPRO_FAST_LANE", None)
        assert results["1"] == results["0"]
