"""Bulk-access kernel vs. the scalar reference, differentially.

The bulk kernel (`CacheHierarchy.access_many` over flat-array LRU
storage) is a pure optimisation: for any address stream, any core
interleaving, and any configuration it must produce exactly the scalar
walk's observables — serving levels, per-core counters, cache stats,
final cache contents, L3 ownership/occupancy, and back-invalidations.
These tests drive a kernel-tier hierarchy and a scalar reference with
identical inputs and compare everything, plus check that the fallback
predicate routes unsupported configurations to the scalar path.
"""

from __future__ import annotations

import dataclasses
import os
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import (
    SetAssociativeCache,
    bulk_kernel_enabled,
    vector_kernel_enabled,
)
from repro.arch.hierarchy import CacheHierarchy
from repro.arch.replacement import make_policy
from repro.config import CacheGeometry, MachineConfig


def tiny_machine(**overrides) -> MachineConfig:
    """A small machine whose caches thrash under ~64-line streams."""
    return dataclasses.replace(MachineConfig.tiny(), **overrides)


@contextmanager
def tier_env(fast: str = "1", bulk: str = "1", vector: str = "0",
             owner: str = "1", fills: str = "1"):
    """Pin the execution-tier env flags for the enclosed block.

    A context manager (not a fixture) so hypothesis-driven tests can
    re-enter it per generated input.  ``vector`` defaults off so the
    existing kernel-tier differentials stay pinned one tier down; the
    tier-4 tests pass ``vector="1"`` explicitly.  ``owner``/``fills``
    pin the tier-5 ownership store and batched private fill (both
    default-on in production); the block also arms
    ``REPRO_DEBUG_INVARIANTS`` so every batch self-checks the
    ownership store on top of the differential comparison.
    """
    keys = ("REPRO_FAST_LANE", "REPRO_BULK_KERNEL",
            "REPRO_VECTOR_KERNEL", "REPRO_OWNER_ARRAYS",
            "REPRO_VECTOR_FILLS", "REPRO_DEBUG_INVARIANTS")
    saved = {k: os.environ.get(k) for k in keys}
    os.environ["REPRO_FAST_LANE"] = fast
    os.environ["REPRO_BULK_KERNEL"] = bulk
    os.environ["REPRO_VECTOR_KERNEL"] = vector
    os.environ["REPRO_OWNER_ARRAYS"] = owner
    os.environ["REPRO_VECTOR_FILLS"] = fills
    os.environ["REPRO_DEBUG_INVARIANTS"] = "1"
    try:
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def hierarchy_pair(machine: MachineConfig):
    """Two identically seeded hierarchies (kernel target + reference)."""
    return CacheHierarchy(machine, seed=11), CacheHierarchy(machine, seed=11)


def snapshot(h: CacheHierarchy) -> dict:
    caches = list(h.l1) + list(h.l2) + [h.l3]
    return {
        "contents": [
            [cache.set_contents(si) for si in range(cache._num_sets)]
            for cache in caches
        ],
        "stats": [
            (c.stats.hits, c.stats.misses, c.stats.fills,
             c.stats.evictions, c.stats.invalidations)
            for c in caches
        ],
        "counters": [c.as_dict() for c in h.counters],
        "occupancy": [
            h.l3_occupancy(core)
            for core in range(h.machine.num_cores)
        ],
        "owners": {
            addr: sorted(owners)
            for addr, owners in h.l3_owner_sets().items()
        },
    }


def drive_and_compare(machine, batches):
    """Feed (core, addrs) batches to both paths; assert equality.

    The kernel hierarchy consumes whole batches through
    ``access_many``; the reference replays the same stream through
    scalar ``access`` calls.  Serving levels must match per address,
    and every piece of hierarchy state must match at the end.
    """
    kern, ref = hierarchy_pair(machine)
    for core, addrs in batches:
        got = kern.access_many(core, addrs)
        want = [ref.access(core, a) for a in addrs]
        assert got == want
    assert snapshot(kern) == snapshot(ref)


#: Interleaved 2-core batches over a 64-line footprint, with runs of
#: consecutive repeats (the kernel collapses those) made likely.
BATCHES = st.lists(
    st.tuples(
        st.integers(0, 1),
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(1, 3)),
            min_size=1,
            max_size=40,
        ).map(lambda runs: [a for a, reps in runs for _ in range(reps)]),
    ),
    min_size=1,
    max_size=20,
)


class TestKernelDifferential:
    """access_many == scalar access loop, bit for bit."""

    @settings(max_examples=60, deadline=None)
    @given(batches=BATCHES)
    def test_randomized_two_core_streams(self, batches):
        with tier_env():
            drive_and_compare(tiny_machine(), batches)

    @settings(max_examples=40, deadline=None)
    @given(batches=BATCHES)
    def test_non_inclusive_l3(self, batches):
        with tier_env():
            drive_and_compare(tiny_machine(l3_inclusive=False), batches)

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random", "plru"])
    def test_every_policy_matches(self, policy):
        # Non-LRU policies take the scalar fallback inside access_many;
        # either way the observable behaviour must be identical.
        with tier_env():
            machine = tiny_machine(replacement=policy)
            stream = [(a * 7 + c) % 64 for a in range(200) for c in range(2)]
            drive_and_compare(
                machine,
                [(0, stream[:200]), (1, stream[200:]), (0, stream[::3])],
            )

    def test_co_located_thrash_with_back_invalidations(self):
        # Two cores fighting over an L3 smaller than their combined
        # footprint: evictions must steal lines and back-invalidate
        # the private caches of both the evicting and the foreign core.
        machine = tiny_machine()
        # Core 0 keeps a small set hot in its private caches; core 1
        # streams a footprint larger than the L3, evicting core 0's
        # (L3-cold but privately-resident) lines from behind it.
        # All addresses are multiples of 16, so they collide in L3 set
        # 0 (16 sets): core 1's 16-line sweep evicts core 0's hot
        # lines, which are still resident in core 0's L2.
        hot = [a * 16 for a in range(8)]
        sweep = [(8 + a) * 16 for a in range(16)]
        batches = []
        for _ in range(6):
            batches.append((0, hot * 3))
            batches.append((1, sweep))
        with tier_env():
            kern, ref = hierarchy_pair(machine)
            for core, addrs in batches:
                assert kern.access_many(core, addrs) == [
                    ref.access(core, a) for a in addrs
                ]
        assert snapshot(kern) == snapshot(ref)
        # The scenario must actually exercise the interesting paths.
        assert any(c.back_invalidations > 0 for c in ref.counters)
        assert any(c.lines_stolen > 0 for c in ref.counters)


def drive_vector(machine, batches):
    """Feed batches through the tier-4 ladder; scalar replay must match.

    Each batch first tries the vector kernel (classify, then commit of
    the whole batch); if either declines, it re-routes through the
    kernel-tier ``access_many`` — exactly the core's fallback ladder.
    Serving levels must match the scalar reference per address, and all
    hierarchy state at the end.  Returns ``(committed, fallback)`` batch
    counts so callers can assert the path they meant to test actually
    ran.
    """
    kern, ref = hierarchy_pair(machine)
    committed = fallback = 0
    for core, addrs in batches:
        plan = None
        if kern.vector_kernel_ok(core):
            arr = np.asarray(addrs, dtype=np.int64)
            plan = kern.vector_classify(core, arr)
        if plan is not None and kern.vector_commit(
            core, plan, len(addrs)
        ):
            got = plan.levels.tolist()
            committed += 1
        else:
            got = kern.access_many(core, addrs)
            fallback += 1
        want = [ref.access(core, a) for a in addrs]
        assert got == want
    assert snapshot(kern) == snapshot(ref)
    return committed, fallback


def _vector_stream(steps):
    """Turn (core, length, rewind, reps) steps into address batches.

    A cursor walks upward; ``rewind`` re-visits recently streamed lines
    (exercising the resident-line fallback and the mixed L3 hit/miss
    strata) and ``reps`` expands each address into a consecutive repeat
    run (exercising run collapsing and the pure-MRU-repeat edge).
    """
    cur = 0
    batches = []
    for core, length, rewind, reps in steps:
        start = max(0, cur - rewind)
        batches.append(
            (core,
             [a for a in range(start, start + length)
              for _ in range(reps)])
        )
        cur = start + length
    return batches


#: Mostly-ascending streams with occasional rewinds and repeat runs:
#: the mix lands batches in every vector-kernel stratum (consecutive
#: fast path, mixed hit/miss, classify-declined, commit-declined).
VECTOR_BATCHES = st.lists(
    st.tuples(
        st.integers(0, 1),
        st.integers(1, 120),
        st.integers(0, 60),
        st.integers(1, 3),
    ),
    min_size=1,
    max_size=10,
).map(_vector_stream)


class TestVectorDifferential:
    """Tier 4 (classify/commit) == scalar access loop, bit for bit."""

    @settings(max_examples=60, deadline=None)
    @given(batches=VECTOR_BATCHES)
    def test_randomized_streams(self, batches):
        with tier_env(vector="1"):
            drive_vector(tiny_machine(), batches)

    @settings(max_examples=40, deadline=None)
    @given(batches=VECTOR_BATCHES)
    def test_non_inclusive_l3(self, batches):
        with tier_env(vector="1"):
            drive_vector(tiny_machine(l3_inclusive=False), batches)

    @settings(max_examples=40, deadline=None)
    @given(batches=BATCHES)
    def test_small_footprint_streams_fall_back_correctly(self, batches):
        # The revisit-heavy kernel-tier corpus: almost every batch is
        # classify-declined, so this pins the ladder's scalar re-route
        # (and the scalar verbs over vector-backed L3 storage).
        with tier_env(vector="1"):
            drive_vector(tiny_machine(), batches)

    def test_streaming_batches_commit(self):
        # The bread-and-butter case — large consecutive batches — must
        # actually take the vector path, not silently fall back.  Each
        # batch spans 6 lines per tiny-L3 set, within its 8 ways (the
        # consec plan refuses batches whose own lines would evict each
        # other mid-stream).
        batches = [(0, list(range(base, base + 96)))
                   for base in range(0, 576, 96)]
        with tier_env(vector="1"):
            committed, fallback = drive_vector(tiny_machine(), batches)
        assert committed == len(batches)
        assert fallback == 0

    def test_dense_fill_strided_batches_commit(self):
        # Pointer-chase-shaped batches: non-consecutive strides far
        # larger than the private caches take the backward dense-fill
        # verb (only the surviving tail of each set's insertion stream
        # is written).  Five strided batches of 90 lines dwarf the tiny
        # L1 (4 lines) and L2 (16 lines) while spreading under 8 lines
        # per tiny-L3 set, so every batch must commit — and the scalar
        # replay in drive_vector proves the shortcut left tags, MRU,
        # resident sets and eviction counts bit-identical.
        batches, base = [], 0
        for stride in (3, 5, 7, 9, 11):
            batches.append(
                (0, [base + stride * i for i in range(90)])
            )
            base += stride * 90 + 1
        with tier_env(vector="1"):
            committed, fallback = drive_vector(tiny_machine(), batches)
        assert committed == len(batches)
        assert fallback == 0

    def test_mixed_hit_miss_batch_commits(self):
        # Re-streaming lines that fell out of the private caches but
        # still sit in the L3 exercises the mixed hit/miss strata.
        with tier_env(vector="1"):
            kern, ref = hierarchy_pair(tiny_machine())
            warm = list(range(64))
            assert kern.access_many(0, warm) == [
                ref.access(0, a) for a in warm
            ]
            # 0..47 are L3 hits (48..63 still sit in L1/L2, so stop
            # short of them); 200..247 are cold misses.
            batch = list(range(48)) + list(range(200, 248))
            plan = kern.vector_classify(0, np.asarray(batch, np.int64))
            assert plan is not None
            assert plan.hit is not None and plan.hit.any()
            assert kern.vector_commit(0, plan, len(batch))
            assert plan.levels.tolist() == [
                ref.access(0, a) for a in batch
            ]
            assert snapshot(kern) == snapshot(ref)

    def test_partial_prefix_commit(self):
        # The core's budget cutoff executes a prefix and pushes the
        # suffix back untouched: only the prefix may mutate state.
        addrs = list(range(200))
        cut = 90
        with tier_env(vector="1"):
            kern, ref = hierarchy_pair(tiny_machine())
            plan = kern.vector_classify(0, np.asarray(addrs, np.int64))
            assert plan is not None
            assert kern.vector_commit(0, plan, cut)
            assert plan.levels[:cut].tolist() == [
                ref.access(0, a) for a in addrs[:cut]
            ]
            assert snapshot(kern) == snapshot(ref)
            # The pushed-back suffix then re-enters as its own batch.
            suffix = addrs[cut:]
            plan2 = kern.vector_classify(
                0, np.asarray(suffix, np.int64)
            )
            assert plan2 is not None
            assert kern.vector_commit(0, plan2, len(suffix))
            assert plan2.levels.tolist() == [
                ref.access(0, a) for a in suffix
            ]
            assert snapshot(kern) == snapshot(ref)

    def test_mru_repeat_only_batch(self):
        # A batch that is nothing but repeats of the previous batch's
        # last line: zero collapsed accesses, pure L1-hit bookkeeping.
        with tier_env(vector="1"):
            kern, ref = hierarchy_pair(tiny_machine())
            first = list(range(8))
            drive = [(0, first), (0, [7] * 20), (0, [7, 8, 9])]
            for core, addrs in drive:
                plan = kern.vector_classify(
                    core, np.asarray(addrs, np.int64)
                )
                assert plan is not None
                assert kern.vector_commit(core, plan, len(addrs))
                assert plan.levels.tolist() == [
                    ref.access(core, a) for a in addrs
                ]
            assert snapshot(kern) == snapshot(ref)

    def test_overloaded_set_declines_untouched(self):
        # More lines into one L3 set than it has ways: commit must
        # refuse with NO state mutated, and the scalar re-route must
        # then match the reference exactly.
        with tier_env(vector="1"):
            kern, ref = hierarchy_pair(tiny_machine())
            nsets = kern.l3._num_sets
            assoc = kern.l3._assoc
            addrs = [i * nsets for i in range(2 * assoc)]
            plan = kern.vector_classify(0, np.asarray(addrs, np.int64))
            assert plan is not None
            before = snapshot(kern)
            assert not kern.vector_commit(0, plan, len(addrs))
            assert snapshot(kern) == before
            assert kern.access_many(0, addrs) == [
                ref.access(0, a) for a in addrs
            ]
            assert snapshot(kern) == snapshot(ref)

    def test_within_batch_revisit_declines(self):
        # Non-consecutive duplicates would hit lines the batch itself
        # fills; classification must refuse outright.
        with tier_env(vector="1"):
            kern, _ = hierarchy_pair(tiny_machine())
            addrs = np.asarray([5, 6, 7, 5], dtype=np.int64)
            assert kern.vector_classify(0, addrs) is None


class TestFallbackPredicate:
    """Configs the kernel cannot model must take the scalar path."""

    def test_kernel_allowed_on_plain_lru(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_LANE", "1")
        monkeypatch.setenv("REPRO_BULK_KERNEL", "1")
        h = CacheHierarchy(tiny_machine(), seed=1)
        assert h.bulk_kernel_ok(0)

    @pytest.mark.parametrize("overrides", [
        {"replacement": "fifo"},
        {"replacement": "plru"},
        {"model_writebacks": True},
        {"prefetch_degree": 1},
    ])
    def test_config_denies_kernel(self, overrides, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_LANE", "1")
        monkeypatch.setenv("REPRO_BULK_KERNEL", "1")
        h = CacheHierarchy(tiny_machine(**overrides), seed=1)
        assert not h.bulk_kernel_ok(0)

    def test_quota_denies_kernel_per_core(self, monkeypatch):
        # Quotas arrive mid-run (CAER's response hook): the predicate
        # must flip off for the capped core only, and back on when the
        # cap lifts.
        monkeypatch.setenv("REPRO_FAST_LANE", "1")
        monkeypatch.setenv("REPRO_BULK_KERNEL", "1")
        h = CacheHierarchy(tiny_machine(), seed=1)
        h.set_l3_quota(0, 0.5)
        assert not h.bulk_kernel_ok(0)
        assert h.bulk_kernel_ok(1)
        h.set_l3_quota(0, None)
        assert h.bulk_kernel_ok(0)

    def test_env_gate_denies_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_LANE", "1")
        monkeypatch.setenv("REPRO_BULK_KERNEL", "0")
        assert not bulk_kernel_enabled()
        h = CacheHierarchy(tiny_machine(), seed=1)
        assert not h.bulk_kernel_ok(0)
        # BULK=0 also reverts the caches to list-based storage: the
        # middle tier is exactly the first-generation fast lane.
        assert not h.l1[0]._flat

    def test_vector_allowed_on_plain_lru(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_LANE", "1")
        monkeypatch.setenv("REPRO_BULK_KERNEL", "1")
        monkeypatch.setenv("REPRO_VECTOR_KERNEL", "1")
        h = CacheHierarchy(tiny_machine(), seed=1)
        assert h.vector_kernel_ok(0)
        # Only the shared L3 carries vector storage; the private
        # levels stay list-backed (scalar fills win at their size).
        assert h.l3._vector
        assert not h.l1[0]._vector

    def test_vector_env_gate_denies_only_tier_four(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_LANE", "1")
        monkeypatch.setenv("REPRO_BULK_KERNEL", "1")
        monkeypatch.setenv("REPRO_VECTOR_KERNEL", "0")
        assert not vector_kernel_enabled()
        h = CacheHierarchy(tiny_machine(), seed=1)
        assert not h.vector_kernel_ok(0)
        assert not h.l3._vector
        # One tier down keeps working: VECTOR=0 is exactly the PR5
        # kernel configuration.
        assert h.bulk_kernel_ok(0)

    def test_bulk_prerequisites_gate_vector(self, monkeypatch):
        # Tier 4 sits on top of tier 3: anything that denies the bulk
        # kernel (here a mid-run L3 quota) denies the vector kernel
        # for the same core, and recovers when the cap lifts.
        monkeypatch.setenv("REPRO_FAST_LANE", "1")
        monkeypatch.setenv("REPRO_BULK_KERNEL", "1")
        monkeypatch.setenv("REPRO_VECTOR_KERNEL", "1")
        h = CacheHierarchy(tiny_machine(), seed=1)
        h.set_l3_quota(0, 0.5)
        assert not h.vector_kernel_ok(0)
        assert h.vector_kernel_ok(1)
        h.set_l3_quota(0, None)
        assert h.vector_kernel_ok(0)

    def test_bulk_env_gate_denies_vector(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_LANE", "1")
        monkeypatch.setenv("REPRO_BULK_KERNEL", "0")
        monkeypatch.setenv("REPRO_VECTOR_KERNEL", "1")
        h = CacheHierarchy(tiny_machine(), seed=1)
        assert not h.vector_kernel_ok(0)

    @pytest.mark.parametrize("overrides", [
        {"model_writebacks": True},
        {"prefetch_degree": 2},
    ])
    def test_fallback_matches_scalar(self, overrides, monkeypatch):
        # The fallback literally is the scalar loop; results and side
        # effects (store accumulator, prefetch fills) must match.
        monkeypatch.setenv("REPRO_FAST_LANE", "1")
        monkeypatch.setenv("REPRO_BULK_KERNEL", "1")
        machine = tiny_machine(**overrides)
        kern, ref = hierarchy_pair(machine)
        kern.set_store_ratio(0, 0.3)
        ref.set_store_ratio(0, 0.3)
        stream = [(a * 5) % 48 for a in range(300)]
        assert kern.access_many(0, stream) == [
            ref.access(0, a) for a in stream
        ]
        assert snapshot(kern) == snapshot(ref)
        assert kern._store_accumulator == ref._store_accumulator


class TestFlatStorageInvariants:
    """The flat circular representation must stay self-consistent."""

    GEOMETRY = CacheGeometry(num_sets=4, associativity=4)

    def make_flat(self) -> SetAssociativeCache:
        with tier_env():
            cache = SetAssociativeCache(
                "flat", self.GEOMETRY, make_policy("lru", 4),
                specialize=True,
            )
        assert cache._flat
        return cache

    def check_invariants(self, cache: SetAssociativeCache) -> None:
        assoc = self.GEOMETRY.associativity
        resident = set()
        for si in range(self.GEOMETRY.num_sets):
            contents = cache.set_contents(si)
            assert len(contents) == len(set(contents))
            assert len(contents) == cache._fill_counts[si]
            if cache._fill_counts[si] < assoc:
                # Partially filled sets are never rotated.
                assert cache._heads[si] == 0
            if contents:
                # The MRU shadow is the logical tail.
                assert cache._mru[si] == contents[-1]
            resident.update(contents)
        assert resident == cache._resident

    @settings(max_examples=60, deadline=None)
    @given(ops=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 31)),
        min_size=1, max_size=200,
    ))
    def test_random_ops_preserve_invariants(self, ops):
        cache = self.make_flat()
        for op, addr in ops:
            if op == 0:
                cache.probe(addr)
            elif op == 1:
                cache.fill(addr)
            else:
                cache.invalidate(addr)
        self.check_invariants(cache)

    def test_flush_resets_flat_state(self):
        cache = self.make_flat()
        for addr in range(64):
            cache.fill(addr)
        cache.flush()
        self.check_invariants(cache)
        assert not cache._resident
        assert all(f == 0 for f in cache._fill_counts)

    def test_set_contents_roundtrip_when_rotated(self):
        cache = self.make_flat()
        # Fill past capacity so the set's circular window rotates.
        for addr in range(0, 6 * 4, 4):
            cache.fill(addr)
        before = cache.set_contents(0)
        assert cache.set_contents(0) == before
        self.check_invariants(cache)


class TestFlushStoreAccumulator:
    """Regression: flush() must reset the fractional store credit."""

    def test_two_flush_separated_runs_identical_writebacks(self):
        machine = tiny_machine(model_writebacks=True)
        h = CacheHierarchy(machine, seed=3)
        # A store ratio that leaves a fractional credit dangling after
        # an odd number of accesses.
        stream = [(a * 5) % 48 for a in range(301)]

        def one_run() -> int:
            before = h.counters[0].writebacks
            h.set_store_ratio(0, 0.35)
            for addr in stream:
                h.access(0, addr)
            return h.counters[0].writebacks - before

        first = one_run()
        h.flush()
        assert h._store_accumulator == [0.0] * machine.num_cores
        second = one_run()
        assert first == second


class TestEndToEndTiers:
    """Full engine runs must be identical across all four tiers."""

    @staticmethod
    def _run(metrics=None):
        from repro.caer.runtime import caer_factory
        from repro.experiments.campaign import resolve_caer_config
        from repro.sim import run_colocated
        from repro.workloads import benchmark

        machine = MachineConfig.tiny()
        l3 = machine.l3.capacity_lines
        ls = benchmark("429.mcf", l3, length=0.02)
        batch = benchmark("470.lbm", l3, length=0.02)
        return run_colocated(
            ls, batch, machine,
            caer_factory=caer_factory(resolve_caer_config("shutter")),
            seed=2, metrics=metrics,
        )

    def test_run_result_identical_across_tiers(self):
        results = {}
        for name, env in [
            ("generic", ("0", "0", "0")),
            ("fastlane", ("1", "0", "0")),
            ("kernel", ("1", "1", "0")),
            ("vector", ("1", "1", "1")),
            # The PR-6 vector tier reconstruction: dict ownership and
            # scalar private fills under the same classify/commit.
            ("vector_legacy", ("1", "1", "1", "0", "0")),
        ]:
            with tier_env(*env):
                results[name] = self._run()
        assert results["fastlane"] == results["generic"]
        assert results["kernel"] == results["generic"]
        assert results["vector"] == results["generic"]
        assert results["vector_legacy"] == results["generic"]

    def test_traced_run_identical_on_vector_tier(self, tmp_path):
        # Attaching metrics (and so the obs plumbing) must not perturb
        # the simulation: the vector tier's RunResult has to be
        # bit-identical with and without telemetry.
        from repro.obs import MetricsRegistry

        with tier_env("1", "1", "1"):
            bare = self._run()
            traced = self._run(metrics=MetricsRegistry())
        assert traced == bare

    def test_tier_recorded_in_metrics_gauges(self):
        from repro.obs import MetricsRegistry

        for fast, bulk, vector, wants in [
            ("0", "0", "0", (0.0, 0.0, 0.0)),
            ("1", "0", "0", (1.0, 0.0, 0.0)),
            ("1", "1", "0", (1.0, 1.0, 0.0)),
            ("1", "1", "1", (1.0, 1.0, 1.0)),
        ]:
            with tier_env(fast, bulk, vector):
                metrics = MetricsRegistry()
                self._run(metrics=metrics)
            snap = metrics.snapshot()
            assert snap["sim.fast_lane"]["value"] == wants[0]
            assert snap["sim.bulk_kernel"]["value"] == wants[1]
            assert snap["sim.vector_kernel"]["value"] == wants[2]
