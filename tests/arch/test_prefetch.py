"""The optional next-line prefetcher."""

from __future__ import annotations

import dataclasses

import pytest

from repro.arch.chip import MulticoreChip
from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.sim import run_solo
from repro.sim.process import SimProcess
from repro.workloads import synthetic


def machine_with(degree: int) -> MachineConfig:
    return dataclasses.replace(
        MachineConfig.tiny(), prefetch_degree=degree
    )


class TestPrefetcher:
    def test_disabled_by_default(self):
        assert MachineConfig.scaled_nehalem().prefetch_degree == 0
        chip = MulticoreChip(MachineConfig.tiny())
        chip.hierarchy.access(0, 100)
        assert chip.hierarchy.counters_for(0).prefetch_fills == 0
        assert not chip.hierarchy.l3.contains(101)

    def test_next_lines_prefetched_on_demand_miss(self):
        chip = MulticoreChip(machine_with(2))
        chip.hierarchy.access(0, 100)
        assert chip.hierarchy.l3.contains(101)
        assert chip.hierarchy.l3.contains(102)
        assert chip.hierarchy.counters_for(0).prefetch_fills == 2

    def test_prefetch_hides_streaming_misses(self):
        stream = synthetic.streamer(lines=2_000, instructions=40_000.0)
        baseline = run_solo(stream, machine_with(0))
        prefetched = run_solo(stream, machine_with(2))
        assert (
            prefetched.latency_sensitive().total_llc_misses()
            < 0.6 * baseline.latency_sensitive().total_llc_misses()
        )
        assert (
            prefetched.latency_sensitive().completion_periods
            <= baseline.latency_sensitive().completion_periods
        )

    def test_prefetch_traffic_loads_the_channel(self):
        chip = MulticoreChip(machine_with(2))
        proc = SimProcess(
            synthetic.streamer(lines=2_000, instructions=20_000.0), 0
        )
        proc.launch()
        chip.core(0).run(proc, 50_000.0)
        # The memory channel saw demand misses AND prefetch transfers.
        demand = chip.hierarchy.counters_for(0).l3_misses
        assert chip.memory.accesses > demand

    def test_inclusion_holds_with_prefetch(self):
        chip = MulticoreChip(machine_with(4))
        for addr in range(0, 400, 3):
            chip.hierarchy.access(addr % 2, addr)
        assert chip.hierarchy.check_inclusion() == []

    def test_negative_degree_rejected(self):
        with pytest.raises(ConfigError):
            machine_with(-1)
