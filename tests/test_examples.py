"""The example scripts: compile-time integrity plus one live run."""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert {
            "quickstart.py",
            "datacenter_colocation.py",
            "heuristic_tuning.py",
            "contention_analysis.py",
            "online_monitoring.py",
        } <= names

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=lambda p: p.name
    )
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=lambda p: p.name
    )
    def test_example_has_main_guard(self, path):
        text = path.read_text()
        assert 'if __name__ == "__main__":' in text
        assert text.startswith("#!/usr/bin/env python3")
        assert '"""' in text  # module docstring

    def test_quickstart_runs_end_to_end(self):
        """The quickstart at a tiny run length, as a real subprocess."""
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py"),
             "0.02"],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert result.returncode == 0, result.stderr
        assert "CAER rule-based" in result.stdout
        assert "slowdown" in result.stdout
