"""Node-level fault plans: determinism, scaling, schedule semantics."""

from __future__ import annotations

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    NODE_SCALE_COEFFICIENTS,
    NodeFaultPlan,
    NodeFaultSchedule,
)


class TestNodeFaultPlan:
    def test_default_plan_is_null(self):
        assert NodeFaultPlan().is_null()

    def test_scaled_zero_is_null(self):
        assert NodeFaultPlan.scaled(0.0).is_null()

    def test_scaled_rates_follow_coefficients(self):
        plan = NodeFaultPlan.scaled(0.5, seed=7)
        for name, coefficient in NODE_SCALE_COEFFICIENTS.items():
            assert getattr(plan, name) == pytest.approx(
                coefficient * 0.5
            )
        assert plan.seed == 7

    @pytest.mark.parametrize("intensity", [-0.1, 1.5])
    def test_scaled_rejects_out_of_range(self, intensity):
        with pytest.raises(FaultPlanError, match="intensity"):
            NodeFaultPlan.scaled(intensity)

    @pytest.mark.parametrize(
        "field", ["crash_rate", "blackout_rate", "straggler_rate"]
    )
    def test_rates_validated(self, field):
        with pytest.raises(FaultPlanError, match=field):
            NodeFaultPlan(**{field: 1.5})

    def test_straggler_factor_validated(self):
        with pytest.raises(FaultPlanError, match="straggler_factor"):
            NodeFaultPlan(straggler_factor=0.0)

    def test_roundtrip(self):
        plan = NodeFaultPlan.scaled(0.7, seed=3)
        assert NodeFaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultPlanError, match="payload"):
            NodeFaultPlan.from_dict({"crash_rate": 0.1, "nope": 1})

    def test_describe_null_and_scaled(self):
        assert "null" in NodeFaultPlan().describe()
        text = NodeFaultPlan.scaled(1.0, seed=2).describe()
        assert "crash=" in text and "seed=2" in text


class TestSchedule:
    def test_null_plan_schedules_nothing(self):
        schedule = NodeFaultPlan().schedule(0, 16)
        assert schedule.crash_at is None
        assert schedule.blackout == (False,) * 16
        assert schedule.straggler == (False,) * 16
        assert not any(schedule.dark(t) for t in range(16))

    def test_deterministic_per_plan_and_node(self):
        plan = NodeFaultPlan.scaled(1.0, seed=5)
        assert plan.schedule(2, 64) == plan.schedule(2, 64)

    def test_node_streams_are_independent(self):
        plan = NodeFaultPlan.scaled(1.0, seed=5)
        timelines = {plan.schedule(n, 64) for n in range(8)}
        assert len(timelines) > 1

    def test_seed_changes_the_timeline(self):
        a = NodeFaultPlan.scaled(1.0, seed=0).schedule(0, 64)
        b = NodeFaultPlan.scaled(1.0, seed=1).schedule(0, 64)
        assert a != b

    def test_crash_is_permanent_and_dark(self):
        schedule = NodeFaultSchedule(
            crash_at=3, blackout=(False,) * 8, straggler=(False,) * 8
        )
        assert not schedule.crashed(2)
        assert schedule.crashed(3)
        assert schedule.crashed(7)
        assert schedule.dark(5)
        assert not schedule.dark(1)

    def test_blackout_and_straggler_flags(self):
        schedule = NodeFaultSchedule(
            crash_at=None,
            blackout=(False, True, False),
            straggler=(False, False, True),
        )
        assert schedule.dark(1) and not schedule.dark(0)
        assert schedule.slowed(2) and not schedule.slowed(1)
        # Beyond the drawn horizon nothing is scheduled.
        assert not schedule.dark(10)
        assert not schedule.slowed(10)

    def test_negative_ticks_rejected(self):
        with pytest.raises(FaultPlanError, match="ticks"):
            NodeFaultPlan.scaled(0.5).schedule(0, -1)
