"""FleetSpec: digests, job mixes, validation, profile calibration."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.faults import NodeFaultPlan
from repro.fleet import FleetSpec, NodeRunProfile, build_profiles
from repro.fleet.spec import DEFAULT_TRIGGER_RATE, FleetJob


class TestFleetJob:
    def test_validates_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            FleetJob(id="x", kind="gpu", bench="b", arrival=0, service=1.0)

    def test_validates_service(self):
        with pytest.raises(ConfigError, match="service"):
            FleetJob(id="x", kind="ls", bench="b", arrival=0, service=0.0)


class TestFleetSpec:
    def test_digest_stable_and_sensitive(self):
        spec = FleetSpec()
        assert spec.digest == FleetSpec().digest
        assert spec.digest != dataclasses.replace(spec, nodes=5).digest
        faulty = dataclasses.replace(
            spec, node_faults=NodeFaultPlan.scaled(0.2)
        )
        assert faulty.digest != spec.digest

    def test_roundtrip_with_fault_plan(self):
        spec = dataclasses.replace(
            FleetSpec(),
            node_faults=NodeFaultPlan.scaled(0.4, seed=9),
            victims=("429.mcf", "470.lbm"),
        )
        assert FleetSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_future_version(self):
        payload = FleetSpec().to_dict()
        payload["version"] = 99
        with pytest.raises(ConfigError, match="version"):
            FleetSpec.from_dict(payload)

    def test_jobs_deterministic_and_shaped(self):
        spec = FleetSpec(ls_jobs=3, batch_jobs=5, ticks=40)
        jobs = spec.jobs()
        assert jobs == spec.jobs()
        assert len(jobs) == 8
        kinds = {job.kind for job in jobs}
        assert kinds == {"ls", "batch"}
        # Arrivals land in the first half of the horizon so every job
        # has SLO headroom.
        assert all(job.arrival < spec.ticks // 2 for job in jobs)
        ls = [job for job in jobs if job.kind == "ls"]
        assert all(job.bench == spec.victims[0] for job in ls)

    def test_dead_after_must_exceed_suspect_after(self):
        with pytest.raises(ConfigError, match="dead_after"):
            FleetSpec(suspect_after=3, dead_after=3)

    def test_validation_errors(self):
        with pytest.raises(ConfigError, match="nodes"):
            FleetSpec(nodes=0)
        with pytest.raises(ConfigError, match="slo_stretch"):
            FleetSpec(slo_stretch=0.5)
        with pytest.raises(ConfigError, match="victims"):
            FleetSpec(victims=())

    def test_describe_mentions_shape_and_faults(self):
        clean = FleetSpec().describe()
        assert "clean" in clean and "4 nodes" in clean
        chaotic = dataclasses.replace(
            FleetSpec(), node_faults=NodeFaultPlan.scaled(0.5)
        ).describe()
        assert "nodefaults" in chaotic


class TestNodeRunProfile:
    def test_validates_ranges(self):
        with pytest.raises(ConfigError, match="ls_progress"):
            NodeRunProfile(
                bench="b", ls_progress=0.0, batch_progress=0.5,
                trigger_rate=0.5,
            )
        with pytest.raises(ConfigError, match="trigger_rate"):
            NodeRunProfile(
                bench="b", ls_progress=0.8, batch_progress=0.5,
                trigger_rate=1.5,
            )


@dataclasses.dataclass
class _StubSummary:
    completion_periods: int
    utilization_gained: float = 0.0
    telemetry: dict | None = None


class _StubSource:
    """Campaign stand-in serving canned solo/colocated summaries."""

    def __init__(self, solo: _StubSummary, colo: _StubSummary):
        self._solo = solo
        self._colo = colo

    def solo(self, bench):
        return self._solo

    def colocated(self, bench, config):
        return self._colo


class TestBuildProfiles:
    def test_calibrates_from_run_summaries(self):
        source = _StubSource(
            _StubSummary(completion_periods=100),
            _StubSummary(
                completion_periods=125,
                utilization_gained=0.6,
                telemetry={
                    "derived": {"detector_trigger_rate": 0.3}
                },
            ),
        )
        profiles = build_profiles(source, FleetSpec())
        profile = profiles["429.mcf"]
        assert profile.ls_progress == pytest.approx(0.8)
        assert profile.batch_progress == pytest.approx(0.6)
        assert profile.trigger_rate == pytest.approx(0.3)

    def test_trigger_rate_falls_back_without_telemetry(self):
        source = _StubSource(
            _StubSummary(completion_periods=100),
            _StubSummary(completion_periods=110),
        )
        profiles = build_profiles(source, FleetSpec())
        assert profiles["429.mcf"].trigger_rate == DEFAULT_TRIGGER_RATE

    def test_rejects_never_completed_runs(self):
        source = _StubSource(
            _StubSummary(completion_periods=0),
            _StubSummary(completion_periods=100),
        )
        with pytest.raises(ConfigError, match="calibrate"):
            build_profiles(source, FleetSpec())
