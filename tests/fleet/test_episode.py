"""Fleet episodes: determinism, failover, zero loss, resume, beacons.

Node profiles are stubbed (no campaign runs) so every test drives the
placement/failover machinery directly; calibration from real campaign
summaries is covered in ``test_spec.py``.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.faults import NodeFaultPlan, NodeFaultSchedule
from repro.fleet import (
    FleetEpisode,
    FleetJournal,
    FleetSpec,
    NodeRunProfile,
    render_fleet_report,
)
from repro.obs import scan_beacons

PROFILES = {
    "429.mcf": NodeRunProfile(
        bench="429.mcf",
        ls_progress=0.8,
        batch_progress=0.6,
        trigger_rate=0.4,
    )
}

SPEC = FleetSpec(
    nodes=3,
    ticks=24,
    ls_jobs=2,
    batch_jobs=4,
    ls_service=8.0,
    batch_service=6.0,
)


def _quiet(ticks: int) -> NodeFaultSchedule:
    return NodeFaultSchedule(
        crash_at=None,
        blackout=(False,) * ticks,
        straggler=(False,) * ticks,
    )


def _blackout(ticks: int, dark: range) -> NodeFaultSchedule:
    return NodeFaultSchedule(
        crash_at=None,
        blackout=tuple(t in dark for t in range(ticks)),
        straggler=(False,) * ticks,
    )


class TestCleanEpisode:
    def test_completes_everything_without_loss(self):
        result = FleetEpisode(SPEC, PROFILES).run()
        assert result.jobs_lost == 0
        assert result.ls_completed == SPEC.ls_jobs
        assert result.batch_completed == SPEC.batch_jobs
        assert result.slo_attainment == 1.0
        assert result.nodes_dead == 0

    def test_bit_identical_repeats(self):
        first = FleetEpisode(SPEC, PROFILES).run()
        second = FleetEpisode(SPEC, PROFILES).run()
        assert first.to_dict() == second.to_dict()
        # Clockless by contract: the result survives JSON untouched.
        assert json.loads(json.dumps(first.to_dict())) == first.to_dict()

    def test_rejects_missing_profiles(self):
        with pytest.raises(ValueError, match="profiles missing"):
            FleetEpisode(SPEC, {})


class TestChaoticEpisode:
    def test_bit_identical_under_faults(self):
        spec = dataclasses.replace(
            SPEC, node_faults=NodeFaultPlan.scaled(0.6, seed=11)
        )
        first = FleetEpisode(spec, PROFILES).run()
        second = FleetEpisode(spec, PROFILES).run()
        assert first.to_dict() == second.to_dict()

    def test_crash_reschedules_stranded_jobs_without_loss(self):
        episode = FleetEpisode(SPEC, PROFILES)
        episode.nodes[0].schedule = NodeFaultSchedule(
            crash_at=4,
            blackout=(False,) * SPEC.ticks,
            straggler=(False,) * SPEC.ticks,
        )
        result = episode.run()
        assert result.nodes_dead == 1
        assert result.jobs_rescheduled >= 1
        assert result.jobs_lost == 0
        # The LS job stranded on the crashed node still finishes on a
        # surviving node.
        assert result.ls_completed == SPEC.ls_jobs

    def test_blackout_completions_credited_on_return(self):
        # Node 2 hosts batch-1 solo from tick 3, goes dark before it
        # finishes, and completes it during the blackout.  The
        # controller declares it dead (rescheduling a redundant copy),
        # then reinstates it when telemetry returns and credits the
        # original completion — nothing runs twice to the books.
        episode = FleetEpisode(SPEC, PROFILES)
        episode.nodes[2].schedule = _blackout(
            SPEC.ticks, range(5, 16)
        )
        result = episode.run()
        assert result.jobs_lost == 0
        assert result.batch_completed == SPEC.batch_jobs
        # Back from the dead by the horizon: reinstated, not dead.
        assert result.nodes_dead == 0

    def test_dark_node_treated_as_contended_and_evicted(self):
        # Silence past ``suspect_after`` grows the contention streak,
        # so a co-located batch job is migrated off a dark node even
        # though the evict RPC itself cannot reach it.
        spec = dataclasses.replace(
            SPEC, suspect_after=1, sustain_ticks=2, dead_after=8
        )
        episode = FleetEpisode(spec, PROFILES)
        # Node 1 hosts batch-0 from tick 0 and ls-1 from tick 6; dark
        # ticks 8..11 keeps it suspect without crossing dead_after.
        episode.nodes[1].schedule = _blackout(spec.ticks, range(8, 12))
        result = episode.run()
        assert result.migrations >= 1
        assert result.jobs_lost == 0

    def test_flapping_node_quarantined_and_journalled(self, tmp_path):
        flappy = {
            "429.mcf": NodeRunProfile(
                bench="429.mcf",
                ls_progress=0.8,
                batch_progress=0.6,
                trigger_rate=1.0,
            )
        }
        spec = FleetSpec(
            nodes=2,
            ticks=16,
            ls_jobs=1,
            batch_jobs=2,
            ls_service=8.0,
            batch_service=6.0,
            sustain_ticks=1,
            flap_threshold=1,
        )
        journal = FleetJournal(tmp_path / "fleet.jsonl", spec.digest)
        result = FleetEpisode(spec, flappy, journal=journal).run()
        assert result.nodes_quarantined >= 1
        assert any(
            key.startswith("node-") for key in journal.quarantined
        )
        # Quarantine never loses work: unplaceable jobs stay tracked.
        assert result.jobs_lost == 0


class TestJournalResume:
    def test_mid_episode_resume_skips_completed_jobs(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        first = FleetEpisode(
            SPEC, PROFILES, journal=FleetJournal(path, SPEC.digest)
        )
        first.run(until_tick=10)
        completed = {
            job_id
            for job_id, state in first.controller.jobs.items()
            if state.status == "done"
        }
        assert completed, "the partial episode should finish something"

        resumed = FleetEpisode(
            SPEC, PROFILES, journal=FleetJournal(path, SPEC.digest)
        )
        assert resumed.jobs_resumed == len(completed)
        for job_id in completed:
            assert resumed.controller.jobs[job_id].status == "done"
        result = resumed.run()
        assert result.jobs_resumed == len(completed)
        assert result.jobs_lost == 0
        assert result.ls_completed == SPEC.ls_jobs
        assert result.batch_completed == SPEC.batch_jobs

    def test_resumed_jobs_never_reassigned(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        FleetEpisode(
            SPEC, PROFILES, journal=FleetJournal(path, SPEC.digest)
        ).run(until_tick=10)
        resumed = FleetEpisode(
            SPEC, PROFILES, journal=FleetJournal(path, SPEC.digest)
        )
        done = {
            job_id
            for job_id, state in resumed.controller.jobs.items()
            if state.status == "done"
        }
        resumed.run()
        for node in resumed.nodes.values():
            assert not done & set(node.completed)

    def test_journal_namespaced_by_fleet_digest(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        FleetEpisode(
            SPEC, PROFILES, journal=FleetJournal(path, SPEC.digest)
        ).run()
        other_spec = dataclasses.replace(SPEC, seed=99)
        other = FleetEpisode(
            other_spec,
            PROFILES,
            journal=FleetJournal(path, other_spec.digest),
        )
        assert other.jobs_resumed == 0


class TestBeaconsAndReport:
    def test_episode_emits_node_and_fleet_beacons(self, tmp_path):
        beacons_dir = tmp_path / "beacons"
        FleetEpisode(SPEC, PROFILES, beacon_dir=beacons_dir).run()
        beacons, invalid = scan_beacons(beacons_dir)
        assert invalid == 0
        assert beacons["fleet"]["state"] == "done"
        assert beacons["fleet"]["jobs_total"] == (
            SPEC.ls_jobs + SPEC.batch_jobs
        )
        assert any(name.startswith("node-") for name in beacons)

    def test_render_fleet_report_shape(self, tmp_path):
        path = tmp_path / "fleet.jsonl"
        FleetEpisode(
            SPEC, PROFILES, journal=FleetJournal(path, SPEC.digest)
        ).run(until_tick=10)
        resumed = FleetEpisode(
            SPEC, PROFILES, journal=FleetJournal(path, SPEC.digest)
        )
        text = render_fleet_report(resumed.run())
        assert "LS SLO attainment:" in text
        assert "jobs lost: 0" in text
        assert "resumed:" in text
