"""Shutter phase alignment against the real engine.

The detector's docstring promises that steady samples come from periods
where the batch truly was halted and burst samples from periods where
it truly ran; these tests verify that promise end-to-end (directives
lag one period, so this is easy to get wrong silently).
"""

from __future__ import annotations

import pytest

from repro.caer.runtime import CaerConfig, caer_factory
from repro.config import MachineConfig
from repro.sim import run_colocated
from repro.sim.process import ProcessState
from repro.workloads import synthetic

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines


@pytest.fixture(scope="module")
def shutter_run():
    return run_colocated(
        synthetic.zipf_worker(
            lines=int(0.6 * L3), alpha=0.7, instructions=400_000.0
        ),
        synthetic.streamer(lines=3 * L3, instructions=100_000.0),
        MACHINE,
        caer_factory=caer_factory(
            CaerConfig.shutter(switch_point=5, end_point=10)
        ),
        batch_name="batch",
    )


def detection_cycles(run):
    """Group the decision log into detect-state runs of full cycles."""
    cycles = []
    current = []
    for record in run.caer_log:
        if record["state"] == "detect":
            current.append(record)
        elif record["state"] in ("c-positive", "c-negative"):
            current.append(record)
            cycles.append(current)
            current = []
        else:
            current = []
    return [c for c in cycles if len(c) == 11]  # settle + 10


class TestPhaseAlignment:
    def test_full_cycles_exist(self, shutter_run):
        assert len(detection_cycles(shutter_run)) >= 3

    def test_batch_halted_through_steady_phase(self, shutter_run):
        batch_states = shutter_run.process("batch").states
        for cycle in detection_cycles(shutter_run):
            settle_period = cycle[0]["period"]
            # Steady samples are recorded at steps 1..5, i.e. periods
            # settle+1 .. settle+5; the batch must be PAUSED then.
            for offset in range(1, 6):
                state = batch_states[settle_period + offset]
                assert state is ProcessState.PAUSED, (
                    f"period {settle_period + offset} of cycle at "
                    f"{settle_period}"
                )

    def test_batch_running_through_burst_phase(self, shutter_run):
        batch_states = shutter_run.process("batch").states
        for cycle in detection_cycles(shutter_run):
            settle_period = cycle[0]["period"]
            # Burst samples are steps 6..10: periods settle+6..+10.
            for offset in range(6, 11):
                state = batch_states[settle_period + offset]
                assert state is ProcessState.RUNNING

    def test_verdict_every_eleventh_detect_step(self, shutter_run):
        for cycle in detection_cycles(shutter_run):
            assert cycle[-1]["assertion"] in (True, False)
            for record in cycle[:-1]:
                assert record["assertion"] is None
