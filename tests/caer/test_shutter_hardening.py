"""Burst-Shutter fault hardening: filter, abstention, debounce, gate.

The knobs are opt-in; the first test class pins that the default
configuration (the paper's §6 setup) is bit-identical with and without
the hardening code present, and the rest exercise each knob against
hand-built fault signatures.
"""

from __future__ import annotations

import pytest

from repro.caer.detector import Observation
from repro.caer.registry import build_detector
from repro.caer.runtime import CaerConfig
from repro.caer.shutter import BurstShutterDetector
from repro.config import MachineConfig
from repro.errors import ConfigError


def _obs(misses: float, period: int = 0) -> Observation:
    return Observation(
        own_misses=0.0,
        neighbor_misses=misses,
        own_mean=0.0,
        neighbor_mean=misses,
        period=period,
    )


def run_cycle(detector, steady, burst):
    """Drive one full settle/shutter/burst cycle; the verdict step."""
    assert len(steady) == detector.switch_point
    assert len(burst) == detector.end_point - detector.switch_point
    detector.step(_obs(0.0))  # settle
    for sample in steady:
        detector.step(_obs(sample))
    step = None
    for sample in burst:
        step = detector.step(_obs(sample))
    return step


def make(**kwargs) -> BurstShutterDetector:
    return BurstShutterDetector(
        switch_point=3, end_point=6, noise_thresh=20.0, **kwargs
    )


class TestCleanSignalEquivalence:
    @pytest.mark.parametrize(
        "steady,burst,expected",
        [
            ([100, 100, 100], [160, 160, 160], True),
            ([100, 100, 100], [102, 101, 102], False),
            ([160, 160, 160], [100, 100, 100], True),  # two-sided
        ],
    )
    def test_hardened_matches_default_on_clean_cycles(
        self, steady, burst, expected
    ):
        plain = make()
        hardened = make(fault_filter=True, debounce=1)
        assert run_cycle(plain, steady, burst).assertion is expected
        assert run_cycle(hardened, steady, burst).assertion is expected

    def test_defaults_leave_knobs_off(self):
        detector = BurstShutterDetector()
        assert detector.fault_filter is False
        assert detector.debounce == 1


class TestFaultFilter:
    def test_discards_zero_and_saturated_samples(self):
        # Ground truth: no contention.  A dropped read (0) and a
        # saturated counter (900) fabricate a between-phase move that
        # fools the unfiltered comparison.
        steady, burst = [100, 0, 100], [100, 900, 100]
        assert run_cycle(make(), steady, burst).assertion is True
        hardened = make(fault_filter=True)
        assert run_cycle(hardened, steady, burst).assertion is False

    def test_abstains_when_a_phase_is_unusable(self):
        hardened = make(fault_filter=True)
        # Two dropped reads leave one trustworthy burst sample: the
        # cycle abstains instead of guessing.
        step = run_cycle(hardened, [100, 100, 100], [0, 0, 900])
        assert step.assertion is None
        assert hardened.verdicts == []

    def test_quiet_phases_left_untouched(self):
        # Below the noise threshold artefacts and signal are
        # indistinguishable; the filter must not manufacture a verdict.
        hardened = make(fault_filter=True)
        step = run_cycle(hardened, [5, 0, 5], [6, 0, 6])
        assert step.assertion is False

    def test_dispersion_gate_blocks_noise_driven_moves(self):
        # Heavy multiplicative noise scatters samples inside each phase
        # and shifts the phase means apart without real contention; the
        # between-phase move (50) clears the static floor (20) but not
        # 2x the within-phase standard error (~124).
        steady = [100, 300, 100, 300, 100]
        burst = [150, 350, 150, 350, 150]
        plain = BurstShutterDetector(noise_thresh=20.0)
        hardened = BurstShutterDetector(
            noise_thresh=20.0, fault_filter=True
        )
        assert run_cycle(plain, steady, burst).assertion is True
        assert run_cycle(hardened, steady, burst).assertion is False


class TestDebounce:
    def test_majority_vote_suppresses_single_glitch(self):
        detector = make(debounce=3)
        cycles = [
            ([100, 100, 100], [101, 100, 101]),  # raw False
            ([100, 0, 100], [100, 900, 100]),    # fault-driven True
            ([100, 100, 100], [102, 101, 102]),  # raw False
        ]
        assertions = [
            run_cycle(detector, steady, burst).assertion
            for steady, burst in cycles
        ]
        assert detector.verdicts == [False, True, False]
        # The corrupted middle cycle never reaches the response layer.
        assert assertions == [False, False, False]

    def test_sustained_signal_passes_through(self):
        detector = make(debounce=3)
        for _ in range(3):
            step = run_cycle(
                detector, [100, 100, 100], [160, 160, 160]
            )
        assert step.assertion is True


class TestValidationAndPlumbing:
    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"debounce": 0}, "debounce"),
            ({"spike_cap": 1.0}, "spike_cap"),
            ({"dispersion": -0.1}, "dispersion"),
        ],
    )
    def test_rejects_bad_knobs(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            BurstShutterDetector(**kwargs)

    def test_registry_threads_params_through(self):
        config = CaerConfig.shutter(
            detector_params={
                "fault_filter": True,
                "debounce": 3,
                "spike_cap": 6.0,
                "dispersion": 1.5,
            }
        )
        detector = build_detector(config, MachineConfig.tiny())
        assert detector.fault_filter is True
        assert detector.debounce == 3
        assert detector.spike_cap == 6.0
        assert detector.dispersion == 1.5

    def test_registry_defaults_keep_paper_setup(self):
        detector = build_detector(
            CaerConfig.shutter(), MachineConfig.tiny()
        )
        assert detector.fault_filter is False
        assert detector.debounce == 1
