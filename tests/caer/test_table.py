"""The shared communication table."""

from __future__ import annotations

import pytest

from repro.arch.pmu import PMUSample
from repro.caer.table import CommunicationTable
from repro.errors import ConfigError
from repro.sim.process import AppClass


def sample(misses: int, instructions: float = 100.0) -> PMUSample:
    return PMUSample(1000.0, instructions, misses, misses, 0, 0, 0, 0)


class TestRegistration:
    def test_register_and_lookup(self):
        table = CommunicationTable()
        table.register("a", AppClass.LATENCY_SENSITIVE)
        assert table.row("a").app_class is AppClass.LATENCY_SENSITIVE

    def test_double_registration_rejected(self):
        table = CommunicationTable()
        table.register("a", AppClass.BATCH)
        with pytest.raises(ConfigError, match="already"):
            table.register("a", AppClass.BATCH)

    def test_unknown_row_rejected(self):
        with pytest.raises(ConfigError, match="not registered"):
            CommunicationTable().row("ghost")

    def test_bad_window_size(self):
        with pytest.raises(ConfigError):
            CommunicationTable(window_size=0)


class TestPublishing:
    def make_table(self) -> CommunicationTable:
        table = CommunicationTable(window_size=4)
        table.register("ls", AppClass.LATENCY_SENSITIVE)
        table.register("batch", AppClass.BATCH)
        return table

    def test_publish_updates_windows(self):
        table = self.make_table()
        table.publish("ls", sample(10))
        table.publish("ls", sample(20))
        row = table.row("ls")
        assert row.llc_misses.values() == [10.0, 20.0]
        assert row.samples_published == 2
        assert row.last_sample.llc_misses == 20

    def test_class_aggregates(self):
        table = self.make_table()
        table.publish("ls", sample(10))
        table.publish("batch", sample(30))
        assert table.latency_sensitive_misses() == 10.0
        assert table.batch_misses() == 30.0
        assert table.latency_sensitive_mean() == pytest.approx(10.0)
        assert table.batch_mean() == pytest.approx(30.0)

    def test_multiple_ls_apps_sum(self):
        table = CommunicationTable(window_size=4)
        table.register("ls1", AppClass.LATENCY_SENSITIVE)
        table.register("ls2", AppClass.LATENCY_SENSITIVE)
        table.register("b", AppClass.BATCH)
        table.publish("ls1", sample(5))
        table.publish("ls2", sample(7))
        assert table.latency_sensitive_misses() == 12.0

    def test_directives_default(self):
        table = self.make_table()
        assert table.directives.pause_batch is False
