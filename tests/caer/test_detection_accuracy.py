"""Scoring DetectionEvent traces against the profile oracle."""

from __future__ import annotations

import pytest

from repro.caer import score_detection_events
from repro.caer.analysis import PeriodConfusion
from repro.caer.runtime import CaerConfig, caer_factory
from repro.errors import ExperimentError
from repro.obs import DetectionEvent, PhaseEvent, RingBufferSink, Tracer
from repro.sim import run_colocated, run_solo
from repro.workloads import benchmark

BASELINE = 100.0


def event(period: int, verdict, neighbor_mean: float) -> DetectionEvent:
    """A detection event whose oracle truth is set by ``neighbor_mean``.

    With ``BASELINE=100`` and the default 25% tolerance, the oracle
    asserts contention iff ``neighbor_mean`` deviates from 100 by more
    than 25.
    """
    return DetectionEvent(
        period=period, detector="burst-shutter", state="detect",
        own_misses=50.0, neighbor_misses=neighbor_mean,
        own_mean=50.0, neighbor_mean=neighbor_mean,
        threshold=0.4, pause_self=False, verdict=verdict,
    )


class TestPeriodConfusion:
    def test_labels(self):
        assert PeriodConfusion(0, True, True).label == "tp"
        assert PeriodConfusion(0, True, False).label == "fp"
        assert PeriodConfusion(0, False, False).label == "tn"
        assert PeriodConfusion(0, False, True).label == "fn"


class TestScoreDetectionEvents:
    def test_confusion_counts_against_oracle(self):
        events = [
            event(0, verdict=True, neighbor_mean=200.0),   # tp
            event(1, verdict=True, neighbor_mean=100.0),   # fp
            event(2, verdict=False, neighbor_mean=100.0),  # tn
            event(3, verdict=False, neighbor_mean=200.0),  # fn
            event(4, verdict=None, neighbor_mean=200.0),   # skipped
        ]
        scored = score_detection_events(events, baseline_misses=BASELINE)
        assert scored.counts() == {"tp": 1, "fp": 1, "tn": 1, "fn": 1}
        assert scored.report.accuracy == pytest.approx(0.5)
        assert scored.report.precision == pytest.approx(0.5)
        assert scored.report.recall == pytest.approx(0.5)
        assert [p.period for p in scored.periods] == [0, 1, 2, 3]

    def test_accepts_jsonl_payload_dicts(self):
        events = [
            event(0, verdict=True, neighbor_mean=200.0).to_dict(),
            event(1, verdict=False, neighbor_mean=100.0).to_dict(),
            PhaseEvent(
                period=1, scope="process", subject="ls", phase="completed"
            ).to_dict(),  # skipped: wrong kind
        ]
        scored = score_detection_events(events, baseline_misses=BASELINE)
        assert scored.counts() == {"tp": 1, "tn": 1}
        assert scored.report.accuracy == 1.0

    def test_noise_floor_suppresses_small_deviations(self):
        events = [event(0, verdict=False, neighbor_mean=160.0)]
        assert score_detection_events(
            events, baseline_misses=BASELINE
        ).counts() == {"fn": 1}
        assert score_detection_events(
            events, baseline_misses=BASELINE, noise_floor=80.0
        ).counts() == {"tn": 1}

    def test_empty_trace_raises(self):
        with pytest.raises(ExperimentError):
            score_detection_events([], baseline_misses=BASELINE)
        phase_only = [
            PhaseEvent(
                period=0, scope="process", subject="ls", phase="launched"
            )
        ]
        with pytest.raises(ExperimentError):
            score_detection_events(phase_only, baseline_misses=BASELINE)


def test_scores_a_real_trace_end_to_end(tiny_machine):
    """Trace a governed run, score it against the run's solo baseline."""
    l3 = tiny_machine.l3.capacity_lines
    ls = benchmark("429.mcf", l3, length=0.02)
    batch = benchmark("470.lbm", l3, length=0.02)
    solo = run_solo(ls, tiny_machine, seed=2)
    solo_ls = solo.latency_sensitive()
    baseline = solo_ls.total_llc_misses() / max(1, solo.total_periods)
    ring = RingBufferSink(1 << 16)
    run_colocated(
        ls, batch, tiny_machine,
        caer_factory=caer_factory(CaerConfig.shutter()),
        seed=2,
        tracer=Tracer([ring]),
    )
    scored = score_detection_events(
        ring.by_kind("detection"), baseline_misses=baseline
    )
    counts = scored.counts()
    assert sum(counts.values()) == len(scored.periods) > 0
    assert 0.0 <= scored.report.accuracy <= 1.0
