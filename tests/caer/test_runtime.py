"""The CAER runtime period loop, end to end on small scenarios."""

from __future__ import annotations

import pytest

from repro.caer.runtime import CaerConfig, CaerRuntime, caer_factory
from repro.errors import ConfigError
from repro.sim import run_colocated
from repro.sim.process import ProcessState
from repro.workloads import synthetic


def run_with(config, machine, ls=None, batch=None):
    ls = ls or synthetic.zipf_worker(
        lines=300, alpha=0.8, instructions=50_000.0
    )
    batch = batch or synthetic.streamer(lines=2_000, instructions=20_000.0)
    return run_colocated(
        ls, batch, machine, caer_factory=caer_factory(config),
        batch_name="batch",
    )


class TestConfig:
    def test_paper_setups(self):
        assert CaerConfig.shutter().detector == "shutter"
        assert CaerConfig.shutter().response == "rlgl"
        assert CaerConfig.rule_based().response == "soft-lock"
        random = CaerConfig.random_baseline()
        assert random.response_length == 1
        assert random.probability == 0.5

    def test_overrides(self):
        config = CaerConfig.shutter(impact_factor=0.2)
        assert config.impact_factor == 0.2

    def test_build_detector_types(self, small_machine):
        from repro.caer import (
            BurstShutterDetector,
            RandomDetector,
            RuleBasedDetector,
        )

        assert isinstance(
            CaerConfig.shutter().build_detector(small_machine),
            BurstShutterDetector,
        )
        assert isinstance(
            CaerConfig.rule_based().build_detector(small_machine),
            RuleBasedDetector,
        )
        assert isinstance(
            CaerConfig.random_baseline().build_detector(small_machine),
            RandomDetector,
        )

    def test_usage_thresh_resolves_from_machine(self, small_machine):
        detector = CaerConfig.rule_based().build_detector(small_machine)
        from repro.config import default_usage_threshold

        assert detector.usage_thresh == pytest.approx(
            default_usage_threshold(small_machine)
        )

    def test_explicit_usage_thresh_wins(self, small_machine):
        detector = CaerConfig.rule_based(
            usage_thresh=77.0
        ).build_detector(small_machine)
        assert detector.usage_thresh == 77.0

    def test_unknown_detector_rejected(self, small_machine):
        with pytest.raises(ConfigError):
            CaerConfig(detector="psychic").build_detector(small_machine)

    def test_unknown_response_rejected(self, small_machine):
        with pytest.raises(ConfigError):
            CaerConfig(response="prayer").build_response(small_machine)

    def test_label(self):
        assert "shutter" in CaerConfig.shutter().label


class TestRuntimeLoop:
    def test_decision_log_written_every_period(self, small_machine):
        result = run_with(CaerConfig.rule_based(), small_machine)
        assert len(result.caer_log) == result.total_periods
        record = result.caer_log[0]
        for key in ("period", "state", "pause", "own_misses",
                    "neighbor_misses"):
            assert key in record

    def test_shutter_pauses_batch_during_shutter_phases(
        self, small_machine
    ):
        result = run_with(CaerConfig.shutter(), small_machine)
        batch = result.process("batch")
        assert ProcessState.PAUSED in batch.states

    def test_latency_sensitive_never_throttled(self, small_machine):
        result = run_with(CaerConfig.rule_based(), small_machine)
        ls = result.latency_sensitive()
        assert ProcessState.PAUSED not in ls.states

    def test_random_runtime_pauses_roughly_half(self, small_machine):
        batch = synthetic.streamer(lines=2_000, instructions=30_000.0)
        result = run_with(
            CaerConfig.random_baseline(), small_machine, batch=batch
        )
        record = result.process("batch")
        running = record.periods_in_state(ProcessState.RUNNING)
        paused = record.periods_in_state(ProcessState.PAUSED)
        total = running + paused
        assert paused / total == pytest.approx(0.5, abs=0.15)

    def test_requires_batch_process(self, small_machine):
        from repro.arch.chip import MulticoreChip
        from repro.sim.engine import SimulationEngine
        from repro.sim.process import SimProcess

        chip = MulticoreChip(small_machine)
        only_ls = SimProcess(synthetic.compute_bound(), 0)
        engine = SimulationEngine(chip, [only_ls])
        with pytest.raises(ConfigError, match="batch"):
            CaerRuntime(engine, CaerConfig.rule_based())

    def test_requires_latency_sensitive_process(self, small_machine):
        from repro.arch.chip import MulticoreChip
        from repro.sim.engine import SimulationEngine
        from repro.sim.process import AppClass, SimProcess

        chip = MulticoreChip(small_machine)
        only_batch = SimProcess(
            synthetic.compute_bound(), 0, AppClass.BATCH
        )
        engine = SimulationEngine(chip, [only_batch])
        with pytest.raises(ConfigError, match="latency"):
            CaerRuntime(engine, CaerConfig.rule_based())

    def test_multiple_batch_apps_react_together(self, small_machine):
        """§3.2: all batch processes must obey the directive jointly."""
        from repro.arch.chip import MulticoreChip
        from repro.config import CacheGeometry, MachineConfig
        from repro.sim.engine import SimulationEngine
        from repro.sim.process import AppClass, SimProcess

        machine = MachineConfig(
            name="quad",
            num_cores=3,
            l1=CacheGeometry(num_sets=4, associativity=4),
            l2=CacheGeometry(num_sets=16, associativity=4),
            l3=CacheGeometry(num_sets=64, associativity=8),
            period_cycles=5_000,
        )
        chip = MulticoreChip(machine)
        ls = SimProcess(
            synthetic.zipf_worker(lines=300, instructions=40_000.0), 0
        )
        batch_a = SimProcess(
            synthetic.streamer(lines=2_000, instructions=50_000.0), 1,
            AppClass.BATCH, name="batch-a", relaunch=True,
        )
        batch_b = SimProcess(
            synthetic.streamer(lines=2_000, instructions=50_000.0), 2,
            AppClass.BATCH, name="batch-b", relaunch=True,
        )
        engine = SimulationEngine(chip, [ls, batch_a, batch_b])
        runtime = CaerRuntime(engine, CaerConfig.rule_based())
        engine.period_hooks.append(runtime)
        result = engine.run()
        states_a = result.process("batch-a").states
        states_b = result.process("batch-b").states
        assert states_a == states_b  # identical directives
