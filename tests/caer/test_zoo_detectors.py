"""The detector zoo: GMM fence, CDF quantile, proactive analytic.

Unit behaviour with synthetic observations, determinism (same inputs,
same verdicts — no hidden RNG), and the transparency contract: tracing
a zoo-governed run leaves the result bit-identical.
"""

from __future__ import annotations

import pytest

from repro.caer.cdf_detector import CdfQuantileDetector
from repro.caer.detector import Observation
from repro.caer.gmm_detector import GmmFenceDetector, fit_two_gaussians
from repro.caer.proactive import (
    AnalyticProactiveDetector,
    predicted_miss_fence,
)
from repro.caer.runtime import CaerConfig, caer_factory
from repro.config import MachineConfig
from repro.errors import ConfigError
from repro.obs import MetricsRegistry, RingBufferSink, Tracer
from repro.sim import run_colocated
from repro.workloads import benchmark

LENGTH = 0.02


def obs(neighbor=0.0, own=0.0, neighbor_mean=None, own_mean=None,
        period=0) -> Observation:
    return Observation(
        own_misses=own,
        neighbor_misses=neighbor,
        own_mean=own if own_mean is None else own_mean,
        neighbor_mean=(
            neighbor if neighbor_mean is None else neighbor_mean
        ),
        period=period,
    )


class TestFitTwoGaussians:
    def test_separates_two_clusters(self):
        samples = [10.0, 11.0, 9.0, 10.5] * 5 + [100.0, 101.0, 99.0] * 5
        (mu_low, sigma_low), (mu_high, _) = fit_two_gaussians(samples)
        assert 8.0 < mu_low < 13.0
        assert 95.0 < mu_high < 105.0
        assert sigma_low < 5.0

    def test_sorted_by_mean(self):
        quiet, loud = fit_two_gaussians([5.0, 5.1, 90.0, 91.0])
        assert quiet[0] <= loud[0]

    def test_deterministic(self):
        samples = [1.0, 2.0, 3.0, 50.0, 51.0, 52.0]
        assert fit_two_gaussians(samples) == fit_two_gaussians(samples)

    def test_degenerate_constant_sample(self):
        quiet, loud = fit_two_gaussians([7.0] * 10)
        assert quiet[0] == pytest.approx(7.0)
        assert loud[0] == pytest.approx(7.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ConfigError):
            fit_two_gaussians([])


class TestGmmFence:
    def test_no_verdicts_while_training(self):
        detector = GmmFenceDetector(train_periods=8)
        for i in range(7):
            step = detector.step(obs(neighbor=10.0, period=i))
            assert step.assertion is None
        assert detector.fence is None

    def test_fence_separates_quiet_from_loud(self):
        detector = GmmFenceDetector(train_periods=16, fence_sigma=2.0)
        values = [10.0, 11.0, 9.0, 10.5] * 2 + [100.0, 101.0] * 4
        for i, value in enumerate(values):
            detector.step(obs(neighbor=value, period=i))
        assert detector.fence is not None
        assert detector.step(obs(neighbor=9.0)).assertion is False
        assert detector.step(obs(neighbor=150.0)).assertion is True

    def test_noise_floor_floors_fence(self):
        detector = GmmFenceDetector(train_periods=4, noise_floor=50.0)
        for i in range(4):
            detector.step(obs(neighbor=1.0, period=i))
        assert detector.fence >= 50.0

    def test_deterministic_across_instances(self):
        values = [10.0] * 4 + [80.0, 10.0, 90.0, 12.0] * 8
        verdicts = []
        for _ in range(2):
            detector = GmmFenceDetector(train_periods=8)
            for i, value in enumerate(values):
                detector.step(obs(neighbor=value, period=i))
            verdicts.append(list(detector.verdicts))
        assert verdicts[0] == verdicts[1]

    def test_refit_tracks_phase_change(self):
        detector = GmmFenceDetector(train_periods=8, refit_every=8)
        for i in range(8):
            detector.step(obs(neighbor=10.0, period=i))
        first_fence = detector.fence
        for i in range(8, 24):
            detector.step(obs(neighbor=1000.0 + i, period=i))
        assert detector.fence != first_fence

    def test_validation(self):
        with pytest.raises(ConfigError):
            GmmFenceDetector(train_periods=2)
        with pytest.raises(ConfigError):
            GmmFenceDetector(fence_sigma=0.0)
        with pytest.raises(ConfigError):
            GmmFenceDetector(refit_every=-1)


class TestCdfQuantile:
    def test_no_verdicts_until_min_samples(self):
        detector = CdfQuantileDetector(window=8, min_samples=4)
        for i in range(3):
            step = detector.step(obs(neighbor=5.0, own=9.0, period=i))
            assert step.assertion is None

    def test_tail_value_asserts(self):
        detector = CdfQuantileDetector(
            window=16, quantile=0.8, min_samples=4
        )
        for i in range(8):
            detector.step(obs(neighbor=float(i), own=9.0, period=i))
        assert detector.step(
            obs(neighbor=100.0, own=9.0)
        ).assertion is True

    def test_median_value_does_not_assert(self):
        detector = CdfQuantileDetector(
            window=16, quantile=0.8, min_samples=4
        )
        for i in range(8):
            detector.step(obs(neighbor=float(i), own=9.0, period=i))
        assert detector.step(
            obs(neighbor=4.0, own=9.0)
        ).assertion is False

    def test_idle_batch_never_blamed(self):
        """Algorithm-2 logic: an idle batch cannot be the cause."""
        detector = CdfQuantileDetector(
            window=16, quantile=0.8, min_samples=4, noise_floor=1.0
        )
        for i in range(8):
            detector.step(obs(neighbor=float(i), own=9.0, period=i))
        assert detector.step(
            obs(neighbor=100.0, own=0.0, own_mean=0.0)
        ).assertion is False

    def test_rank_computed_before_ingest(self):
        """A sustained burst cannot immediately re-normalise itself."""
        detector = CdfQuantileDetector(
            window=16, quantile=0.8, min_samples=4
        )
        for i in range(4):
            detector.step(obs(neighbor=1.0, own=9.0, period=i))
        for i in range(4, 8):
            assert detector.step(
                obs(neighbor=100.0, own=9.0, period=i)
            ).assertion is True

    def test_validation(self):
        with pytest.raises(ConfigError):
            CdfQuantileDetector(window=2)
        with pytest.raises(ConfigError):
            CdfQuantileDetector(quantile=0.0)
        with pytest.raises(ConfigError):
            CdfQuantileDetector(window=8, min_samples=9)


class TestProactive:
    def test_rising_trend_asserts_before_fence(self):
        detector = AnalyticProactiveDetector(
            fence=100.0, horizon=4, window=8
        )
        value = 0.0
        last = None
        for i in range(8):
            value += 10.0  # reaches 80 observed; projected 80+4*10 > 100
            last = detector.step(obs(neighbor_mean=value, period=i))
        assert last.assertion is True

    def test_flat_quiet_signal_never_asserts(self):
        detector = AnalyticProactiveDetector(fence=100.0)
        for i in range(10):
            step = detector.step(obs(neighbor_mean=50.0, period=i))
        assert step.assertion is False

    def test_projection_is_linear_extrapolation(self):
        detector = AnalyticProactiveDetector(
            fence=1000.0, horizon=2, window=4
        )
        for i, value in enumerate([10.0, 20.0, 30.0, 40.0]):
            detector.step(obs(neighbor_mean=value, period=i))
        assert detector.project() == pytest.approx(60.0)

    def test_deterministic(self):
        values = [10.0, 30.0, 20.0, 50.0, 40.0, 90.0] * 4
        verdicts = []
        for _ in range(2):
            detector = AnalyticProactiveDetector(fence=45.0)
            for i, value in enumerate(values):
                detector.step(obs(neighbor_mean=value, period=i))
            verdicts.append(list(detector.verdicts))
        assert verdicts[0] == verdicts[1]

    def test_predicted_fence_between_solo_and_colo(self):
        machine = MachineConfig.tiny()
        fence = predicted_miss_fence("429.mcf", machine)
        assert fence > 0.0
        # memoised: second call returns the identical object/value
        assert predicted_miss_fence("429.mcf", machine) == fence

    def test_validation(self):
        with pytest.raises(ConfigError):
            AnalyticProactiveDetector(fence=-1.0)
        with pytest.raises(ConfigError):
            AnalyticProactiveDetector(fence=1.0, window=1)


def _run(config: CaerConfig, seed: int, tracer=None, metrics=None):
    machine = MachineConfig.tiny()
    l3 = machine.l3.capacity_lines
    ls = benchmark("429.mcf", l3, length=LENGTH)
    batch = benchmark("470.lbm", l3, length=LENGTH)
    return run_colocated(
        ls, batch, machine,
        caer_factory=caer_factory(config),
        seed=seed,
        tracer=tracer,
        metrics=metrics,
    )


ZOO_CONFIGS = {
    "gmm-fence": CaerConfig(
        detector="gmm-fence", detector_params={"train_periods": 8}
    ),
    "cdf-quantile": CaerConfig(detector="cdf-quantile"),
    "proactive-analytic": CaerConfig(
        detector="proactive-analytic",
        detector_params={"fence": 50.0},
    ),
}


@pytest.mark.parametrize("name", sorted(ZOO_CONFIGS))
def test_traced_equals_untraced(name):
    """Transparency holds for every zoo detector."""
    config = ZOO_CONFIGS[name]
    untraced = _run(config, seed=1)
    ring = RingBufferSink(1 << 20)
    traced = _run(
        config, seed=1, tracer=Tracer([ring]), metrics=MetricsRegistry()
    )
    assert traced == untraced
    detections = ring.by_kind("detection")
    assert len(detections) > 0
    # DetectionEvents carry the registry name, not the class name.
    assert {e.detector for e in detections} == {name}
