"""The detector/response plugin registries and the params plumbing."""

from __future__ import annotations

import pytest

from repro.caer import registry
from repro.caer.cdf_detector import CdfQuantileDetector
from repro.caer.detector import ContentionDetector, DetectorStep
from repro.caer.gmm_detector import GmmFenceDetector
from repro.caer.proactive import AnalyticProactiveDetector
from repro.caer.profile_detector import ProfileDetector
from repro.caer.random_detector import RandomDetector
from repro.caer.response import (
    CachePartition,
    FrequencyScaling,
    RedLightGreenLight,
    SoftLock,
)
from repro.caer.rulebased import RuleBasedDetector
from repro.caer.runtime import CaerConfig
from repro.caer.shutter import BurstShutterDetector
from repro.config import MachineConfig, default_usage_threshold
from repro.errors import ConfigError

MACHINE = MachineConfig.tiny()


class _StubDetector(ContentionDetector):
    name = "stub"

    def __init__(self, knob=0.0):
        self.knob = knob

    def step(self, obs):
        return DetectorStep(pause_self=False, assertion=False)

    def reset(self):
        pass


@pytest.fixture
def scratch_name():
    """A registry name that is guaranteed unregistered afterwards."""
    name = "test-scratch"
    yield name
    registry._DETECTORS.pop(name, None)
    registry._RESPONSES.pop(name, None)


class TestRegistration:
    def test_builtins_are_registered(self):
        assert set(registry.detector_names()) >= {
            "shutter", "rule-based", "random", "profile",
            "gmm-fence", "cdf-quantile", "proactive-analytic",
        }
        assert set(registry.response_names()) >= {
            "rlgl", "soft-lock", "dvfs", "partition",
        }

    def test_names_are_sorted(self):
        assert list(registry.detector_names()) == sorted(
            registry.detector_names()
        )

    def test_register_and_build(self, scratch_name):
        registry.register_detector(
            scratch_name,
            lambda config, machine: _StubDetector(
                knob=config.detector_param("knob", 1.5)
            ),
        )
        assert scratch_name in registry.detector_names()
        config = CaerConfig(
            detector=scratch_name, detector_params={"knob": 7.0}
        )
        detector = config.build_detector(MACHINE)
        assert isinstance(detector, _StubDetector)
        assert detector.knob == 7.0

    def test_duplicate_registration_refused(self):
        with pytest.raises(ConfigError, match="replace=True"):
            registry.register_detector(
                "shutter", lambda config, machine: _StubDetector()
            )
        with pytest.raises(ConfigError, match="replace=True"):
            registry.register_response(
                "rlgl", lambda config, machine: None
            )

    def test_replace_true_overrides(self, scratch_name):
        registry.register_detector(
            scratch_name, lambda config, machine: _StubDetector(knob=1)
        )
        registry.register_detector(
            scratch_name,
            lambda config, machine: _StubDetector(knob=2),
            replace=True,
        )
        detector = CaerConfig(detector=scratch_name).build_detector(
            MACHINE
        )
        assert detector.knob == 2

    def test_empty_name_refused(self):
        with pytest.raises(ConfigError, match="non-empty"):
            registry.register_detector(
                "", lambda config, machine: _StubDetector()
            )

    def test_unknown_detector_lists_choices(self):
        with pytest.raises(ConfigError) as excinfo:
            CaerConfig(detector="psychic").build_detector(MACHINE)
        message = str(excinfo.value)
        for name in registry.detector_names():
            assert name in message

    def test_unknown_response_lists_choices(self):
        with pytest.raises(ConfigError) as excinfo:
            CaerConfig(response="prayer").build_response(MACHINE)
        message = str(excinfo.value)
        for name in registry.response_names():
            assert name in message


class TestBuiltinFactories:
    """Every built-in name constructs its pre-refactor class."""

    @pytest.mark.parametrize(
        "config, expected",
        [
            (CaerConfig.shutter(), BurstShutterDetector),
            (CaerConfig.rule_based(), RuleBasedDetector),
            (CaerConfig.random_baseline(), RandomDetector),
            (CaerConfig.profile_oracle(100.0), ProfileDetector),
            (CaerConfig(detector="gmm-fence"), GmmFenceDetector),
            (CaerConfig(detector="cdf-quantile"), CdfQuantileDetector),
            (
                CaerConfig(detector="proactive-analytic"),
                AnalyticProactiveDetector,
            ),
        ],
    )
    def test_detector_types(self, config, expected):
        assert isinstance(config.build_detector(MACHINE), expected)

    @pytest.mark.parametrize(
        "config, expected",
        [
            (CaerConfig(response="rlgl"), RedLightGreenLight),
            (CaerConfig(response="soft-lock"), SoftLock),
            (CaerConfig.dvfs(), FrequencyScaling),
            (CaerConfig.partition(), CachePartition),
        ],
    )
    def test_response_types(self, config, expected):
        assert isinstance(config.build_response(MACHINE), expected)

    def test_profile_without_baseline_rejected(self):
        with pytest.raises(ConfigError, match="baseline_misses"):
            CaerConfig(detector="profile").build_detector(MACHINE)

    def test_gmm_fence_floors_at_usage_thresh(self):
        config = CaerConfig(
            detector="gmm-fence", usage_thresh=123.0
        )
        detector = config.build_detector(MACHINE)
        assert detector.noise_floor == 123.0

    def test_proactive_fence_param(self):
        config = CaerConfig(
            detector="proactive-analytic",
            detector_params={"fence": 42.0, "horizon": 2},
        )
        detector = config.build_detector(MACHINE)
        assert detector.fence == 42.0
        assert detector.horizon == 2

    def test_default_threshold_resolution(self):
        detector = CaerConfig.rule_based().build_detector(MACHINE)
        assert detector.usage_thresh == default_usage_threshold(MACHINE)


class TestParamsPlumbing:
    def test_dict_input_frozen_sorted(self):
        config = CaerConfig(detector_params={"b": 1, "a": 2})
        assert config.detector_params == (("a", 2), ("b", 1))

    def test_pairs_input_accepted(self):
        config = CaerConfig(response_params=(("x", 1.0),))
        assert config.response_param("x") == 1.0

    def test_param_accessor_default(self):
        config = CaerConfig()
        assert config.detector_param("missing", 9) == 9
        assert config.response_param("missing") is None

    def test_config_stays_hashable(self):
        config = CaerConfig(detector_params={"k": 1})
        assert hash(config) == hash(
            CaerConfig(detector_params={"k": 1})
        )

    def test_non_string_key_rejected(self):
        with pytest.raises(ConfigError, match="non-empty string"):
            CaerConfig(detector_params={3: 1})

    def test_non_scalar_value_rejected(self):
        with pytest.raises(ConfigError, match="JSON scalar"):
            CaerConfig(detector_params={"k": [1, 2]})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError, match="mapping"):
            CaerConfig(detector_params=7)

    def test_round_trips_through_dict(self):
        config = CaerConfig(
            detector="cdf-quantile",
            detector_params={"quantile": 0.9},
            response_params={"hold": 3},
        )
        payload = config.to_dict()
        assert payload["detector_params"] == {"quantile": 0.9}
        assert CaerConfig.from_dict(payload) == config
