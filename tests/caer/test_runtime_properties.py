"""Property-based CAER runtime invariants under arbitrary sample feeds."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.pmu import PMUSample
from repro.caer.runtime import CaerConfig, CaerRuntime
from repro.config import MachineConfig
from repro.sim.process import AppClass


class StubProcess:
    def __init__(self, name, core_id, app_class):
        self.name = name
        self.core_id = core_id
        self.app_class = app_class


class StubEngine:
    """Just enough engine surface for the runtime: processes + sinks."""

    def __init__(self):
        self.chip = type(
            "chip", (), {"machine": MachineConfig.scaled_nehalem()}
        )()
        self.processes = {
            "ls": StubProcess("ls", 0, AppClass.LATENCY_SENSITIVE),
            "batch": StubProcess("batch", 1, AppClass.BATCH),
        }
        self.pauses: list[tuple[str, bool]] = []
        self.speeds: list[tuple[str, float]] = []
        self.quotas: list[tuple[str, float | None]] = []
        self.log: list[dict] = []

    def set_paused(self, name, paused):
        self.pauses.append((name, paused))

    def set_speed(self, name, factor):
        self.speeds.append((name, factor))

    def set_l3_quota(self, name, fraction):
        self.quotas.append((name, fraction))

    def log_decision(self, record):
        self.log.append(record)


def sample(misses: int) -> PMUSample:
    return PMUSample(1000.0, 500.0, misses, misses, 0, 0, 0, 0)


CONFIGS = [
    CaerConfig.shutter(),
    CaerConfig.rule_based(),
    CaerConfig.random_baseline(),
    CaerConfig.dvfs(),
    CaerConfig.partition(),
]


@given(
    config_index=st.integers(0, len(CONFIGS) - 1),
    miss_feed=st.lists(
        st.tuples(st.integers(0, 2000), st.integers(0, 2000)),
        min_size=1,
        max_size=80,
    ),
)
@settings(max_examples=60, deadline=None)
def test_runtime_state_machine_invariants(config_index, miss_feed):
    """Whatever the counters say, the runtime stays well-formed."""
    engine = StubEngine()
    runtime = CaerRuntime(engine, CONFIGS[config_index])
    for period, (ls_misses, batch_misses) in enumerate(miss_feed):
        runtime(
            engine,
            period,
            {"ls": sample(ls_misses), "batch": sample(batch_misses)},
        )
    periods = len(miss_feed)
    # One decision record and one directive set per period.
    assert len(engine.log) == periods
    assert len(engine.pauses) == periods
    assert len(engine.speeds) == periods
    assert len(engine.quotas) == periods
    # Directives only ever target the batch process.
    assert all(name == "batch" for name, _ in engine.pauses)
    # The Figure 5 state machine never leaves its two states.
    assert runtime._state in ("detect", "respond")
    # Log records are complete and well-typed.
    for record in engine.log:
        assert record["state"] in (
            "detect", "respond", "c-positive", "c-negative",
        )
        assert isinstance(record["pause"], bool)
        assert 0.0 < record["speed"] <= 1.0
        assert record["assertion"] in (True, False, None)


@given(
    miss_feed=st.lists(st.integers(0, 2000), min_size=21, max_size=60),
)
@settings(max_examples=30, deadline=None)
def test_shutter_issues_verdicts_on_schedule(miss_feed):
    """Each shutter cycle (plus its response) yields exactly one verdict."""
    engine = StubEngine()
    runtime = CaerRuntime(engine, CaerConfig.shutter())
    for period, misses in enumerate(miss_feed):
        runtime(
            engine, period, {"ls": sample(misses), "batch": sample(0)}
        )
    verdicts = [
        r for r in engine.log if r["assertion"] is not None
    ]
    # A full settle+shutter+burst cycle is 11 periods, the response up
    # to 10 more: at least one verdict in any 21+-period feed.
    assert len(verdicts) >= len(miss_feed) // 21
