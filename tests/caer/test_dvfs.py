"""The DVFS-style frequency-scaling response (§7 extension)."""

from __future__ import annotations

import pytest

from repro.caer.detector import Observation
from repro.caer.metrics import (
    effective_utilization_gained,
    utilization_gained,
)
from repro.caer.response import FrequencyScaling
from repro.caer.runtime import CaerConfig, caer_factory
from repro.errors import ConfigError, DetectorError, SchedulingError
from repro.sim import run_colocated, run_solo
from repro.sim.process import ProcessState, SimProcess
from repro.workloads import synthetic


def obs() -> Observation:
    return Observation(0.0, 0.0, 0.0, 0.0, 0)


class TestFrequencyScalingPolicy:
    def test_positive_verdict_scales(self):
        policy = FrequencyScaling(scale=0.25, length=2)
        policy.begin(True)
        step = policy.step(obs())
        assert step.speed == 0.25
        assert not step.pause_batch
        assert not step.done
        assert policy.step(obs()).done

    def test_negative_verdict_full_speed(self):
        policy = FrequencyScaling(scale=0.25, length=1)
        policy.begin(False)
        step = policy.step(obs())
        assert step.speed == 1.0
        assert step.done

    def test_step_without_begin_rejected(self):
        with pytest.raises(DetectorError):
            FrequencyScaling().step(obs())

    def test_validation(self):
        with pytest.raises(ConfigError):
            FrequencyScaling(scale=0.0)
        with pytest.raises(ConfigError):
            FrequencyScaling(scale=1.5)
        with pytest.raises(ConfigError):
            FrequencyScaling(length=0)


class TestEngineSpeedDirective:
    def test_speed_scales_progress(self, tiny_machine):
        from repro.arch.chip import MulticoreChip
        from repro.sim.engine import SimulationEngine

        spec = synthetic.compute_bound(instructions=1e9)

        def run_at(factor: float) -> float:
            chip = MulticoreChip(tiny_machine)
            proc = SimProcess(spec, 0, name="p")

            def hook(engine, period, samples):
                engine.set_speed("p", factor)

            engine = SimulationEngine(chip, [proc], period_hooks=[hook])
            result = engine.run(stop_when=lambda e: e.clock.period >= 10)
            return result.process("p").samples[-1].instructions

        full = run_at(1.0)
        half = run_at(0.5)
        # Fixed per-period costs (cold misses, probe overhead) and
        # cache effects do not scale with frequency; require only that
        # halving the frequency roughly halves progress.
        assert 0.40 <= half / full <= 0.62

    def test_speed_validation(self):
        proc = SimProcess(synthetic.compute_bound(), 0)
        with pytest.raises(SchedulingError):
            proc.set_speed(0.0)
        with pytest.raises(SchedulingError):
            proc.set_speed(1.5)

    def test_speed_recorded_per_period(self, tiny_machine):
        from repro.arch.chip import MulticoreChip
        from repro.sim.engine import SimulationEngine

        chip = MulticoreChip(tiny_machine)
        proc = SimProcess(
            synthetic.compute_bound(instructions=1e9), 0, name="p"
        )

        def hook(engine, period, samples):
            if period == 1:
                engine.set_speed("p", 0.5)

        engine = SimulationEngine(chip, [proc], period_hooks=[hook])
        result = engine.run(stop_when=lambda e: e.clock.period >= 4)
        assert result.process("p").speeds == [1.0, 1.0, 0.5, 0.5]


class TestEndToEnd:
    def test_dvfs_protects_while_keeping_batch_alive(self, small_machine):
        ls = synthetic.zipf_worker(
            lines=300, alpha=0.8, instructions=60_000.0
        )
        batch = synthetic.streamer(lines=2_000, instructions=20_000.0)
        solo = run_solo(ls, small_machine)
        raw = run_colocated(ls, batch, small_machine)
        dvfs = run_colocated(
            ls, batch, small_machine,
            caer_factory=caer_factory(CaerConfig.dvfs()),
            batch_name="batch",
        )
        solo_p = solo.latency_sensitive().completion_periods
        assert (
            dvfs.latency_sensitive().completion_periods
            <= raw.latency_sensitive().completion_periods
        )
        assert (
            dvfs.latency_sensitive().completion_periods
            >= solo_p
        )
        # DVFS never outright pauses the batch during the response
        # (only shutter phases pause it).
        log_speeds = {d["speed"] for d in dvfs.caer_log}
        assert 0.25 in log_speeds or 1.0 in log_speeds

    def test_effective_utilization_discounts_scaled_periods(
        self, small_machine
    ):
        ls = synthetic.zipf_worker(
            lines=300, alpha=0.8, instructions=40_000.0
        )
        batch = synthetic.streamer(lines=2_000, instructions=20_000.0)
        result = run_colocated(
            ls, batch, small_machine,
            caer_factory=caer_factory(CaerConfig.dvfs(dvfs_scale=0.25)),
            batch_name="batch",
        )
        nominal = utilization_gained(result)
        effective = effective_utilization_gained(result)
        assert effective <= nominal

    def test_effective_equals_nominal_for_pause_responses(
        self, small_machine
    ):
        ls = synthetic.zipf_worker(
            lines=300, alpha=0.8, instructions=40_000.0
        )
        batch = synthetic.streamer(lines=2_000, instructions=20_000.0)
        result = run_colocated(
            ls, batch, small_machine,
            caer_factory=caer_factory(CaerConfig.rule_based()),
            batch_name="batch",
        )
        assert effective_utilization_gained(result) == pytest.approx(
            utilization_gained(result)
        )


class TestDetectorResponseCombos:
    """Any detector may pair with any response through CaerConfig."""

    @pytest.mark.parametrize("detector", ["shutter", "rule-based",
                                          "random"])
    @pytest.mark.parametrize(
        "response", ["rlgl", "soft-lock", "dvfs", "partition"]
    )
    def test_combo_builds_and_runs(self, detector, response,
                                   small_machine):
        config = CaerConfig(
            detector=detector, response=response, response_length=3,
        )
        result = run_colocated(
            synthetic.zipf_worker(lines=300, instructions=20_000.0),
            synthetic.streamer(lines=2_000, instructions=10_000.0),
            small_machine,
            caer_factory=caer_factory(config),
            batch_name="batch",
        )
        assert result.caer_log
        assert result.latency_sensitive().first_completion_period \
            is not None
