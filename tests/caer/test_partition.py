"""The cache-partition response (§7's hardware-QoS alternative)."""

from __future__ import annotations

import pytest

from repro.arch.chip import MulticoreChip
from repro.caer.detector import Observation
from repro.caer.response import CachePartition
from repro.caer.runtime import CaerConfig, caer_factory
from repro.config import MachineConfig
from repro.errors import ConfigError, DetectorError
from repro.sim import run_colocated
from repro.workloads import synthetic


def obs() -> Observation:
    return Observation(0.0, 0.0, 0.0, 0.0, 0)


class TestPolicy:
    def test_positive_verdict_caps(self):
        policy = CachePartition(quota=0.25, length=2)
        policy.begin(True)
        step = policy.step(obs())
        assert step.l3_quota == 0.25
        assert not step.pause_batch
        assert not step.done
        assert policy.step(obs()).done

    def test_negative_verdict_uncaps(self):
        policy = CachePartition(quota=0.25, length=1)
        policy.begin(False)
        step = policy.step(obs())
        assert step.l3_quota is None
        assert step.done

    def test_step_without_begin_rejected(self):
        with pytest.raises(DetectorError):
            CachePartition().step(obs())

    def test_validation(self):
        with pytest.raises(ConfigError):
            CachePartition(quota=0.0)
        with pytest.raises(ConfigError):
            CachePartition(quota=1.5)
        with pytest.raises(ConfigError):
            CachePartition(length=0)


class TestHierarchyQuota:
    def test_quota_caps_streaming_occupancy(self):
        chip = MulticoreChip(MachineConfig.scaled_nehalem())
        chip.hierarchy.set_l3_quota(1, 0.25)
        for addr in range(30_000):
            chip.hierarchy.access(1, addr)
        assert chip.hierarchy.l3_occupancy_fraction(1) <= 0.26

    def test_quota_protects_neighbour_lines(self):
        chip = MulticoreChip(MachineConfig.scaled_nehalem())
        hierarchy = chip.hierarchy
        # Core 0 establishes a working set.
        for addr in range(2_000):
            hierarchy.access(0, addr)
        # A capped streamer on core 1 floods the L3.
        hierarchy.set_l3_quota(1, 0.125)
        for addr in range(100_000, 140_000):
            hierarchy.access(1, addr)
        capped_stolen = hierarchy.counters_for(0).lines_stolen
        # Uncapped control run on a fresh chip.
        chip2 = MulticoreChip(MachineConfig.scaled_nehalem())
        for addr in range(2_000):
            chip2.hierarchy.access(0, addr)
        for addr in range(100_000, 140_000):
            chip2.hierarchy.access(1, addr)
        uncapped_stolen = chip2.hierarchy.counters_for(0).lines_stolen
        assert capped_stolen < 0.3 * uncapped_stolen

    def test_quota_removable(self):
        chip = MulticoreChip(MachineConfig.scaled_nehalem())
        chip.hierarchy.set_l3_quota(1, 0.25)
        chip.hierarchy.set_l3_quota(1, None)
        for addr in range(30_000):
            chip.hierarchy.access(1, addr)
        assert chip.hierarchy.l3_occupancy_fraction(1) > 0.5

    def test_quota_fraction_validated(self):
        chip = MulticoreChip(MachineConfig.tiny())
        with pytest.raises(ConfigError):
            chip.hierarchy.set_l3_quota(0, 0.0)

    def test_inclusion_holds_under_quota(self):
        chip = MulticoreChip(MachineConfig.tiny())
        chip.hierarchy.set_l3_quota(1, 0.25)
        for addr in range(400):
            chip.hierarchy.access(addr % 2, addr)
        assert chip.hierarchy.check_inclusion() == []


class TestEndToEnd:
    def test_partition_keeps_batch_running(self, small_machine):
        from repro.sim.process import ProcessState

        result = run_colocated(
            synthetic.zipf_worker(lines=300, alpha=0.8,
                                  instructions=40_000.0),
            synthetic.streamer(lines=2_000, instructions=20_000.0),
            small_machine,
            caer_factory=caer_factory(CaerConfig.partition()),
            batch_name="batch",
        )
        batch = result.process("batch")
        running = batch.periods_in_state(ProcessState.RUNNING)
        paused = batch.periods_in_state(ProcessState.PAUSED)
        # Only the shutter's measurement phases pause the batch; the
        # response itself never does.
        assert running > paused
        quotas = {d["l3_quota"] for d in result.caer_log}
        assert quotas & {0.25, None}
