"""Decision-log analysis: summaries and verdict scoring."""

from __future__ import annotations

import pytest

from repro.caer.analysis import (
    AccuracyReport,
    score_verdicts,
    summarise_decisions,
)
from repro.errors import ExperimentError
from repro.sim.results import RunResult


def run_with_log(records: list[dict]) -> RunResult:
    run = RunResult(machine_name="m", period_cycles=1000)
    run.caer_log = records
    return run


def record(period, state="detect", pause=False, assertion=None,
           speed=1.0) -> dict:
    return {
        "period": period,
        "state": state,
        "pause": pause,
        "assertion": assertion,
        "speed": speed,
    }


class TestSummary:
    def test_counts_and_fractions(self):
        run = run_with_log(
            [
                record(0, state="detect", pause=True),
                record(1, state="c-positive", pause=True,
                       assertion=True),
                record(2, state="respond", pause=True),
                record(3, state="c-negative", assertion=False),
                record(4, state="respond", speed=0.5),
            ]
        )
        summary = summarise_decisions(run)
        assert summary.periods == 5
        assert summary.positives == 1
        assert summary.negatives == 1
        assert summary.positive_rate == pytest.approx(0.5)
        assert summary.pause_fraction == pytest.approx(3 / 5)
        assert summary.mean_running_speed == pytest.approx(0.75)
        assert summary.state_counts["respond"] == 2

    def test_render(self):
        run = run_with_log([record(0, assertion=True, pause=True)])
        text = summarise_decisions(run).render()
        assert "1 verdicts" in text
        assert "100% c-positive" in text

    def test_empty_log_rejected(self):
        with pytest.raises(ExperimentError):
            summarise_decisions(run_with_log([]))

    def test_no_verdicts(self):
        run = run_with_log([record(0), record(1)])
        summary = summarise_decisions(run)
        assert summary.verdicts == 0
        assert summary.positive_rate == 0.0

    def test_all_paused_mean_speed_defaults(self):
        run = run_with_log([record(0, pause=True)])
        assert summarise_decisions(run).mean_running_speed == 1.0


class TestScoring:
    def make_run(self) -> RunResult:
        return run_with_log(
            [
                record(0, assertion=True),    # contended: TP
                record(1, assertion=False),   # contended: FN
                record(2, assertion=True),    # quiet: FP
                record(3, assertion=False),   # quiet: TN
                record(4),                    # no verdict: ignored
            ]
        )

    def test_confusion_matrix(self):
        report = score_verdicts(self.make_run(), {0, 1})
        assert report.true_positives == 1
        assert report.false_negatives == 1
        assert report.false_positives == 1
        assert report.true_negatives == 1

    def test_rates(self):
        report = score_verdicts(self.make_run(), {0, 1})
        assert report.precision == pytest.approx(0.5)
        assert report.recall == pytest.approx(0.5)
        assert report.accuracy == pytest.approx(0.5)

    def test_range_ground_truth(self):
        report = score_verdicts(self.make_run(), range(0, 2))
        assert report.true_positives == 1

    def test_degenerate_rates(self):
        report = AccuracyReport(0, 0, 0, 0)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.accuracy == 1.0

    def test_perfect_detector(self):
        run = run_with_log(
            [record(0, assertion=True), record(1, assertion=False)]
        )
        report = score_verdicts(run, {0})
        assert report.accuracy == 1.0

    def test_empty_log_rejected(self):
        with pytest.raises(ExperimentError):
            score_verdicts(run_with_log([]), {0})


class TestEndToEnd:
    def test_rule_based_detects_contender_lifetime(self, small_machine):
        """Verdicts should be mostly positive while a heavy contender
        runs next to a heavy victim."""
        from repro.caer.runtime import CaerConfig, caer_factory
        from repro.sim import run_colocated
        from repro.workloads import synthetic

        result = run_colocated(
            synthetic.zipf_worker(
                lines=400, alpha=0.6, instructions=60_000.0
            ),
            synthetic.streamer(lines=4_000, instructions=30_000.0),
            small_machine,
            caer_factory=caer_factory(CaerConfig.rule_based()),
            batch_name="batch",
        )
        summary = summarise_decisions(result)
        assert summary.verdicts > 0
        assert summary.positive_rate > 0.3
