"""Detection heuristics driven with synthetic observations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caer.detector import Observation
from repro.caer.random_detector import RandomDetector
from repro.caer.rulebased import RuleBasedDetector
from repro.caer.shutter import BurstShutterDetector
from repro.errors import ConfigError


def obs(neighbor=0.0, own=0.0, neighbor_mean=None, own_mean=None,
        period=0) -> Observation:
    return Observation(
        own_misses=own,
        neighbor_misses=neighbor,
        own_mean=own if own_mean is None else own_mean,
        neighbor_mean=(
            neighbor if neighbor_mean is None else neighbor_mean
        ),
        period=period,
    )


def drive_cycle(detector: BurstShutterDetector, steady: float,
                burst: float):
    """Feed one full shutter cycle; return (pause trace, verdict)."""
    pauses = []
    verdict = None
    for i in range(detector.cycle_length):
        if i == 0:
            value = 0.0  # settle step records nothing
        elif i <= detector.switch_point:
            value = steady
        else:
            value = burst
        step = detector.step(obs(neighbor=value, period=i))
        pauses.append(step.pause_self)
        if step.assertion is not None:
            verdict = step.assertion
    return pauses, verdict


class TestBurstShutter:
    def test_cycle_structure(self):
        detector = BurstShutterDetector(switch_point=3, end_point=6)
        pauses, verdict = drive_cycle(detector, steady=100, burst=100)
        # settle + (switch-1) paused steps, then running for the rest.
        assert pauses[:3] == [True, True, True]
        assert pauses[3:] == [False, False, False, False]
        assert verdict is not None

    def test_spike_asserts_contention(self):
        detector = BurstShutterDetector(
            switch_point=3, end_point=6, impact_factor=0.05,
            noise_thresh=5.0,
        )
        _, verdict = drive_cycle(detector, steady=100, burst=150)
        assert verdict is True

    def test_drop_asserts_contention_in_two_sided_mode(self):
        detector = BurstShutterDetector(
            switch_point=3, end_point=6, impact_factor=0.05,
            noise_thresh=5.0,
        )
        _, verdict = drive_cycle(detector, steady=150, burst=100)
        assert verdict is True

    def test_drop_ignored_in_spike_mode(self):
        detector = BurstShutterDetector(
            switch_point=3, end_point=6, impact_factor=0.05,
            noise_thresh=5.0, mode="spike",
        )
        _, verdict = drive_cycle(detector, steady=150, burst=100)
        assert verdict is False

    def test_flat_signal_is_negative(self):
        detector = BurstShutterDetector(
            switch_point=3, end_point=6, noise_thresh=5.0
        )
        _, verdict = drive_cycle(detector, steady=100, burst=102)
        assert verdict is False

    def test_noise_floor_suppresses_small_absolute_moves(self):
        detector = BurstShutterDetector(
            switch_point=3, end_point=6, impact_factor=0.05,
            noise_thresh=20.0,
        )
        # +50% relative but only +5 absolute: below the noise floor.
        _, verdict = drive_cycle(detector, steady=10, burst=15)
        assert verdict is False

    def test_impact_factor_gates_relative_moves(self):
        strict = BurstShutterDetector(
            switch_point=3, end_point=6, impact_factor=0.5,
            noise_thresh=1.0,
        )
        _, verdict = drive_cycle(strict, steady=100, burst=120)
        assert verdict is False
        loose = BurstShutterDetector(
            switch_point=3, end_point=6, impact_factor=0.05,
            noise_thresh=1.0,
        )
        _, verdict = drive_cycle(loose, steady=100, burst=120)
        assert verdict is True

    def test_cycle_repeats_after_verdict(self):
        detector = BurstShutterDetector(switch_point=2, end_point=4)
        drive_cycle(detector, steady=100, burst=200)
        pauses, verdict = drive_cycle(detector, steady=100, burst=200)
        assert pauses[0] is True  # new settle step
        assert verdict is True
        assert detector.verdicts == [True, True]

    def test_reset_clears_cycle(self):
        detector = BurstShutterDetector()
        detector.step(obs(neighbor=1.0))
        detector.step(obs(neighbor=1.0))
        detector.reset()
        assert detector.step(obs()).pause_self is True  # settle again

    def test_validation(self):
        with pytest.raises(ConfigError):
            BurstShutterDetector(switch_point=0)
        with pytest.raises(ConfigError):
            BurstShutterDetector(switch_point=5, end_point=5)
        with pytest.raises(ConfigError):
            BurstShutterDetector(impact_factor=-0.1)
        with pytest.raises(ConfigError):
            BurstShutterDetector(mode="sideways")

    @given(
        st.floats(0.0, 1e5),
        st.floats(0.0, 1e5),
        st.integers(1, 6),
        st.integers(1, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_verdicts_at_cycle_end(
        self, steady, burst, switch, extra
    ):
        detector = BurstShutterDetector(
            switch_point=switch, end_point=switch + extra
        )
        _, verdict = drive_cycle(detector, steady, burst)
        assert verdict in (True, False)


class TestRuleBased:
    def test_both_heavy_is_contending(self):
        detector = RuleBasedDetector(usage_thresh=100.0)
        step = detector.step(obs(own_mean=200.0, neighbor_mean=300.0))
        assert step.assertion is True
        assert step.pause_self is False

    def test_light_neighbor_is_not_contending(self):
        detector = RuleBasedDetector(usage_thresh=100.0)
        step = detector.step(obs(own_mean=200.0, neighbor_mean=50.0))
        assert step.assertion is False

    def test_light_self_is_not_contending(self):
        detector = RuleBasedDetector(usage_thresh=100.0)
        step = detector.step(obs(own_mean=50.0, neighbor_mean=200.0))
        assert step.assertion is False

    def test_verdict_every_period(self):
        detector = RuleBasedDetector(usage_thresh=10.0)
        for _ in range(5):
            assert detector.step(obs()).assertion is not None
        assert len(detector.verdicts) == 5

    def test_threshold_boundary(self):
        detector = RuleBasedDetector(usage_thresh=100.0)
        step = detector.step(obs(own_mean=100.0, neighbor_mean=100.0))
        assert step.assertion is True  # "dips below" => strict <

    def test_validation(self):
        with pytest.raises(ConfigError):
            RuleBasedDetector(usage_thresh=-1.0)


class TestRandom:
    def test_deterministic_under_seed(self):
        a = RandomDetector(seed=11)
        b = RandomDetector(seed=11)
        seq_a = [a.step(obs()).assertion for _ in range(50)]
        seq_b = [b.step(obs()).assertion for _ in range(50)]
        assert seq_a == seq_b

    def test_probability_extremes(self):
        always = RandomDetector(probability=1.0)
        never = RandomDetector(probability=0.0)
        assert all(always.step(obs()).assertion for _ in range(20))
        assert not any(never.step(obs()).assertion for _ in range(20))

    def test_roughly_fair_at_half(self):
        detector = RandomDetector(probability=0.5, seed=1)
        positives = sum(
            detector.step(obs()).assertion for _ in range(2000)
        )
        assert 850 < positives < 1150

    def test_ignores_observation(self):
        detector = RandomDetector(probability=0.5, seed=2)
        seq_a = [
            detector.step(obs(neighbor=1e9)).assertion
            for _ in range(20)
        ]
        detector2 = RandomDetector(probability=0.5, seed=2)
        seq_b = [detector2.step(obs()).assertion for _ in range(20)]
        assert seq_a == seq_b

    def test_validation(self):
        with pytest.raises(ConfigError):
            RandomDetector(probability=1.5)
