"""Response policies: red-light/green-light and soft locking."""

from __future__ import annotations

import pytest

from repro.caer.detector import Observation
from repro.caer.response import RedLightGreenLight, SoftLock
from repro.errors import ConfigError, DetectorError


def obs(neighbor_mean=0.0) -> Observation:
    return Observation(
        own_misses=0.0,
        neighbor_misses=neighbor_mean,
        own_mean=0.0,
        neighbor_mean=neighbor_mean,
        period=0,
    )


class TestRedLightGreenLight:
    def test_red_holds_for_length(self):
        response = RedLightGreenLight(length=3)
        response.begin(True)
        steps = [response.step(obs()) for _ in range(3)]
        assert [s.pause_batch for s in steps] == [True, True, True]
        assert [s.done for s in steps] == [False, False, True]

    def test_green_runs_for_length(self):
        response = RedLightGreenLight(length=2)
        response.begin(False)
        steps = [response.step(obs()) for _ in range(2)]
        assert [s.pause_batch for s in steps] == [False, False]
        assert steps[-1].done

    def test_step_without_begin_rejected(self):
        with pytest.raises(DetectorError):
            RedLightGreenLight().step(obs())

    def test_step_past_done_rejected(self):
        response = RedLightGreenLight(length=1)
        response.begin(True)
        response.step(obs())
        with pytest.raises(DetectorError):
            response.step(obs())

    def test_adaptive_doubles_on_repeat(self):
        response = RedLightGreenLight(
            length=4, adaptive=True, max_length=32
        )
        response.begin(True)
        assert response.current_length == 4
        response.begin(True)
        assert response.current_length == 8
        response.begin(True)
        assert response.current_length == 16

    def test_adaptive_resets_on_flip(self):
        response = RedLightGreenLight(
            length=4, adaptive=True, max_length=32
        )
        response.begin(True)
        response.begin(True)
        response.begin(False)
        assert response.current_length == 4

    def test_adaptive_caps_at_max(self):
        response = RedLightGreenLight(
            length=4, adaptive=True, max_length=10
        )
        for _ in range(5):
            response.begin(True)
        assert response.current_length == 10

    def test_fixed_never_grows(self):
        response = RedLightGreenLight(length=4, adaptive=False)
        response.begin(True)
        response.begin(True)
        assert response.current_length == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            RedLightGreenLight(length=0)
        with pytest.raises(ConfigError):
            RedLightGreenLight(length=10, max_length=5)


class TestSoftLock:
    def test_negative_verdict_passes_through(self):
        lock = SoftLock(release_thresh=100.0)
        lock.begin(False)
        step = lock.step(obs(neighbor_mean=1e6))
        assert not step.pause_batch
        assert step.done

    def test_lock_holds_while_pressure_high(self):
        lock = SoftLock(release_thresh=100.0, max_hold=50)
        lock.begin(True)
        for _ in range(10):
            step = lock.step(obs(neighbor_mean=500.0))
            assert step.pause_batch
            assert not step.done
        assert lock.locked

    def test_releases_when_pressure_subsides(self):
        lock = SoftLock(release_thresh=100.0)
        lock.begin(True)
        lock.step(obs(neighbor_mean=500.0))
        step = lock.step(obs(neighbor_mean=50.0))
        assert not step.pause_batch
        assert step.done
        assert not lock.locked

    def test_max_hold_bounds_the_lock(self):
        lock = SoftLock(release_thresh=100.0, max_hold=3)
        lock.begin(True)
        steps = [lock.step(obs(neighbor_mean=500.0)) for _ in range(3)]
        assert [s.done for s in steps] == [False, False, True]
        assert not steps[-1].pause_batch

    def test_step_without_begin_rejected(self):
        with pytest.raises(DetectorError):
            SoftLock(release_thresh=1.0).step(obs())

    def test_relockable_after_release(self):
        lock = SoftLock(release_thresh=100.0)
        lock.begin(True)
        lock.step(obs(neighbor_mean=50.0))  # releases immediately
        lock.begin(True)
        assert lock.step(obs(neighbor_mean=500.0)).pause_batch

    def test_validation(self):
        with pytest.raises(ConfigError):
            SoftLock(release_thresh=-1.0)
        with pytest.raises(ConfigError):
            SoftLock(release_thresh=1.0, max_hold=0)
