"""Sample-window ring buffer vs. a reference deque model."""

from __future__ import annotations

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caer.window import SampleWindow
from repro.errors import ConfigError


class TestBasics:
    def test_empty(self):
        window = SampleWindow(4)
        assert window.mean() == 0.0
        assert window.last() == 0.0
        assert window.values() == []
        assert len(window) == 0
        assert not window.full

    def test_partial_fill(self):
        window = SampleWindow(4)
        window.push(2.0)
        window.push(4.0)
        assert window.mean() == pytest.approx(3.0)
        assert window.last() == 4.0
        assert window.values() == [2.0, 4.0]

    def test_eviction_of_oldest(self):
        window = SampleWindow(3)
        for v in (1.0, 2.0, 3.0, 4.0):
            window.push(v)
        assert window.values() == [2.0, 3.0, 4.0]
        assert window.mean() == pytest.approx(3.0)
        assert window.full

    def test_tail_mean(self):
        window = SampleWindow(5)
        for v in (1.0, 2.0, 3.0, 4.0):
            window.push(v)
        assert window.tail_mean(2) == pytest.approx(3.5)
        assert window.tail_mean(10) == pytest.approx(2.5)

    def test_tail_mean_empty(self):
        assert SampleWindow(3).tail_mean(2) == 0.0

    def test_clear(self):
        window = SampleWindow(3)
        window.push(5.0)
        window.clear()
        assert len(window) == 0
        assert window.mean() == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SampleWindow(0)
        with pytest.raises(ConfigError):
            SampleWindow(3).tail_mean(0)


class TestAgainstReference:
    @given(
        st.integers(1, 16),
        st.lists(st.floats(-1e6, 1e6), min_size=0, max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_deque_model(self, capacity, values):
        window = SampleWindow(capacity)
        reference: deque[float] = deque(maxlen=capacity)
        for v in values:
            window.push(v)
            reference.append(v)
            assert window.values() == list(reference)
            if reference:
                assert window.mean() == pytest.approx(
                    sum(reference) / len(reference), rel=1e-6, abs=1e-6
                )
                assert window.last() == reference[-1]
