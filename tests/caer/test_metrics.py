"""Evaluation metrics: Equation 1, penalties, Equation 2."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.pmu import PMUSample
from repro.caer.metrics import (
    accuracy_vs_random,
    interference_eliminated,
    penalty,
    slowdown,
    utilization,
    utilization_gained,
)
from repro.errors import ExperimentError
from repro.sim.process import AppClass, ProcessState
from repro.sim.results import ProcessResult, RunResult


def synthetic_run(
    ls_periods: int,
    batch_running: list[bool] | None = None,
    launch: int = 0,
) -> RunResult:
    """Build a RunResult by hand: LS runs [launch, launch+ls_periods)."""
    total = launch + ls_periods
    run = RunResult(machine_name="m", period_cycles=1000,
                    total_periods=total)
    ls = ProcessResult(
        name="ls",
        app_class=AppClass.LATENCY_SENSITIVE,
        core_id=0,
        launch_period=launch,
    )
    for t in range(total):
        state = (
            ProcessState.WAITING if t < launch else ProcessState.RUNNING
        )
        ls.record(state, PMUSample.zero())
    ls.first_completion_period = total - 1
    run.processes["ls"] = ls
    if batch_running is not None:
        batch = ProcessResult(
            name="batch",
            app_class=AppClass.BATCH,
            core_id=1,
            launch_period=0,
        )
        for t in range(total):
            running = batch_running[t] if t < len(batch_running) else True
            batch.record(
                ProcessState.RUNNING if running else ProcessState.PAUSED,
                PMUSample.zero(),
            )
        run.processes["batch"] = batch
    return run


class TestSlowdown:
    def test_slowdown_and_penalty(self):
        solo = synthetic_run(100)
        colo = synthetic_run(136)
        assert slowdown(colo, solo) == pytest.approx(1.36)
        assert penalty(colo, solo) == pytest.approx(0.36)


class TestUtilization:
    def test_solo_pair_utilization_is_half(self):
        run = synthetic_run(100)
        assert utilization(run, num_cores=2) == pytest.approx(0.5)

    def test_full_colocation_is_one(self):
        run = synthetic_run(100, batch_running=[True] * 100)
        assert utilization(run, num_cores=2) == pytest.approx(1.0)

    def test_half_throttled_batch(self):
        pattern = [True, False] * 50
        run = synthetic_run(100, batch_running=pattern)
        assert utilization(run, num_cores=2) == pytest.approx(0.75)
        assert utilization_gained(run) == pytest.approx(0.5)

    def test_gain_equals_two_u_minus_one(self):
        pattern = ([True] * 30) + ([False] * 70)
        run = synthetic_run(100, batch_running=pattern)
        u = utilization(run, num_cores=2)
        assert utilization_gained(run) == pytest.approx(2 * u - 1)

    def test_window_excludes_pre_launch_periods(self):
        # Batch runs during the stagger, pauses afterwards: none of the
        # stagger periods may count toward the LS-lifetime utilization.
        run = synthetic_run(
            10, batch_running=[True] * 5 + [False] * 10, launch=5
        )
        assert utilization_gained(run) == pytest.approx(0.0)

    def test_no_batch_process(self):
        run = synthetic_run(10)
        assert utilization_gained(run) == 0.0

    def test_incomplete_ls_rejected(self):
        run = synthetic_run(10)
        run.latency_sensitive().first_completion_period = None
        with pytest.raises(ExperimentError):
            utilization(run)

    def test_too_many_processes_for_cores(self):
        run = synthetic_run(10, batch_running=[True] * 10)
        with pytest.raises(ExperimentError):
            utilization(run, num_cores=1)

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_utilization_bounds(self, pattern):
        run = synthetic_run(len(pattern), batch_running=pattern)
        u = utilization(run, num_cores=2)
        g = utilization_gained(run)
        assert 0.5 <= u <= 1.0
        assert 0.0 <= g <= 1.0


class TestDerivedMetrics:
    def test_interference_eliminated(self):
        assert interference_eliminated(0.17, 0.04) == pytest.approx(
            13 / 17
        )

    def test_interference_eliminated_clamped(self):
        assert interference_eliminated(0.1, 0.2) == 0.0

    def test_interference_eliminated_requires_positive_raw(self):
        with pytest.raises(ExperimentError):
            interference_eliminated(0.0, 0.0)

    def test_accuracy_equation_2(self):
        assert accuracy_vs_random(0.32, 0.5) == pytest.approx(-0.36)
        assert accuracy_vs_random(0.75, 0.5) == pytest.approx(0.5)

    def test_accuracy_requires_positive_random(self):
        with pytest.raises(ExperimentError):
            accuracy_vs_random(0.5, 0.0)
