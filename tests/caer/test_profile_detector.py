"""The offline-profile oracle detector."""

from __future__ import annotations

import pytest

from repro.caer.detector import Observation
from repro.caer.profile_detector import ProfileDetector
from repro.caer.runtime import CaerConfig
from repro.errors import ConfigError


def obs(neighbor_mean: float) -> Observation:
    return Observation(0.0, 0.0, 0.0, neighbor_mean, 0)


class TestVerdicts:
    def test_at_baseline_is_quiet(self):
        detector = ProfileDetector(baseline_misses=100.0)
        assert detector.step(obs(100.0)).assertion is False
        assert detector.step(obs(110.0)).assertion is False

    def test_elevated_misses_detected(self):
        detector = ProfileDetector(
            baseline_misses=100.0, tolerance=0.25
        )
        assert detector.step(obs(140.0)).assertion is True

    def test_depressed_misses_also_detected(self):
        """A slowed victim misses less per period; also interference."""
        detector = ProfileDetector(
            baseline_misses=100.0, tolerance=0.25
        )
        assert detector.step(obs(60.0)).assertion is True

    def test_noise_floor_guards_tiny_baselines(self):
        detector = ProfileDetector(
            baseline_misses=4.0, tolerance=0.25, noise_floor=20.0
        )
        # 3x relative deviation but below the absolute floor: quiet.
        assert detector.step(obs(12.0)).assertion is False
        assert detector.step(obs(40.0)).assertion is True

    def test_zero_baseline(self):
        detector = ProfileDetector(
            baseline_misses=0.0, noise_floor=5.0
        )
        assert detector.step(obs(3.0)).assertion is False
        assert detector.step(obs(50.0)).assertion is True

    def test_verdict_every_period(self):
        detector = ProfileDetector(baseline_misses=10.0)
        for _ in range(4):
            assert detector.step(obs(10.0)).assertion is not None
        assert len(detector.verdicts) == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            ProfileDetector(baseline_misses=-1.0)
        with pytest.raises(ConfigError):
            ProfileDetector(baseline_misses=1.0, tolerance=0.0)
        with pytest.raises(ConfigError):
            ProfileDetector(baseline_misses=1.0, noise_floor=-1.0)


class TestConfig:
    def test_profile_oracle_classmethod(self, small_machine):
        config = CaerConfig.profile_oracle(baseline_misses=200.0)
        detector = config.build_detector(small_machine)
        assert isinstance(detector, ProfileDetector)
        assert detector.baseline_misses == 200.0
        assert detector.noise_floor > 0  # machine-resolved floor

    def test_profile_requires_baseline(self, small_machine):
        config = CaerConfig(detector="profile")
        with pytest.raises(ConfigError, match="baseline"):
            config.build_detector(small_machine)
