"""Perfmon event sets."""

from __future__ import annotations

import pytest

from repro.arch.pmu import PMUEvent
from repro.errors import PerfmonError
from repro.perfmon.events import (
    HARDWARE_COUNTERS,
    EventSet,
    default_event_set,
)


class TestEventSet:
    def test_default_covers_caer_needs(self):
        events = default_event_set()
        assert PMUEvent.LLC_MISSES in events
        assert PMUEvent.INSTRUCTIONS_RETIRED in events
        assert PMUEvent.CYCLES in events

    def test_empty_rejected(self):
        with pytest.raises(PerfmonError):
            EventSet(events=())

    def test_duplicates_rejected(self):
        with pytest.raises(PerfmonError):
            EventSet(events=(PMUEvent.LLC_MISSES, PMUEvent.LLC_MISSES))

    def test_counter_budget_enforced(self):
        programmable = [
            PMUEvent.LLC_MISSES,
            PMUEvent.LLC_REFERENCES,
            PMUEvent.L2_MISSES,
            PMUEvent.L1_MISSES,
            PMUEvent.BACK_INVALIDATIONS,
        ]
        assert len(programmable) > HARDWARE_COUNTERS
        with pytest.raises(PerfmonError, match="counters"):
            EventSet(events=tuple(programmable))

    def test_fixed_counters_are_free(self):
        EventSet(
            events=(
                PMUEvent.CYCLES,
                PMUEvent.INSTRUCTIONS_RETIRED,
                PMUEvent.LLC_MISSES,
                PMUEvent.LLC_REFERENCES,
                PMUEvent.L2_MISSES,
                PMUEvent.L1_MISSES,
            )
        )
