"""Perfmon sessions: probing, overhead, lifecycle."""

from __future__ import annotations

import pytest

from repro.arch.chip import MulticoreChip
from repro.config import MachineConfig
from repro.errors import PerfmonError
from repro.perfmon.session import PerfmonSession
from repro.sim.process import SimProcess
from repro.workloads import synthetic


def make_session(overhead=20.0):
    chip = MulticoreChip(MachineConfig.tiny())
    session = PerfmonSession(
        chip.pmu(0), chip.core(0), probe_overhead_cycles=overhead
    )
    return session, chip


class TestProbing:
    def test_probe_returns_period_deltas(self):
        session, chip = make_session(overhead=0.0)
        proc = SimProcess(synthetic.compute_bound(instructions=1e9), 0)
        proc.launch()
        chip.core(0).run(proc, 1_000.0)
        first = session.probe()
        assert first.cycles > 0
        second = session.probe()
        assert second.cycles == 0.0

    def test_probe_charges_overhead(self):
        session, chip = make_session(overhead=25.0)
        session.probe()
        assert chip.core(0).cycles_executed == 25.0

    def test_peek_is_free_and_non_destructive(self):
        session, chip = make_session(overhead=25.0)
        chip.core(0).charge_overhead(100.0)
        before = chip.core(0).cycles_executed
        session.peek()
        assert chip.core(0).cycles_executed == before

    def test_probe_counter(self):
        session, _ = make_session()
        session.probe()
        session.probe()
        assert session.probes == 2


class TestLifecycle:
    def test_closed_session_rejects_probes(self):
        session, _ = make_session()
        session.close()
        assert session.closed
        with pytest.raises(PerfmonError):
            session.probe()
        with pytest.raises(PerfmonError):
            session.peek()

    def test_context_manager(self):
        session, _ = make_session()
        with session as s:
            s.probe()
        assert session.closed

    def test_negative_overhead_rejected(self):
        chip = MulticoreChip(MachineConfig.tiny())
        with pytest.raises(PerfmonError):
            PerfmonSession(
                chip.pmu(0), chip.core(0), probe_overhead_cycles=-1.0
            )
