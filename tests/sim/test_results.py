"""Result records and series accessors."""

from __future__ import annotations

import pytest

from repro.arch.pmu import PMUSample
from repro.errors import SimulationError
from repro.sim.process import AppClass, ProcessState
from repro.sim.results import ProcessResult, RunResult


def sample(misses=0, instructions=0.0) -> PMUSample:
    return PMUSample(100.0, instructions, misses, misses, 0, 0, 0, 0)


def make_record(name="p", app_class=AppClass.LATENCY_SENSITIVE,
                launch=0) -> ProcessResult:
    return ProcessResult(
        name=name, app_class=app_class, core_id=0, launch_period=launch
    )


class TestProcessResult:
    def test_series(self):
        record = make_record()
        record.record(ProcessState.RUNNING, sample(misses=5))
        record.record(ProcessState.PAUSED, sample(misses=2))
        assert record.llc_miss_series() == [5, 2]
        assert record.total_llc_misses() == 7

    def test_periods_in_state_with_window(self):
        record = make_record()
        for state in (
            ProcessState.RUNNING,
            ProcessState.PAUSED,
            ProcessState.RUNNING,
            ProcessState.RUNNING,
        ):
            record.record(state, sample())
        assert record.periods_in_state(ProcessState.RUNNING) == 3
        assert (
            record.periods_in_state(ProcessState.RUNNING, window=(1, 3))
            == 1
        )

    def test_completion_periods(self):
        record = make_record(launch=2)
        record.first_completion_period = 11
        assert record.completion_periods == 10

    def test_completion_periods_requires_completion(self):
        record = make_record()
        with pytest.raises(SimulationError, match="never ran"):
            _ = record.completion_periods


class TestRunResult:
    def make_run(self) -> RunResult:
        run = RunResult(machine_name="m", period_cycles=1000)
        run.processes["ls"] = make_record("ls")
        run.processes["batch"] = make_record(
            "batch", app_class=AppClass.BATCH
        )
        return run

    def test_lookup(self):
        run = self.make_run()
        assert run.process("ls").name == "ls"
        with pytest.raises(SimulationError, match="no process"):
            run.process("ghost")

    def test_by_class(self):
        run = self.make_run()
        assert [p.name for p in run.batch_processes()] == ["batch"]
        assert run.latency_sensitive().name == "ls"

    def test_latency_sensitive_requires_exactly_one(self):
        run = self.make_run()
        run.processes["ls2"] = make_record("ls2")
        with pytest.raises(SimulationError, match="exactly one"):
            run.latency_sensitive()
