"""Canonical scenarios: solo and co-located runs."""

from __future__ import annotations

from repro.sim import run_colocated, run_solo
from repro.sim.process import AppClass, ProcessState
from repro.workloads import synthetic


class TestSolo:
    def test_solo_completes(self, tiny_machine):
        result = run_solo(
            synthetic.compute_bound(instructions=5_000.0), tiny_machine
        )
        ls = result.latency_sensitive()
        assert ls.first_completion_period is not None
        assert ls.app_class is AppClass.LATENCY_SENSITIVE


class TestColocated:
    def test_batch_launches_before_ls(self, tiny_machine):
        result = run_colocated(
            synthetic.compute_bound(instructions=3_000.0),
            synthetic.streamer(lines=64, instructions=2_000.0),
            tiny_machine,
            launch_stagger=2,
        )
        ls = result.latency_sensitive()
        batch = result.batch_processes()[0]
        assert batch.launch_period == 0
        assert ls.launch_period == 2
        assert ls.states[0] is ProcessState.WAITING
        assert batch.states[0] is ProcessState.RUNNING

    def test_run_stops_when_ls_completes(self, tiny_machine):
        result = run_colocated(
            synthetic.compute_bound(instructions=3_000.0),
            synthetic.streamer(lines=64, instructions=1e9),
            tiny_machine,
        )
        ls = result.latency_sensitive()
        assert ls.first_completion_period == result.total_periods - 1

    def test_batch_relaunches(self, tiny_machine):
        result = run_colocated(
            synthetic.compute_bound(instructions=30_000.0),
            synthetic.compute_bound(instructions=500.0),
            tiny_machine,
        )
        assert result.batch_processes()[0].completions > 1

    def test_caer_factory_hook_attached(self, tiny_machine):
        seen = []

        def factory(engine):
            def hook(eng, period, samples):
                seen.append(period)

            return hook

        run_colocated(
            synthetic.compute_bound(instructions=2_000.0),
            synthetic.compute_bound(instructions=2_000.0),
            tiny_machine,
            caer_factory=factory,
        )
        assert seen == list(range(len(seen)))
        assert seen

    def test_contention_slows_the_victim(self, small_machine):
        """A streaming contender must slow a cache-hungry victim."""
        victim = synthetic.zipf_worker(
            lines=400, alpha=0.8, instructions=60_000.0
        )
        contender = synthetic.streamer(lines=4_000, instructions=30_000.0)
        solo = run_solo(victim, small_machine)
        colo = run_colocated(victim, contender, small_machine)
        solo_p = solo.latency_sensitive().completion_periods
        colo_p = colo.latency_sensitive().completion_periods
        assert colo_p > solo_p
