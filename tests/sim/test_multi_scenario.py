"""Multi-batch scenarios under CAER (the Figure 4 architecture)."""

from __future__ import annotations

import pytest

from repro.caer.metrics import utilization_gained
from repro.caer.runtime import CaerConfig, caer_factory
from repro.config import MachineConfig
from repro.sim import run_multi_colocated, run_solo
from repro.sim.process import ProcessState
from repro.workloads import synthetic

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines


def victim():
    return synthetic.zipf_worker(
        lines=int(0.6 * L3), alpha=0.7, instructions=150_000.0
    )


def contender():
    return synthetic.streamer(lines=3 * L3, instructions=60_000.0)


class TestMultiBatchCaer:
    @pytest.fixture(scope="class")
    def managed_run(self):
        return run_multi_colocated(
            victim(),
            [contender(), contender(), contender()],
            MACHINE,
            caer_factory=caer_factory(CaerConfig.rule_based()),
        )

    def test_all_batches_obey_the_shared_directive(self, managed_run):
        histories = [
            record.states for record in managed_run.batch_processes()
        ]
        assert len(histories) == 3
        first = histories[0]
        for other in histories[1:]:
            assert other == first

    def test_caer_protects_against_the_group(self, managed_run):
        solo = run_solo(victim(), MACHINE)
        solo_periods = solo.latency_sensitive().completion_periods
        managed_periods = (
            managed_run.latency_sensitive().completion_periods
        )
        raw = run_multi_colocated(
            victim(), [contender()] * 3, MACHINE
        )
        raw_periods = raw.latency_sensitive().completion_periods
        assert raw_periods > 1.3 * solo_periods
        assert managed_periods < 0.7 * raw_periods

    def test_utilization_averages_over_the_group(self, managed_run):
        gained = utilization_gained(managed_run)
        assert 0.0 <= gained <= 1.0
        # With a heavy victim the group is throttled most of the time.
        assert gained < 0.5

    def test_victim_untouched(self, managed_run):
        ls = managed_run.latency_sensitive()
        assert ProcessState.PAUSED not in ls.states

    def test_decision_log_counts_group_misses(self, managed_run):
        # own_misses aggregates the whole batch group; while all three
        # run it must exceed any single contender's typical rate.
        running_records = [
            record
            for record in managed_run.caer_log
            if not record["pause"] and record["own_misses"] > 0
        ]
        assert running_records
        assert max(r["own_misses"] for r in running_records) > 500
