"""Property-based engine invariants under arbitrary throttle schedules."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.chip import MulticoreChip
from repro.config import MachineConfig
from repro.sim.engine import SimulationEngine
from repro.sim.process import ProcessState, SimProcess
from repro.workloads import synthetic


@given(
    pause_schedule=st.lists(st.booleans(), min_size=4, max_size=12),
    seed=st.integers(0, 3),
)
@settings(max_examples=25, deadline=None)
def test_conservation_under_arbitrary_throttling(pause_schedule, seed):
    """Whatever the pause schedule, the engine's books must balance."""
    chip = MulticoreChip(MachineConfig.tiny(), seed=seed)
    proc = SimProcess(
        synthetic.streamer(lines=200, instructions=1e9),
        core_id=0,
        name="p",
        seed=seed,
    )

    def hook(engine, period, samples):
        if period < len(pause_schedule):
            engine.set_paused("p", pause_schedule[period])

    engine = SimulationEngine(chip, [proc], period_hooks=[hook])
    horizon = len(pause_schedule) + 2
    result = engine.run(stop_when=lambda e: e.clock.period >= horizon)
    record = result.process("p")

    assert len(record.states) == horizon
    total_instructions = sum(s.instructions for s in record.samples)
    # Sampled instruction deltas must equal the workload's accounting.
    assert abs(total_instructions - proc.workload.instructions_retired) < 1.0

    for state, sample in zip(record.states, record.samples):
        if state in (ProcessState.PAUSED, ProcessState.WAITING):
            # Throttled periods retire nothing and miss nothing.
            assert sample.instructions == 0.0
            assert sample.llc_misses == 0
        else:
            # A runnable streaming period makes progress.
            assert sample.instructions > 0.0
        # No period can execute more cycles than it has (plus probe).
        assert sample.cycles <= chip.machine.period_cycles + 100

    # The hierarchy's inclusion invariant survives any schedule.
    assert chip.hierarchy.check_inclusion() == []


@given(stagger=st.integers(0, 6), seed=st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_stagger_never_loses_instructions(stagger, seed):
    """Launch stagger delays, never discards, work."""
    chip = MulticoreChip(MachineConfig.tiny(), seed=seed)
    proc = SimProcess(
        synthetic.compute_bound(instructions=4_000.0),
        core_id=0,
        launch_period=stagger,
        seed=seed,
    )
    engine = SimulationEngine(chip, [proc])
    result = engine.run()
    record = result.latency_sensitive()
    assert record.first_completion_period is not None
    assert record.instructions_retired >= 4_000.0 - 1.0
    waiting = record.periods_in_state(ProcessState.WAITING)
    assert waiting == stagger
