"""Simulation clock."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock


class TestClock:
    def test_starts_at_zero(self):
        clock = SimClock(1000)
        assert clock.period == 0
        assert clock.cycle == 0.0

    def test_advance(self):
        clock = SimClock(1000)
        assert clock.advance_period() == 1
        assert clock.cycle == 1000.0

    def test_cycle_at_fraction(self):
        clock = SimClock(1000)
        assert clock.cycle_at(2, 0.5) == 2500.0

    def test_fraction_validated(self):
        clock = SimClock(1000)
        with pytest.raises(SimulationError):
            clock.cycle_at(0, 1.5)

    def test_positive_period_required(self):
        with pytest.raises(SimulationError):
            SimClock(0)
