"""Process lifecycle and scheduling state."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.sim.process import AppClass, ProcessState, SimProcess
from repro.workloads import synthetic


def make_process(**kwargs) -> SimProcess:
    spec = synthetic.compute_bound(instructions=100.0)
    return SimProcess(spec, core_id=0, **kwargs)


class TestLifecycle:
    def test_starts_waiting(self):
        proc = make_process()
        assert proc.state is ProcessState.WAITING
        assert not proc.runnable

    def test_launch(self):
        proc = make_process()
        proc.launch()
        assert proc.state is ProcessState.RUNNING
        assert proc.runnable

    def test_double_launch_rejected(self):
        proc = make_process()
        proc.launch()
        with pytest.raises(SchedulingError):
            proc.launch()

    def test_pause_resume(self):
        proc = make_process()
        proc.launch()
        proc.set_paused(True)
        assert proc.state is ProcessState.PAUSED
        assert not proc.runnable
        proc.set_paused(False)
        assert proc.state is ProcessState.RUNNING

    def test_pause_is_idempotent(self):
        proc = make_process()
        proc.launch()
        proc.set_paused(False)  # not paused: no-op
        assert proc.state is ProcessState.RUNNING
        proc.set_paused(True)
        proc.set_paused(True)
        assert proc.state is ProcessState.PAUSED


class TestCompletion:
    def test_completion_without_relaunch_finishes(self):
        proc = make_process()
        proc.launch()
        proc.note_completion(period=5)
        assert proc.state is ProcessState.FINISHED
        assert proc.completions == 1
        assert proc.first_completion_period == 5

    def test_relaunch_restarts_workload(self):
        proc = make_process(relaunch=True)
        proc.launch()
        old = proc.workload
        proc.note_completion(period=5)
        assert proc.state is ProcessState.RUNNING
        assert proc.workload is not old
        assert not proc.workload.finished

    def test_first_completion_recorded_once(self):
        proc = make_process(relaunch=True)
        proc.launch()
        proc.note_completion(period=5)
        proc.note_completion(period=9)
        assert proc.first_completion_period == 5
        assert proc.completions == 2

    def test_pause_after_finish_is_noop(self):
        proc = make_process()
        proc.launch()
        proc.note_completion(period=1)
        proc.set_paused(True)
        assert proc.state is ProcessState.FINISHED


class TestValidation:
    def test_negative_core_rejected(self):
        with pytest.raises(SchedulingError):
            SimProcess(synthetic.compute_bound(), core_id=-1)

    def test_negative_launch_period_rejected(self):
        with pytest.raises(SchedulingError):
            make_process(launch_period=-1)

    def test_default_class_and_name(self):
        proc = make_process()
        assert proc.app_class is AppClass.LATENCY_SENSITIVE
        assert proc.name == proc.spec.name

    def test_disjoint_address_bases(self):
        a = SimProcess(synthetic.compute_bound(), core_id=0)
        b = SimProcess(synthetic.compute_bound(), core_id=1)
        assert a.workload.base != b.workload.base
