"""Run-result export (CSV/JSON)."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.caer.runtime import CaerConfig, caer_factory
from repro.errors import SimulationError
from repro.sim import run_colocated, run_solo
from repro.sim.trace import (
    PERIOD_COLUMNS,
    decisions_to_csv,
    periods_to_csv,
    run_to_json,
)
from repro.workloads import synthetic


@pytest.fixture(scope="module")
def caer_run(request):
    from repro.config import MachineConfig

    machine = MachineConfig(
        name="small",
        num_cores=2,
        l1=MachineConfig.tiny().l1,
        l2=MachineConfig.tiny().l2,
        l3=MachineConfig.tiny().l3,
        period_cycles=5_000,
    )
    return run_colocated(
        synthetic.zipf_worker(lines=100, instructions=30_000.0),
        synthetic.streamer(lines=500, instructions=10_000.0),
        machine,
        caer_factory=caer_factory(CaerConfig.rule_based()),
        batch_name="batch",
    )


class TestPeriodsCsv:
    def test_header_and_rows(self, caer_run):
        rows = list(csv.reader(io.StringIO(periods_to_csv(caer_run))))
        assert tuple(rows[0]) == PERIOD_COLUMNS
        # One row per (period, process).
        expected = caer_run.total_periods * len(caer_run.processes)
        assert len(rows) - 1 == expected

    def test_states_serialised(self, caer_run):
        text = periods_to_csv(caer_run)
        assert "running" in text
        assert "waiting" in text  # launch stagger


class TestDecisionsCsv:
    def test_decision_rows(self, caer_run):
        rows = list(csv.reader(io.StringIO(decisions_to_csv(caer_run))))
        assert "period" in rows[0]
        assert len(rows) - 1 == len(caer_run.caer_log)

    def test_requires_caer_log(self, tiny_machine):
        solo = run_solo(
            synthetic.compute_bound(instructions=2_000.0), tiny_machine
        )
        with pytest.raises(SimulationError):
            decisions_to_csv(solo)


class TestJson:
    def test_summary_fields(self, caer_run):
        data = json.loads(run_to_json(caer_run))
        assert data["total_periods"] == caer_run.total_periods
        names = {p["name"] for p in data["processes"]}
        assert "batch" in names
        assert data["caer_decisions"] == len(caer_run.caer_log)

    def test_series_optional(self, caer_run):
        without = json.loads(run_to_json(caer_run))
        assert "series" not in without
        with_series = json.loads(
            run_to_json(caer_run, include_series=True)
        )
        series = with_series["series"]["batch"]
        assert len(series["llc_misses"]) == caer_run.total_periods
        assert len(series["states"]) == caer_run.total_periods
