"""Engine behaviour: quantum loop, directives, conservation laws."""

from __future__ import annotations

import pytest

from repro.arch.chip import MulticoreChip
from repro.config import MachineConfig
from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import SimulationEngine
from repro.sim.process import AppClass, ProcessState, SimProcess
from repro.workloads import synthetic


def make_engine(processes, machine=None, **kwargs) -> SimulationEngine:
    chip = MulticoreChip(machine or MachineConfig.tiny())
    return SimulationEngine(chip, processes, **kwargs)


def simple_process(instructions=5_000.0, core_id=0, **kwargs):
    kwargs.setdefault("name", f"proc{core_id}")
    return SimProcess(
        synthetic.compute_bound(instructions=instructions),
        core_id=core_id,
        **kwargs,
    )


class TestBasicRuns:
    def test_runs_to_completion(self):
        engine = make_engine([simple_process()])
        result = engine.run()
        assert result.total_periods > 0
        ls = result.latency_sensitive()
        assert ls.first_completion_period is not None

    def test_retired_instructions_match_budget(self):
        engine = make_engine([simple_process(instructions=5_000.0)])
        result = engine.run()
        retired = result.latency_sensitive().instructions_retired
        assert retired == pytest.approx(5_000.0, rel=0.02)

    def test_two_processes_on_distinct_cores(self):
        engine = make_engine(
            [simple_process(core_id=0), simple_process(core_id=1)]
        )
        result = engine.run()
        assert len(result.processes) == 2

    def test_staggered_launch(self):
        late = simple_process(core_id=0, launch_period=3)
        engine = make_engine([late])
        result = engine.run()
        record = result.process(late.name)
        assert all(
            s is ProcessState.WAITING for s in record.states[:3]
        )
        assert record.states[3] is ProcessState.RUNNING

    def test_relaunch_keeps_batch_running(self):
        batch = SimProcess(
            synthetic.compute_bound(instructions=500.0),
            core_id=1,
            app_class=AppClass.BATCH,
            name="batch",
            relaunch=True,
        )
        primary = simple_process(instructions=20_000.0, core_id=0)
        engine = make_engine([primary, batch])
        result = engine.run()
        assert result.process("batch").completions > 1


class TestDirectives:
    def test_pause_takes_effect_next_period(self):
        proc = simple_process(instructions=1e9)
        captured = []

        def hook(engine, period, samples):
            captured.append(samples[proc.name].instructions)
            if period == 2:
                engine.set_paused(proc.name, True)
            if period == 5:
                engine.set_paused(proc.name, False)

        engine = make_engine([proc], period_hooks=[hook])
        engine.run(stop_when=lambda e: e.clock.period >= 8)
        # The directive issued at period 2 governs periods 3..5; the
        # resume issued at period 5 restores execution from period 6.
        assert captured[2] > 0
        assert captured[3] == 0.0
        assert captured[4] == 0.0
        assert captured[5] == 0.0
        assert captured[6] > 0

    def test_paused_process_retires_nothing(self):
        proc = simple_process(instructions=1e6)

        def hook(engine, period, samples):
            if period == 1:
                engine.set_paused(proc.name, True)

        engine = make_engine([proc], period_hooks=[hook])
        result = engine.run(stop_when=lambda e: e.clock.period >= 6)
        record = result.process(proc.name)
        # Periods 2+ are paused: zero instruction samples.
        for state, sample in zip(record.states, record.samples):
            if state is ProcessState.PAUSED:
                assert sample.instructions == 0.0
        assert ProcessState.PAUSED in record.states

    def test_unknown_process_directive_rejected(self):
        engine = make_engine([simple_process()])
        with pytest.raises(SchedulingError):
            engine.set_paused("nope", True)


class TestValidation:
    def test_duplicate_cores_rejected(self):
        with pytest.raises(SchedulingError, match="already has"):
            make_engine(
                [
                    simple_process(core_id=0, name="a"),
                    simple_process(core_id=0, name="b"),
                ]
            )

    def test_duplicate_names_rejected(self):
        a = simple_process(core_id=0)
        b = simple_process(core_id=1)
        b.name = a.name
        with pytest.raises(SchedulingError, match="duplicate"):
            make_engine([a, b])

    def test_core_out_of_range_rejected(self):
        with pytest.raises(SchedulingError, match="cores"):
            make_engine([simple_process(core_id=7)])

    def test_no_processes_rejected(self):
        with pytest.raises(SchedulingError):
            make_engine([])

    def test_max_periods_guard(self):
        proc = simple_process(instructions=1e12)
        engine = make_engine([proc], max_periods=5)
        with pytest.raises(SimulationError, match="max_periods"):
            engine.run()

    def test_all_relaunching_needs_explicit_stop(self):
        batch = SimProcess(
            synthetic.compute_bound(instructions=100.0),
            core_id=0,
            relaunch=True,
        )
        engine = make_engine([batch])
        with pytest.raises(SimulationError, match="relaunch"):
            engine.run()


class TestRecording:
    def test_series_lengths_match_periods(self):
        engine = make_engine([simple_process()])
        result = engine.run()
        record = result.latency_sensitive()
        assert len(record.states) == result.total_periods
        assert len(record.samples) == result.total_periods

    def test_cycle_samples_bounded_by_period(self):
        machine = MachineConfig.tiny()
        engine = make_engine([simple_process(instructions=1e9)],
                             machine=machine, max_periods=10)
        result = engine.run(stop_when=lambda e: e.clock.period >= 5)
        for sample in result.latency_sensitive().samples:
            # Probe overhead is charged on top of execution cycles.
            assert sample.cycles <= machine.period_cycles * 1.1

    def test_custom_stop_condition(self):
        engine = make_engine([simple_process(instructions=1e9)])
        result = engine.run(stop_when=lambda e: e.clock.period >= 4)
        assert result.total_periods == 4
