"""``watch`` status collection and rendering under degraded telemetry."""

from __future__ import annotations

from repro.experiments.watch import collect_status, render_watch
from repro.obs import write_beacon


class TestCollectStatus:
    def test_counts_corrupt_beacons(self, tmp_path):
        write_beacon(tmp_path, "campaign", {"state": "running"})
        (tmp_path / "worker-0.json").write_text("{torn")
        status = collect_status(str(tmp_path), now=0.0)
        assert status["invalid"] == 1
        assert status["any"]

    def test_classifies_fleet_and_nodes(self, tmp_path):
        write_beacon(tmp_path, "fleet", {"state": "running", "tick": 3})
        write_beacon(
            tmp_path, "node-0", {"tick": 3, "contended": 1}
        )
        status = collect_status(str(tmp_path))
        assert status["fleet"]["state"] == "running"
        assert set(status["nodes"]) == {"node-0"}
        assert status["campaign"] is None

    def test_done_follows_fleet_beacon_without_campaign(self, tmp_path):
        write_beacon(tmp_path, "fleet", {"state": "done"})
        assert collect_status(str(tmp_path))["done"]


class TestRenderWatch:
    def test_reports_skipped_corrupt_files(self, tmp_path):
        write_beacon(tmp_path, "campaign", {
            "state": "running", "runs_total": 4, "runs_completed": 1,
        })
        (tmp_path / "worker-0.json").write_text("not json")
        text = render_watch(collect_status(str(tmp_path)))
        assert "1 corrupt beacon file(s) skipped" in text

    def test_corrupt_only_directory_still_renders(self, tmp_path):
        (tmp_path / "campaign.json").write_text("{torn")
        text = render_watch(collect_status(str(tmp_path)))
        assert "no beacons" in text
        assert "1 corrupt beacon file(s) skipped" in text

    def test_fleet_and_node_lines(self, tmp_path):
        write_beacon(tmp_path, "fleet", {
            "state": "running",
            "tick": 7,
            "jobs_done": 5,
            "jobs_total": 23,
            "jobs_waiting": 3,
            "migrations": 2,
            "nodes_dead": 1,
            "nodes_quarantined": 0,
        })
        write_beacon(tmp_path, "node-0", {
            "tick": 7, "jobs_running": 2, "contended": 1,
            "straggler": 0,
        })
        write_beacon(tmp_path, "node-1", {
            "tick": 7, "jobs_running": 1, "contended": 0,
            "straggler": 1,
        })
        text = render_watch(collect_status(str(tmp_path)))
        assert "fleet running: tick 7, 5/23 jobs done" in text
        assert "nodes: 2 reporting" in text
        assert "CONTENDED" in text
        assert "straggler" in text

    def test_garbage_numeric_fields_render_as_zero(self, tmp_path):
        write_beacon(tmp_path, "campaign", {
            "state": "running",
            "runs_total": "not-a-number",
            "runs_completed": None,
        })
        text = render_watch(collect_status(str(tmp_path)))
        assert "0/0 runs" in text
