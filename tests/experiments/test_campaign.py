"""Campaign orchestration and caching."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.campaign import (
    Campaign,
    CampaignSettings,
    RunSummary,
)

FAST = CampaignSettings(length=0.02)


class TestSettings:
    def test_machine_built_from_settings(self):
        machine = FAST.machine()
        assert machine.l3.capacity_lines == 8192
        assert machine.period_cycles == 40_000

    def test_cache_tag_identifies_settings(self):
        a = CampaignSettings(length=0.1).cache_tag()
        b = CampaignSettings(length=0.2).cache_tag()
        assert a != b

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_LENGTH", "0.37")
        assert CampaignSettings.from_env().length == 0.37

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_LENGTH", "soon")
        with pytest.raises(ExperimentError):
            CampaignSettings.from_env()


class TestConfigMapping:
    def test_raw_has_no_caer(self):
        assert Campaign.caer_config("raw") is None

    def test_tags_map_to_paper_setups(self):
        assert Campaign.caer_config("shutter").detector == "shutter"
        assert Campaign.caer_config("rule").detector == "rule-based"
        assert Campaign.caer_config("random").detector == "random"

    def test_unknown_tag(self):
        with pytest.raises(ExperimentError):
            Campaign.caer_config("psychic")


class TestRuns:
    def test_solo_summary(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path)
        summary = campaign.solo("444.namd")
        assert summary.config == "solo"
        assert summary.completion_periods > 0
        assert len(summary.miss_series) == summary.total_periods

    def test_memoised_in_memory(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path)
        first = campaign.solo("444.namd")
        second = campaign.solo("444.namd")
        assert first is second

    def test_disk_cache_round_trip(self, tmp_path):
        first = Campaign(FAST, cache_dir=tmp_path).solo("444.namd")
        fresh = Campaign(FAST, cache_dir=tmp_path)
        second = fresh.solo("444.namd")
        assert second.completion_periods == first.completion_periods
        assert second.miss_series == first.miss_series

    def test_corrupt_cache_entry_is_ignored(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path)
        campaign.solo("444.namd")
        path = campaign._cache_path("444.namd", "solo")
        path.write_text("{not json")
        fresh = Campaign(FAST, cache_dir=tmp_path)
        assert fresh.solo("444.namd").completion_periods > 0

    def test_colocated_validates_config(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path)
        with pytest.raises(ExperimentError):
            campaign.colocated("444.namd", "bogus")

    def test_slowdown_at_least_one_ish(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path)
        slowdown = campaign.slowdown("444.namd", "raw")
        assert slowdown >= 0.9  # insensitive victim: near 1.0

    def test_penalty_is_slowdown_minus_one(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path)
        assert campaign.penalty("444.namd", "raw") == pytest.approx(
            campaign.slowdown("444.namd", "raw") - 1.0
        )


class TestRunSummary:
    def test_json_round_trip(self):
        import dataclasses
        import json

        summary = RunSummary(
            bench="x",
            config="solo",
            completion_periods=10,
            total_periods=10,
            ls_total_llc_misses=100,
            utilization_gained=0.5,
            miss_series=[1, 2],
            instruction_series=[3.0, 4.0],
        )
        data = json.loads(json.dumps(dataclasses.asdict(summary)))
        assert RunSummary(**data) == summary
