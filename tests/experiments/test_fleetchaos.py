"""The chaos frontier: structure, acceptance band, determinism."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ExperimentError
from repro.experiments.fleetchaos import (
    SLO_FLOOR,
    SLO_FLOOR_INTENSITY,
    chaos_frontier,
    episode_results,
)
from repro.fleet import FleetSpec, NodeRunProfile


@dataclasses.dataclass
class _StubSummary:
    completion_periods: int
    utilization_gained: float = 0.0
    telemetry: dict | None = None


class _StubSource:
    def solo(self, bench):
        return _StubSummary(completion_periods=100)

    def colocated(self, bench, config):
        return _StubSummary(
            completion_periods=125,
            utilization_gained=0.6,
            telemetry={"derived": {"detector_trigger_rate": 0.4}},
        )


SPEC = FleetSpec(
    nodes=3,
    ticks=24,
    ls_jobs=2,
    batch_jobs=6,
    ls_service=8.0,
    batch_service=6.0,
)

PROFILES = {
    "429.mcf": NodeRunProfile(
        bench="429.mcf",
        ls_progress=0.8,
        batch_progress=0.6,
        trigger_rate=0.4,
    )
}


class TestChaosFrontier:
    def test_rejects_empty_intensities(self):
        with pytest.raises(ExperimentError, match="intensity"):
            chaos_frontier(_StubSource(), spec=SPEC, intensities=())

    def test_rejects_bad_repeats(self):
        with pytest.raises(ExperimentError, match="repeats"):
            chaos_frontier(_StubSource(), spec=SPEC, repeats=0)

    def test_rows_columns_and_notes(self):
        table = chaos_frontier(
            _StubSource(),
            spec=SPEC,
            intensities=(0.0, 0.2),
            repeats=2,
        )
        assert table.row_names == ["i=0", "i=0.2"]
        for column in (
            "slo", "batch_tput", "rescheduled", "migrations",
            "lost", "dead", "quarantined",
        ):
            assert len(table.columns[column]) == 2
        assert any("deterministic" in note for note in table.notes)
        assert any("acceptance band" in note for note in table.notes)

    def test_clean_row_is_lossless_and_on_slo(self):
        table = chaos_frontier(
            _StubSource(), spec=SPEC, intensities=(0.0,), repeats=1
        )
        assert table.columns["slo"][0] == 1.0
        assert table.columns["lost"][0] == 0.0
        assert table.columns["dead"][0] == 0.0

    def test_deterministic_rendering(self):
        first = chaos_frontier(
            _StubSource(),
            spec=SPEC,
            intensities=(0.0, 0.4),
            repeats=2,
        )
        second = chaos_frontier(
            _StubSource(),
            spec=SPEC,
            intensities=(0.0, 0.4),
            repeats=2,
        )
        assert first.render() == second.render()


class TestAcceptanceBand:
    def test_zero_loss_and_slo_floor_inside_band(self):
        """At intensity <= 0.2 the fleet degrades gracefully.

        The stated acceptance: journal-backed rescheduling loses zero
        jobs, and LS SLO attainment stays at or above the floor —
        checked on the *default* spec (the acceptance band is a claim
        about the shipped defaults, whose horizon leaves failover
        headroom) across several fault seeds so a lucky crash schedule
        cannot carry the claim.
        """
        for seed in range(4):
            results = episode_results(
                PROFILES,
                FleetSpec(),
                intensity=SLO_FLOOR_INTENSITY,
                fault_seed=seed,
                repeats=2,
            )
            for result in results:
                assert result.jobs_lost == 0
                assert result.slo_attainment >= SLO_FLOOR

    def test_deep_chaos_still_loses_nothing(self):
        results = episode_results(
            PROFILES, SPEC, intensity=1.0, fault_seed=0, repeats=3
        )
        assert all(r.jobs_lost == 0 for r in results)
