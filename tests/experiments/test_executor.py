"""Parallel run executor: parity, error surfacing, jobs resolution."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, ExperimentError
from repro.experiments.campaign import Campaign, CampaignSettings
from repro.experiments.executor import fan_out, resolve_jobs, run_many

#: Short runs keep the fan-out suite fast while still spanning several
#: probe periods.
FAST = CampaignSettings(length=0.02)

PAIRS = [
    (bench, config)
    for bench in ("429.mcf", "470.lbm", "444.namd")
    for config in ("solo", "raw", "rule")
]


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_defaults_to_schedulable_cpus(self, monkeypatch):
        # Inside a container or taskset mask the schedulable-CPU count
        # is the real parallelism; os.cpu_count() overstates it.
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 2, 5},
            raising=False,
        )
        assert resolve_jobs() == 3

    def test_env_beats_affinity(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_JOBS", "2")
        monkeypatch.setattr(
            os, "sched_getaffinity", lambda pid: {0, 1, 2, 3},
            raising=False,
        )
        assert resolve_jobs() == 2

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        # Platforms without sched_getaffinity (macOS) fall back to the
        # total CPU count.
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError, match="REPRO_JOBS"):
            resolve_jobs()

    @pytest.mark.parametrize("jobs", [0, -3])
    def test_non_positive_rejected(self, jobs):
        with pytest.raises(ConfigError, match="jobs"):
            resolve_jobs(jobs)

    @pytest.mark.parametrize("jobs", [2.5, "4", True])
    def test_non_integer_rejected(self, jobs):
        with pytest.raises(ConfigError, match="integer"):
            resolve_jobs(jobs)

    def test_error_names_the_cli_source(self):
        with pytest.raises(ConfigError, match="--jobs"):
            resolve_jobs(0, source="--jobs")

    def test_non_positive_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ConfigError, match="REPRO_JOBS"):
            resolve_jobs()


def _failing_worker(task):
    if task % 2:
        raise ValueError(f"boom on {task}")
    return task * 10


class TestFanOut:
    def test_serial_matches_input_order(self):
        assert fan_out(_failing_worker, [0, 2, 4], jobs=1) == [0, 20, 40]

    def test_parallel_matches_input_order(self):
        assert fan_out(_failing_worker, [0, 2, 4], jobs=3) == [0, 20, 40]

    def test_parallel_failure_names_every_failed_task(self):
        with pytest.raises(ExperimentError) as excinfo:
            fan_out(
                _failing_worker,
                [0, 1, 2, 3],
                jobs=2,
                describe=lambda t: f"task<{t}>",
            )
        message = str(excinfo.value)
        assert "2 of 4 runs failed" in message
        assert "task<1>" in message
        assert "task<3>" in message
        # Healthy siblings were not nuked by the failures.
        assert "task<0>" not in message

    def test_serial_failure_is_described(self):
        with pytest.raises(ExperimentError, match="task<1>"):
            fan_out(
                _failing_worker, [1], jobs=1, describe=lambda t: f"task<{t}>"
            )


class TestRunMany:
    def test_parallel_and_serial_summaries_identical(self):
        parallel = run_many(FAST, PAIRS, jobs=4)
        serial = run_many(FAST, PAIRS, jobs=1)
        assert parallel == serial  # wall_seconds excluded from equality
        for summary, (bench, config) in zip(parallel, PAIRS):
            assert (summary.bench, summary.config) == (bench, config)
            assert summary.wall_seconds > 0.0

    def test_failed_run_reports_bench_and_config(self):
        with pytest.raises(ExperimentError) as excinfo:
            run_many(
                FAST,
                [("429.mcf", "solo"), ("no.such.bench", "raw")],
                jobs=2,
            )
        assert "(no.such.bench, raw)" in str(excinfo.value)

    def test_unknown_config_reports_identity(self):
        with pytest.raises(ExperimentError) as excinfo:
            run_many(FAST, [("429.mcf", "warp"), ("444.namd", "solo")],
                     jobs=2)
        assert "(429.mcf, warp)" in str(excinfo.value)


class TestCampaignPrefetch:
    def test_prefetch_then_lookup(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path, jobs=2)
        produced = campaign.prefetch(["429.mcf"], ["solo", "raw"])
        assert produced == 2
        # Now pure lookups: a second prefetch simulates nothing.
        assert campaign.prefetch(["429.mcf"], ["solo", "raw"]) == 0
        assert campaign.solo("429.mcf").bench == "429.mcf"
        assert campaign.total_wall_seconds() > 0.0

    def test_parallel_campaign_matches_serial(self, tmp_path):
        parallel = Campaign(FAST, cache_dir=tmp_path / "p", jobs=4)
        serial = Campaign(FAST, cache_dir=tmp_path / "s", jobs=1)
        benches = ["429.mcf", "470.lbm"]
        parallel.prefetch(benches, ["solo", "shutter"])
        serial.prefetch(benches, ["solo", "shutter"])
        for bench in benches:
            assert parallel.solo(bench) == serial.solo(bench)
            assert parallel.colocated(bench, "shutter") == serial.colocated(
                bench, "shutter"
            )

    def test_disk_cache_round_trips_wall_seconds(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path, jobs=1)
        produced = campaign.solo("444.namd")
        fresh = Campaign(FAST, cache_dir=tmp_path, jobs=1)
        loaded = fresh.solo("444.namd")
        assert loaded == produced
        assert loaded.wall_seconds == produced.wall_seconds
