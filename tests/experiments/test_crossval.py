"""Analytic-vs-simulated cross-validation driver."""

from __future__ import annotations

import pytest

from repro.experiments.crossval import analytic_figure1, rank_correlation


class TestRankCorrelation:
    def test_identity(self):
        assert rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(
            1.0
        )

    def test_inverse(self):
        assert rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(
            -1.0
        )

    def test_constant_series(self):
        # Degenerate variance: defined as 0.
        assert rank_correlation([1, 1, 1], [1, 2, 3]) == pytest.approx(
            0.0, abs=1.0
        )


class TestAnalyticFigure1:
    def test_table_from_fake_campaign(self):
        from tests.experiments.test_figures import FakeCampaign

        table = analytic_figure1(FakeCampaign())
        assert len(table.row_names) == 21
        predicted = table.column("predicted")
        assert all(p >= 1.0 for p in predicted)
        # The analytic model must separate the suite: lbm-class
        # victims predicted well above the insensitive ones.
        by_name = dict(zip(table.row_names, predicted))
        assert by_name["429.mcf"] > by_name["444.namd"] + 0.1
        assert by_name["470.lbm"] > by_name["453.povray"] + 0.1
