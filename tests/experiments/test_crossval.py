"""Analytic-vs-simulated cross-validation driver."""

from __future__ import annotations

import pytest

from repro.experiments.campaign import CampaignSettings
from repro.experiments.crossval import (
    analytic_figure1,
    backend_crossval,
    rank_correlation,
)


class TestRankCorrelation:
    def test_identity(self):
        assert rank_correlation([1, 2, 3], [10, 20, 30]) == pytest.approx(
            1.0
        )

    def test_inverse(self):
        assert rank_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(
            -1.0
        )

    def test_constant_series(self):
        # Degenerate variance: defined as 0.
        assert rank_correlation([1, 1, 1], [1, 2, 3]) == pytest.approx(
            0.0, abs=1.0
        )


class TestAnalyticFigure1:
    def test_table_from_fake_campaign(self):
        from tests.experiments.test_figures import FakeCampaign

        table = analytic_figure1(FakeCampaign())
        assert len(table.row_names) == 21
        predicted = table.column("predicted")
        assert all(p >= 1.0 for p in predicted)
        # The analytic model must separate the suite: lbm-class
        # victims predicted well above the insensitive ones.
        by_name = dict(zip(table.row_names, predicted))
        assert by_name["429.mcf"] > by_name["444.namd"] + 0.1
        assert by_name["470.lbm"] > by_name["453.povray"] + 0.1


class TestBackendCrossval:
    def test_end_to_end_at_tiny_length(self):
        victims = ("429.mcf", "444.namd")
        table = backend_crossval(
            CampaignSettings(length=0.02), victims=victims
        )
        assert table.row_names == list(victims)
        sim = table.column("sim_slowdown")
        stat = table.column("stat_slowdown")
        # Both engines see contention: co-location never speeds the
        # victim up, on either backend.
        assert all(s >= 1.0 for s in sim)
        assert all(s >= 1.0 for s in stat)
        # The error column is the relative gap between the engines.
        error = table.column("error")
        assert error == pytest.approx(
            [t / s - 1.0 for s, t in zip(sim, stat)]
        )
        assert any("spearman" in note for note in table.notes)

    def test_engines_rank_sensitivity_the_same_way(self):
        """mcf (cache-hungry) must out-slow namd on both engines."""
        table = backend_crossval(
            CampaignSettings(length=0.02),
            victims=("429.mcf", "444.namd"),
        )
        sim = table.column("sim_slowdown")
        stat = table.column("stat_slowdown")
        assert sim[0] > sim[1]
        assert stat[0] > stat[1]

    def test_parallel_matches_serial(self):
        settings = CampaignSettings(length=0.02)
        victims = ("429.mcf",)
        parallel = backend_crossval(settings, victims=victims, jobs=2)
        serial = backend_crossval(settings, victims=victims, jobs=1)
        assert parallel.column("sim_slowdown") == serial.column(
            "sim_slowdown"
        )
        assert parallel.column("stat_slowdown") == serial.column(
            "stat_slowdown"
        )
