"""Alternative-contender experiment (§6.1)."""

from __future__ import annotations

import pytest

from repro.experiments.campaign import CampaignSettings
from repro.experiments.contenders import (
    CONTENDERS,
    VICTIM_PANEL,
    contender_study,
    heavy_contender_agreement,
)
from repro.experiments.reporting import FigureTable


class TestStudyStructure:
    def test_panel_definitions(self):
        assert "470.lbm" in CONTENDERS
        assert "462.libquantum" in CONTENDERS
        assert "433.milc" in CONTENDERS
        assert "444.namd" in CONTENDERS  # the light control
        assert "429.mcf" in VICTIM_PANEL

    def test_small_real_study(self):
        table = contender_study(
            CampaignSettings(length=0.02),
            contenders=("470.lbm", "444.namd"),
            victims=("429.mcf", "444.namd"),
        )
        # Self-pairs skipped: (mcf, lbm), (namd, lbm), (mcf, namd).
        assert len(table.row_names) == 3
        assert "429.mcf vs 470.lbm" in table.row_names
        assert "444.namd vs 444.namd" not in table.row_names
        for column in ("raw_penalty", "caer_penalty", "caer_util"):
            assert len(table.column(column)) == 3

    def test_heavy_contender_hurts_more_than_light(self):
        table = contender_study(
            CampaignSettings(length=0.03),
            contenders=("470.lbm", "444.namd"),
            victims=("429.mcf",),
        )
        by_row = dict(
            zip(table.row_names, table.column("raw_penalty"))
        )
        assert (
            by_row["429.mcf vs 470.lbm"]
            > by_row["429.mcf vs 444.namd"] + 0.1
        )


class TestAgreementMetric:
    def make_table(self, penalties: dict[str, float]) -> FigureTable:
        table = FigureTable(
            title="t", row_names=list(penalties)
        )
        table.add_column("raw_penalty", list(penalties.values()))
        return table

    def test_identical_contenders_agree_perfectly(self):
        table = self.make_table(
            {
                "429.mcf vs 470.lbm": 0.4,
                "429.mcf vs 462.libquantum": 0.4,
                "429.mcf vs 433.milc": 0.4,
            }
        )
        assert heavy_contender_agreement(table) == pytest.approx(0.0)

    def test_spread_measured(self):
        table = self.make_table(
            {
                "429.mcf vs 470.lbm": 0.5,
                "429.mcf vs 462.libquantum": 0.3,
                "429.mcf vs 433.milc": 0.4,
            }
        )
        assert heavy_contender_agreement(table) == pytest.approx(0.2)

    def test_light_control_excluded(self):
        table = self.make_table(
            {
                "429.mcf vs 470.lbm": 0.4,
                "429.mcf vs 444.namd": 0.0,  # must not count
            }
        )
        assert heavy_contender_agreement(table) == pytest.approx(0.0)
