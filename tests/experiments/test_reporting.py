"""Report rendering: tables, bars, series, exports."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.reporting import FigureTable, render_series


def make_table() -> FigureTable:
    table = FigureTable(title="T", row_names=["a", "b", "c"])
    table.add_column("x", [1.0, 2.0, 3.0])
    table.add_column("y", [0.5, 0.5, 0.5])
    return table


class TestFigureTable:
    def test_mean(self):
        assert make_table().mean("x") == pytest.approx(2.0)

    def test_column_length_validated(self):
        table = FigureTable(title="T", row_names=["a", "b"])
        with pytest.raises(ExperimentError):
            table.add_column("x", [1.0])

    def test_unknown_column(self):
        with pytest.raises(ExperimentError, match="no column"):
            make_table().column("z")

    def test_render_contains_rows_and_mean(self):
        text = make_table().render()
        assert "== T ==" in text
        assert "a" in text
        assert "mean" in text
        assert "2.000" in text

    def test_render_notes(self):
        table = make_table()
        table.notes.append("paper: something")
        assert "note: paper: something" in table.render()

    def test_render_bars(self):
        text = make_table().render_bars("x")
        assert "#" in text
        assert "a" in text

    def test_render_bars_negative_baseline(self):
        table = FigureTable(title="T", row_names=["a", "b"])
        table.add_column("a_col", [-0.5, 0.5])
        text = table.render_bars("a_col", baseline=0.0)
        assert "-" in text

    def test_csv_round_trip(self):
        text = make_table().to_csv()
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["benchmark", "x", "y"]
        assert rows[1][0] == "a"
        assert float(rows[1][1]) == 1.0

    def test_json(self):
        data = json.loads(make_table().to_json())
        assert data["title"] == "T"
        assert data["columns"]["x"] == [1.0, 2.0, 3.0]


class TestSeries:
    def test_render_series(self):
        text = render_series("s", [1.0, 5.0, 2.0, 8.0] * 30, height=4)
        lines = text.splitlines()
        assert lines[0].startswith("== s")
        assert len(lines) == 6  # title + 4 rows + axis
        assert "#" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ExperimentError):
            render_series("s", [])

    def test_peak_reported(self):
        text = render_series("s", [10.0, 20.0])
        assert "peak 20" in text
