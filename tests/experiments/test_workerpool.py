"""Persistent warm pool: ring protocol, cold-path parity, chaos.

The warm pool is a pure transport optimisation: byte-for-byte the same
:class:`~repro.runspec.RunOutcome` objects, the same failure identities,
and the same journal/quarantine behaviour as the cold per-batch
``ProcessPoolExecutor`` path it replaces.  These tests pin that parity
and the pool's own survival machinery (digest interning, per-task env
forwarding, timeout kills, dead-worker replacement).
"""

from __future__ import annotations

import pytest

from repro.experiments.campaign import CampaignSettings
from repro.experiments.executor import run_specs
from repro.experiments.resilience import RetryPolicy, run_specs_resilient
from repro.experiments.workerpool import (
    _HEADER,
    SpecWorkerPool,
    WorkerFailure,
    _ring_read,
    _ring_write,
    get_pool,
    shutdown_pool,
    warm_pool_enabled,
)
from repro.faults.chaos import _DIE_EXIT_CODE, CHAOS_ENV
from repro.obs import MetricsRegistry

FAST = CampaignSettings(length=0.02, backend="statistical")

#: An eager policy so retry tests stay fast.
EAGER = RetryPolicy(max_attempts=2, backoff=(0.0,))


@pytest.fixture(autouse=True)
def _fresh_pool(monkeypatch):
    """Each test starts unarmed and without a lingering warm singleton."""
    monkeypatch.delenv(CHAOS_ENV, raising=False)
    shutdown_pool()
    yield
    shutdown_pool()


class TestEnableGate:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_WARM_POOL", raising=False)
        assert warm_pool_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "OFF", "no"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_WARM_POOL", value)
        assert not warm_pool_enabled()


class TestRing:
    """The SPSC shared-memory ring transporting pickled outcomes."""

    @staticmethod
    def make_buf(data_size: int) -> bytearray:
        return bytearray(_HEADER + data_size)

    def test_roundtrip(self):
        buf = self.make_buf(32)
        assert _ring_write(buf, b"hello")
        assert _ring_read(buf, 5) == b"hello"

    def test_fifo_across_messages(self):
        buf = self.make_buf(32)
        assert _ring_write(buf, b"one")
        assert _ring_write(buf, b"two!")
        assert _ring_read(buf, 3) == b"one"
        assert _ring_read(buf, 4) == b"two!"

    def test_wraparound_split_copy(self):
        buf = self.make_buf(8)
        assert _ring_write(buf, b"abcdef")
        assert _ring_read(buf, 6) == b"abcdef"
        # The next message spans the physical end of the data area.
        assert _ring_write(buf, b"ghijkl")
        assert _ring_read(buf, 6) == b"ghijkl"

    def test_overflow_refused_until_drained(self):
        buf = self.make_buf(8)
        assert _ring_write(buf, b"abcdef")
        # Only 2 free bytes: the write must refuse (the pool then
        # falls back to shipping the payload over the queue).
        assert not _ring_write(buf, b"wxyz")
        assert _ring_read(buf, 6) == b"abcdef"
        assert _ring_write(buf, b"wxyz")
        assert _ring_read(buf, 4) == b"wxyz"


class TestWarmColdParity:
    """run_specs must not care which transport executed the batch."""

    @staticmethod
    def specs():
        return [
            FAST.run_spec(bench, config)
            for bench in ("444.namd", "429.mcf")
            for config in ("solo", "rule")
        ]

    def test_outcomes_identical_warm_cold_serial(self, monkeypatch):
        specs = self.specs()
        monkeypatch.setenv("REPRO_WARM_POOL", "0")
        cold = run_specs(specs, jobs=2)
        monkeypatch.setenv("REPRO_WARM_POOL", "1")
        warm = run_specs(specs, jobs=2)
        serial = run_specs(specs, jobs=1)
        assert warm == cold == serial
        # Digest equality is byte-level: the canonical JSON of every
        # outcome survived the ring transport unchanged.
        assert [o.digest for o in warm] == [o.digest for o in serial]

    def test_worker_reuse_gauge_counts_digest_dispatches(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WARM_POOL", "1")
        spec = FAST.run_spec("444.namd", "solo")
        m1, m2 = MetricsRegistry(), MetricsRegistry()
        first = run_specs([spec] * 4, jobs=2, metrics=m1)
        second = run_specs([spec] * 4, jobs=2, metrics=m2)
        assert first == second
        # Batch 1: both workers start idle so each executes at least
        # one task, paying exactly one full-spec dispatch apiece; the
        # other two dispatches are digest-only.  Batch 2: everything
        # is interned everywhere.
        assert m1.snapshot()["executor.worker_reuse"]["value"] == 2.0
        assert m2.snapshot()["executor.worker_reuse"]["value"] == 4.0

    def test_interning_single_worker(self):
        pool = SpecWorkerPool(jobs=1)
        try:
            spec = FAST.run_spec("444.namd", "solo")
            r1 = pool.map_specs([(0, spec, None)])
            r2 = pool.map_specs([(1, spec, None)])
            assert pool.reuse_hits == 1
            assert pool.last_batch_reuse == 1
            assert r1[0] == r2[1]
            assert r1[0].digest == r2[1].digest
        finally:
            pool.close()

    def test_metrics_instruments_match_cold_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_WARM_POOL", "1")
        metrics = MetricsRegistry()
        run_specs(self.specs(), jobs=2, metrics=metrics)
        snap = metrics.snapshot()
        assert snap["executor.tasks"]["value"] == 4.0
        assert snap["executor.failures"]["value"] == 0.0
        assert snap["executor.job_seconds"]["count"] == 4
        assert snap["executor.batch_seconds"]["value"] > 0.0


class TestPoolFailureHandling:
    """Kills, deaths, and exceptions stay contained to one task."""

    def test_exception_shipped_with_identity(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:5")
        pool = SpecWorkerPool(jobs=1)
        try:
            spec = FAST.run_spec("444.namd", "solo")
            failure = pool.map_specs([(0, spec, 1)])[0]
            assert isinstance(failure, WorkerFailure)
            assert "ChaosError" in failure.describe()
            assert "injected crash on attempt 1" in failure.describe()
        finally:
            pool.close()

    def test_timeout_kills_and_respawns(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "hang:1")
        pool = SpecWorkerPool(jobs=1)
        try:
            spec = FAST.run_spec("444.namd", "solo")
            failure = pool.map_specs([(0, spec, 1)], timeout=0.5)[0]
            assert isinstance(failure, WorkerFailure)
            assert failure.timed_out
            assert pool.respawns == 1
            # The replacement worker is functional (chaos hits only
            # attempt 1, and attempt 2 here is a fresh dispatch).
            monkeypatch.delenv(CHAOS_ENV)
            outcome = pool.map_specs([(1, spec, 2)])[1]
            assert not isinstance(outcome, WorkerFailure)
        finally:
            pool.close()

    def test_dead_worker_detected_and_replaced(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "die:1")
        pool = SpecWorkerPool(jobs=1)
        try:
            spec = FAST.run_spec("444.namd", "solo")
            failure = pool.map_specs([(0, spec, 1)])[0]
            assert isinstance(failure, WorkerFailure)
            assert failure.died
            assert f"exit code {_DIE_EXIT_CODE}" in failure.describe()
            assert pool.respawns == 1
            outcome = pool.map_specs([(1, spec, 2)])[1]
            assert not isinstance(outcome, WorkerFailure)
        finally:
            pool.close()

    def test_env_forwarded_per_task(self, monkeypatch):
        # Chaos armed AFTER the workers forked must still reach them:
        # the REPRO_* namespace travels with every task.
        pool = SpecWorkerPool(jobs=1)
        try:
            spec = FAST.run_spec("444.namd", "solo")
            assert not isinstance(
                pool.map_specs([(0, spec, 1)])[0], WorkerFailure
            )
            monkeypatch.setenv(CHAOS_ENV, "crash:5")
            assert isinstance(
                pool.map_specs([(1, spec, 1)])[1], WorkerFailure
            )
            monkeypatch.delenv(CHAOS_ENV)
            assert not isinstance(
                pool.map_specs([(2, spec, 1)])[2], WorkerFailure
            )
        finally:
            pool.close()

    def test_trace_dir_propagates_to_warm_workers(
        self, monkeypatch, tmp_path
    ):
        """Regression: ``REPRO_TRACE_DIR`` set after the pool forked
        must still produce worker-side trace files, byte-identical to
        a serially traced run of the same spec."""
        from repro.experiments.executor import (
            TRACE_DIR_ENV,
            _execute_spec,
        )

        spec = FAST.run_spec("444.namd", "rule")
        pool = SpecWorkerPool(jobs=1)
        try:
            # Warm the worker with an untraced dispatch first, so the
            # trace env var demonstrably postdates the fork.
            assert not isinstance(
                pool.map_specs([(0, spec, None)])[0], WorkerFailure
            )
            warm_dir = tmp_path / "warm"
            monkeypatch.setenv(TRACE_DIR_ENV, str(warm_dir))
            outcome = pool.map_specs([(1, spec, None)])[1]
            assert not isinstance(outcome, WorkerFailure)
        finally:
            pool.close()
        traces = sorted(warm_dir.glob("*.jsonl"))
        assert len(traces) == 1

        serial_dir = tmp_path / "serial"
        monkeypatch.setenv(TRACE_DIR_ENV, str(serial_dir))
        serial_outcome = _execute_spec(spec)
        assert serial_outcome == outcome
        serial_traces = sorted(serial_dir.glob("*.jsonl"))
        assert len(serial_traces) == 1
        assert traces[0].name == serial_traces[0].name
        assert traces[0].read_bytes() == serial_traces[0].read_bytes()

    def test_workers_drop_beacons_when_directed(
        self, monkeypatch, tmp_path
    ):
        """``REPRO_BEACON_DIR`` rides the per-task env like any other
        ``REPRO_*`` knob; workers report cumulative task counters."""
        from repro.obs.heartbeat import BEACON_DIR_ENV, read_beacons

        pool = SpecWorkerPool(jobs=1)
        try:
            spec = FAST.run_spec("444.namd", "rule")
            monkeypatch.setenv(BEACON_DIR_ENV, str(tmp_path))
            pool.map_specs([(0, spec, None)])
            pool.map_specs([(1, spec, None)])
        finally:
            pool.close()
        beacons = read_beacons(tmp_path)
        assert "worker-0" in beacons
        payload = beacons["worker-0"]
        assert payload["state"] == "idle"
        assert payload["tasks_completed"] == 2
        assert payload["tasks_failed"] == 0
        assert payload["reused_dispatches"] == 1
        # A rule-governed run issues verdicts; they surface in the
        # beacon's cumulative detector counters.
        assert payload["detector_verdicts"] > 0

    def test_close_is_idempotent(self):
        pool = SpecWorkerPool(jobs=2)
        pool.close()
        pool.close()

    def test_get_pool_resizes_by_recreating(self):
        first = get_pool(2)
        assert get_pool(2) is first
        second = get_pool(3)
        assert second is not first
        assert second.jobs == 3


class TestResilientParity:
    """run_specs_resilient behaves identically warm and cold."""

    @staticmethod
    def specs():
        return [
            FAST.run_spec("444.namd", "solo"),
            FAST.run_spec("429.mcf", "solo"),
        ]

    def test_outcomes_and_quarantine_identical(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:99:444.namd")
        specs = self.specs()
        monkeypatch.setenv("REPRO_WARM_POOL", "0")
        cold_out, cold_q = run_specs_resilient(
            specs, jobs=2, policy=EAGER
        )
        monkeypatch.setenv("REPRO_WARM_POOL", "1")
        warm_out, warm_q = run_specs_resilient(
            specs, jobs=2, policy=EAGER
        )
        assert warm_out == cold_out
        assert {k: v.digest for k, v in warm_out.items()} == {
            k: v.digest for k, v in cold_out.items()
        }
        assert set(warm_q) == set(cold_q)
        record_w = warm_q[specs[0].digest]
        record_c = cold_q[specs[0].digest]
        assert record_w.attempts == record_c.attempts
        assert record_w.error == record_c.error

    def test_die_once_retries_on_respawned_workers(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "die:1")
        monkeypatch.setenv("REPRO_WARM_POOL", "1")
        metrics = MetricsRegistry()
        specs = self.specs()
        outcomes, quarantined = run_specs_resilient(
            specs, jobs=2, metrics=metrics, policy=EAGER
        )
        assert not quarantined
        assert set(outcomes) == {spec.digest for spec in specs}
        # Both first attempts vanished mid-run; both workers were
        # replaced and the retries landed on the replacements.
        assert get_pool(2).respawns == 2
        snap = metrics.snapshot()
        assert snap["executor.retries"]["value"] == 2.0

    def test_die_persistent_quarantines_with_exit_code(
        self, monkeypatch
    ):
        # A single-attempt policy keeps the round parallel (a one-spec
        # retry round would run serially, where die degrades to a
        # crash), so the quarantine records the worker death itself.
        monkeypatch.setenv(CHAOS_ENV, "die:99:444.namd")
        monkeypatch.setenv("REPRO_WARM_POOL", "1")
        specs = self.specs()
        policy = RetryPolicy(max_attempts=1, backoff=(0.0,))
        outcomes, quarantined = run_specs_resilient(
            specs, jobs=2, policy=policy
        )
        assert specs[1].digest in outcomes
        record = quarantined[specs[0].digest]
        assert record.attempts == 1
        assert f"exit code {_DIE_EXIT_CODE}" in record.error

    def test_die_in_serial_round_degrades_to_crash(self, monkeypatch):
        # The main process has no supervisor: die must not take the
        # campaign down with it, just fail the attempt.
        monkeypatch.setenv(CHAOS_ENV, "die:99")
        spec = FAST.run_spec("444.namd", "solo")
        outcomes, quarantined = run_specs_resilient(
            [spec], jobs=1, policy=EAGER
        )
        assert not outcomes
        record = quarantined[spec.digest]
        assert "degraded to crash" in record.error

    def test_repeated_chaos_rounds_keep_respawning(self, monkeypatch):
        """The pool survives round after round of worker deaths.

        Each round's first attempts kill their workers; the pool
        replaces them and the retries land cleanly — with no respawn
        cap creeping in and no quarantine leaking across rounds.
        """
        monkeypatch.setenv(CHAOS_ENV, "die:1")
        monkeypatch.setenv("REPRO_WARM_POOL", "1")
        specs = self.specs()
        for round_number in range(1, 4):
            outcomes, quarantined = run_specs_resilient(
                specs, jobs=2, policy=EAGER
            )
            assert not quarantined, f"round {round_number} quarantined"
            assert set(outcomes) == {spec.digest for spec in specs}
            # Two dead workers replaced per round, cumulatively.
            assert get_pool(2).respawns == 2 * round_number
