"""Command-line interface plumbing (fast paths only)."""

from __future__ import annotations

import pytest

from repro import cli


class TestParser:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figures: 1 2 3 6 7 8 9 10" in out
        assert "impact-factor" in out

    def test_fig_requires_valid_number(self):
        with pytest.raises(SystemExit):
            cli.main(["fig", "4"])

    def test_ablation_requires_valid_name(self):
        with pytest.raises(SystemExit):
            cli.main(["ablation", "nonesuch"])

    def test_length_flag_parsed(self):
        parser = cli._build_parser()
        args = parser.parse_args(["--length", "0.3", "list"])
        assert args.length == 0.3
        settings = cli._settings(args)
        assert settings.length == 0.3

    def test_seed_flag_parsed(self):
        parser = cli._build_parser()
        args = parser.parse_args(["--seed", "7", "list"])
        assert cli._settings(args).seed == 7

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LENGTH", "0.15")
        parser = cli._build_parser()
        args = parser.parse_args(["list"])
        assert cli._settings(args).length == 0.15
