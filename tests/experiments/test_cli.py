"""Command-line interface plumbing (fast paths only)."""

from __future__ import annotations

import json
import re

import pytest

from repro import cli
from repro.obs import read_jsonl
from repro.runspec import RunSpec


class TestParser:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figures: 1 2 3 6 7 8 9 10" in out
        assert "impact-factor" in out

    def test_fig_requires_valid_number(self):
        with pytest.raises(SystemExit):
            cli.main(["fig", "4"])

    def test_ablation_requires_valid_name(self):
        with pytest.raises(SystemExit):
            cli.main(["ablation", "nonesuch"])

    def test_length_flag_parsed(self):
        parser = cli._build_parser()
        args = parser.parse_args(["--length", "0.3", "list"])
        assert args.length == 0.3
        settings = cli._settings(args)
        assert settings.length == 0.3

    def test_seed_flag_parsed(self):
        parser = cli._build_parser()
        args = parser.parse_args(["--seed", "7", "list"])
        assert cli._settings(args).seed == 7

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LENGTH", "0.15")
        parser = cli._build_parser()
        args = parser.parse_args(["list"])
        assert cli._settings(args).length == 0.15

    def test_list_mentions_trace_and_stats(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "stats" in out

    def test_list_mentions_spec_and_backends(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "spec" in out
        assert "backends: sim statistical" in out

    def test_backend_flag_parsed(self):
        parser = cli._build_parser()
        args = parser.parse_args(["--backend", "statistical", "list"])
        assert cli._settings(args).backend == "statistical"

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            cli.main(["--backend", "quantum", "list"])

    def test_bad_jobs_is_one_line_error(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["--jobs", "0", "list"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "--jobs" in captured.err


class TestSpecCommand:
    def test_prints_canonical_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["--length", "0.02", "spec", "429.mcf", "rule"])
        out = capsys.readouterr().out
        assert code == 0
        spec = RunSpec.from_json(out)
        assert spec.victim == "429.mcf"
        assert spec.config_tag == "rule"
        assert spec.length == 0.02
        # Canonical: printing the parsed spec reproduces the text.
        assert out.strip() == spec.to_json()

    def test_backend_flag_reaches_the_spec(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli.main([
            "--backend", "statistical", "spec", "429.mcf", "raw",
        ]) == 0
        spec = RunSpec.from_json(capsys.readouterr().out)
        assert spec.backend == "statistical"

    def test_file_round_trips(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli.main(["--length", "0.02", "spec", "429.mcf"]) == 0
        text = capsys.readouterr().out
        path = tmp_path / "spec.json"
        path.write_text(text)
        assert cli.main(["spec", "--file", str(path)]) == 0
        assert capsys.readouterr().out == text

    def test_execute_reports_outcome(self, capsys, tmp_path,
                                     monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main([
            "--length", "0.02", "spec", "429.mcf", "solo", "--execute",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend: sim" in out
        assert "run: (429.mcf, solo)" in out
        assert re.search(r"completion_periods: \d+", out)

    def test_execute_on_statistical_backend(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main([
            "--length", "0.02", "--backend", "statistical",
            "spec", "429.mcf", "rule", "--execute",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend: statistical" in out

    def test_short_bench_name_canonicalised(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli.main(["spec", "mcf"]) == 0
        spec = RunSpec.from_json(capsys.readouterr().out)
        assert spec.victim == "429.mcf"

    def test_unknown_bench_is_one_line_error(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["spec", "nonesuch", "rule"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "nonesuch" in captured.err

    def test_missing_bench_is_one_line_error(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["spec"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "--file" in captured.err

    def test_unreadable_file_is_one_line_error(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["spec", "--file", str(tmp_path / "absent.json")])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_invalid_spec_json_is_one_line_error(self, capsys, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999}))
        code = cli.main(["spec", "--file", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "version" in captured.err


class TestBackendFlag:
    def test_headline_runs_on_statistical_backend(self, capsys, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main([
            "--length", "0.02", "--backend", "statistical", "headline",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "penalty" in out.lower()


class TestErrorRouting:
    def test_unknown_benchmark_is_one_line_error(self, capsys, tmp_path):
        code = cli.main([
            "trace", "nonesuch", "shutter",
            "--output", str(tmp_path / "t.jsonl"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "nonesuch" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_config_is_one_line_error(self, capsys, tmp_path):
        code = cli.main([
            "trace", "mcf", "bogus",
            "--output", str(tmp_path / "t.jsonl"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "bogus" in captured.err


class TestTraceCommand:
    def test_trace_writes_jsonl_with_one_detection_per_period(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "trace.jsonl"
        code = cli.main([
            "--length", "0.02", "trace", "mcf", "shutter",
            "--output", str(path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert str(path) in out
        records = read_jsonl(path)
        detections = [r for r in records if r["kind"] == "detection"]
        periods = int(re.search(r"over (\d+) periods", out).group(1))
        assert len(detections) == periods > 0
        # determinism contract: no wall-clock in any event payload
        assert all("seconds" not in key and "time" not in key
                   for record in records for key in record)

    def test_stats_smoke_on_empty_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no cached runs" in out
