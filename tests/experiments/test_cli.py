"""Command-line interface plumbing (fast paths only)."""

from __future__ import annotations

import json
import re

import pytest

from repro import cli
from repro.obs import read_jsonl
from repro.runspec import RunSpec


class TestParser:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figures: 1 2 3 6 7 8 9 10" in out
        assert "impact-factor" in out

    def test_fig_requires_valid_number(self):
        with pytest.raises(SystemExit):
            cli.main(["fig", "4"])

    def test_ablation_requires_valid_name(self):
        with pytest.raises(SystemExit):
            cli.main(["ablation", "nonesuch"])

    def test_length_flag_parsed(self):
        parser = cli._build_parser()
        args = parser.parse_args(["--length", "0.3", "list"])
        assert args.length == 0.3
        settings = cli._settings(args)
        assert settings.length == 0.3

    def test_seed_flag_parsed(self):
        parser = cli._build_parser()
        args = parser.parse_args(["--seed", "7", "list"])
        assert cli._settings(args).seed == 7

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_LENGTH", "0.15")
        parser = cli._build_parser()
        args = parser.parse_args(["list"])
        assert cli._settings(args).length == 0.15

    def test_list_mentions_trace_and_stats(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "trace" in out and "stats" in out

    def test_list_mentions_spec_and_backends(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "spec" in out
        assert "backends: sim statistical" in out

    def test_backend_flag_parsed(self):
        parser = cli._build_parser()
        args = parser.parse_args(["--backend", "statistical", "list"])
        assert cli._settings(args).backend == "statistical"

    def test_unknown_backend_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            cli.main(["--backend", "quantum", "list"])

    def test_bad_jobs_is_one_line_error(self, capsys, tmp_path,
                                        monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["--jobs", "0", "list"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "--jobs" in captured.err


class TestSpecCommand:
    def test_prints_canonical_json(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["--length", "0.02", "spec", "429.mcf", "rule"])
        out = capsys.readouterr().out
        assert code == 0
        spec = RunSpec.from_json(out)
        assert spec.victim == "429.mcf"
        assert spec.config_tag == "rule"
        assert spec.length == 0.02
        # Canonical: printing the parsed spec reproduces the text.
        assert out.strip() == spec.to_json()

    def test_backend_flag_reaches_the_spec(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli.main([
            "--backend", "statistical", "spec", "429.mcf", "raw",
        ]) == 0
        spec = RunSpec.from_json(capsys.readouterr().out)
        assert spec.backend == "statistical"

    def test_file_round_trips(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli.main(["--length", "0.02", "spec", "429.mcf"]) == 0
        text = capsys.readouterr().out
        path = tmp_path / "spec.json"
        path.write_text(text)
        assert cli.main(["spec", "--file", str(path)]) == 0
        assert capsys.readouterr().out == text

    def test_execute_reports_outcome(self, capsys, tmp_path,
                                     monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main([
            "--length", "0.02", "spec", "429.mcf", "solo", "--execute",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend: sim" in out
        assert "run: (429.mcf, solo)" in out
        assert re.search(r"completion_periods: \d+", out)

    def test_execute_on_statistical_backend(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main([
            "--length", "0.02", "--backend", "statistical",
            "spec", "429.mcf", "rule", "--execute",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend: statistical" in out

    def test_short_bench_name_canonicalised(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli.main(["spec", "mcf"]) == 0
        spec = RunSpec.from_json(capsys.readouterr().out)
        assert spec.victim == "429.mcf"

    def test_unknown_bench_is_one_line_error(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["spec", "nonesuch", "rule"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "nonesuch" in captured.err

    def test_missing_bench_is_one_line_error(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["spec"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "--file" in captured.err

    def test_unreadable_file_is_one_line_error(self, capsys, tmp_path,
                                               monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["spec", "--file", str(tmp_path / "absent.json")])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err

    def test_invalid_spec_json_is_one_line_error(self, capsys, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999}))
        code = cli.main(["spec", "--file", str(path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "version" in captured.err


class TestBackendFlag:
    def test_headline_runs_on_statistical_backend(self, capsys, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main([
            "--length", "0.02", "--backend", "statistical", "headline",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "penalty" in out.lower()


class TestErrorRouting:
    def test_unknown_benchmark_is_one_line_error(self, capsys, tmp_path):
        code = cli.main([
            "trace", "nonesuch", "shutter",
            "--output", str(tmp_path / "t.jsonl"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "nonesuch" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_config_is_one_line_error(self, capsys, tmp_path):
        code = cli.main([
            "trace", "mcf", "bogus",
            "--output", str(tmp_path / "t.jsonl"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "bogus" in captured.err


class TestTraceCommand:
    def test_trace_writes_jsonl_with_one_detection_per_period(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "trace.jsonl"
        code = cli.main([
            "--length", "0.02", "trace", "mcf", "shutter",
            "--output", str(path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert str(path) in out
        records = read_jsonl(path)
        detections = [r for r in records if r["kind"] == "detection"]
        periods = int(re.search(r"over (\d+) periods", out).group(1))
        assert len(detections) == periods > 0
        # determinism contract: no wall-clock in any event payload
        assert all("seconds" not in key and "time" not in key
                   for record in records for key in record)

    def test_stats_smoke_on_empty_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["stats"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no cached runs" in out


class TestStatsFormats:
    def test_json_format_is_machine_readable(self, capsys, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["stats", "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        data = json.loads(out)
        assert data["cached"] == 0
        assert "cache_tag" in data

    def test_prometheus_format_reuses_the_renderer(self, capsys, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(["stats", "--format", "prometheus"])
        out = capsys.readouterr().out
        assert code == 0
        # Empty cache still walks _load, so the miss counter serves.
        assert "# TYPE repro_campaign_cache_misses_total counter" in out

    def test_unknown_format_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            cli.main(["stats", "--format", "yaml"])


class TestWatchCommand:
    def test_once_without_beacons_exits_1(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv(
            "REPRO_BEACON_DIR", str(tmp_path / "beacons")
        )
        code = cli.main(["watch", "--once"])
        out = capsys.readouterr().out
        assert code == 1
        assert "no beacons" in out

    def test_once_with_beacons_exits_0(self, capsys, tmp_path,
                                       monkeypatch):
        from repro.obs import write_beacon

        beacons = tmp_path / "beacons"
        monkeypatch.setenv("REPRO_BEACON_DIR", str(beacons))
        write_beacon(beacons, "campaign", {
            "state": "running", "runs_total": 10, "runs_completed": 4,
            "runs_cached": 4, "quarantined": 0, "cache_tag": "t",
        })
        write_beacon(beacons, "worker-0", {
            "state": "running", "digest": "abc123def456",
            "tasks_completed": 4, "tasks_failed": 0,
            "reused_dispatches": 1, "detector_verdicts": 7.0,
            "detector_positives": 2.0,
        })
        code = cli.main(["watch", "--once"])
        out = capsys.readouterr().out
        assert code == 0
        assert "4/10 runs" in out
        assert "worker-0" in out
        assert "running abc123def456" in out

    def test_dir_flag_overrides_env(self, capsys, tmp_path, monkeypatch):
        from repro.obs import write_beacon

        monkeypatch.setenv("REPRO_BEACON_DIR", str(tmp_path / "empty"))
        chosen = tmp_path / "chosen"
        write_beacon(chosen, "campaign", {"state": "done"})
        code = cli.main(["watch", "--once", "--dir", str(chosen)])
        assert code == 0
        assert "done" in capsys.readouterr().out

    def test_loop_exits_0_on_done_beacon(self, capsys, tmp_path,
                                         monkeypatch):
        from repro.experiments.watch import watch_loop
        from repro.obs import write_beacon

        beacons = tmp_path / "beacons"
        write_beacon(beacons, "campaign", {
            "state": "done", "runs_total": 2, "runs_completed": 2,
        })
        assert watch_loop(str(beacons), interval=0.01) == 0

    def test_loop_bounded_iterations_without_beacons(self, tmp_path,
                                                     capsys):
        from repro.experiments.watch import watch_loop

        code = watch_loop(
            str(tmp_path / "nothing"), interval=0.01, max_iterations=2
        )
        assert code == 1


class TestTimelineCommand:
    @pytest.fixture()
    def trace_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "trace.jsonl"
        assert cli.main([
            "--length", "0.02", "trace", "mcf", "shutter",
            "--output", str(path),
        ]) == 0
        return path

    def test_renders_detect_then_respond(self, capsys, trace_path):
        capsys.readouterr()
        code = cli.main(["timeline", str(trace_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert re.search(r"period \d+\n(  .+\n)+", out)
        assert "detect" in out
        # Within any period carrying both, detection precedes response.
        respond_periods = re.findall(
            r"period (\d+)\n(?:  .*\n)*?  respond", out
        )
        assert respond_periods  # shutter responds at least once
        assert "pmu" not in out  # high-volume kind is opt-in

    def test_kind_filter_and_period_range(self, capsys, trace_path):
        capsys.readouterr()
        code = cli.main([
            "timeline", str(trace_path),
            "--kind", "pmu_sample", "--start", "0", "--end", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "pmu" in out
        assert "detect" not in out
        periods = [
            int(m) for m in re.findall(r"^period (\d+)$", out, re.M)
        ]
        assert periods and all(0 <= p <= 3 for p in periods)

    def test_limit_elides_and_says_so(self, capsys, trace_path):
        capsys.readouterr()
        code = cli.main(["timeline", str(trace_path), "--limit", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert len(re.findall(r"^period \d+$", out, re.M)) == 2
        assert "more periods elided" in out

    def test_unknown_kind_is_one_line_error(self, capsys, trace_path):
        capsys.readouterr()
        code = cli.main(["timeline", str(trace_path), "--kind", "bogus"])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "bogus" in captured.err

    def test_missing_file_is_one_line_error(self, capsys, tmp_path):
        code = cli.main(["timeline", str(tmp_path / "absent.jsonl")])
        captured = capsys.readouterr()
        assert code == 1
        assert captured.err.startswith("error:")
        assert "Traceback" not in captured.err


class TestExporterWiring:
    def test_metrics_port_serves_during_command(self, capsys, tmp_path,
                                                monkeypatch):
        """REPRO_METRICS_PORT wires the endpoint around any campaign
        command: the endpoint serves while the command runs, is
        announced on stderr, and is torn down afterwards."""
        import urllib.request

        import repro.obs as obs

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setenv("REPRO_METRICS_PORT", "0")
        monkeypatch.setenv(
            "REPRO_BEACON_DIR", str(tmp_path / "beacons")
        )
        holder = {}
        original_start = obs.start_exporter

        def capturing_start(provider, port=None):
            holder["exporter"] = original_start(provider, port=port)
            return holder["exporter"]

        monkeypatch.setattr(obs, "start_exporter", capturing_start)
        original_run = cli._run_command

        def scraping_run(args, settings, campaign):
            url = holder["exporter"].url
            with urllib.request.urlopen(url, timeout=5) as response:
                holder["body"] = response.read().decode()
            return original_run(args, settings, campaign)

        monkeypatch.setattr(cli, "_run_command", scraping_run)
        assert cli.main(["stats"]) == 0
        captured = capsys.readouterr()
        assert re.search(
            r"http://127\.0\.0\.1:\d+/metrics", captured.err
        )
        # The mid-command scrape yielded well-formed exposition (the
        # campaign registry may be empty before the cache walk, but a
        # scrape must succeed and parse).
        assert "body" in holder
        for line in holder["body"].splitlines():
            assert line.startswith(("# HELP", "# TYPE", "repro_"))
        # After main() returns the socket is released.
        with pytest.raises(Exception):
            urllib.request.urlopen(holder["exporter"].url, timeout=1)


class TestFleetCommand:
    @staticmethod
    def _base(tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        return [
            "--length", "0.05", "--backend", "statistical", "fleet",
            "--nodes", "2", "--ticks", "12",
        ]

    def test_episode_reports_slo_and_zero_loss(
        self, capsys, tmp_path, monkeypatch
    ):
        args = self._base(tmp_path, monkeypatch)
        code = cli.main(args + ["--episode", "--intensity", "0.2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "LS SLO attainment:" in out
        assert "jobs lost: 0" in out

    def test_episode_resumes_from_journal(
        self, capsys, tmp_path, monkeypatch
    ):
        journal = tmp_path / "fleet.jsonl"
        args = self._base(tmp_path, monkeypatch) + [
            "--episode", "--journal", str(journal),
        ]
        assert cli.main(args) == 0
        first = capsys.readouterr().out
        assert "resumed:" not in first
        assert journal.exists()
        # Second invocation resumes every journalled completion.
        assert cli.main(args) == 0
        second = capsys.readouterr().out
        assert "resumed:" in second

    def test_sweep_renders_chaos_frontier(
        self, capsys, tmp_path, monkeypatch
    ):
        args = self._base(tmp_path, monkeypatch)
        code = cli.main(args + [
            "--intensity", "0", "--intensity", "0.2",
            "--repeats", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Chaos frontier" in out
        assert "i=0.2" in out
        assert "lost" in out

    def test_episode_emits_beacons(self, tmp_path, monkeypatch):
        from repro.obs import scan_beacons

        beacons = tmp_path / "beacons"
        args = self._base(tmp_path, monkeypatch)
        code = cli.main(args + [
            "--episode", "--beacon-dir", str(beacons),
        ])
        assert code == 0
        found, invalid = scan_beacons(beacons)
        assert invalid == 0
        assert found["fleet"]["state"] == "done"
        assert any(name.startswith("node-") for name in found)


class TestQuarantineCommand:
    def test_list_empty(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert cli.main(["quarantine", "list"]) == 0
        assert "quarantine is empty" in capsys.readouterr().out

    def test_journal_list_and_clear(self, capsys, tmp_path, monkeypatch):
        from repro.experiments.resilience import CampaignJournal

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "journal.jsonl"
        journal = CampaignJournal(path)
        journal.record_quarantined(
            digest="node-3", bench="node-3", config="fleet",
            attempts=4, error="flapping node",
        )
        journal.record_quarantined(
            digest="abc123", bench="429.mcf", config="rule",
            attempts=3, error="boom",
        )
        assert cli.main(
            ["quarantine", "list", "--journal", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "node-3" in out and "flapping node" in out
        assert "abc123" in out

        assert cli.main([
            "quarantine", "clear", "--journal", str(path),
            "--digest", "node-3",
        ]) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert set(CampaignJournal(path).quarantined) == {"abc123"}

        assert cli.main(
            ["quarantine", "clear", "--journal", str(path)]
        ) == 0
        assert "cleared 1" in capsys.readouterr().out
        assert not CampaignJournal(path).quarantined

    def test_clear_unknown_digest_fails(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        code = cli.main(
            ["quarantine", "clear", "--digest", "deadbeef"]
        )
        assert code == 1
        assert "not quarantined" in capsys.readouterr().out

    def test_journal_clear_unknown_digest_fails(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        path = tmp_path / "journal.jsonl"
        path.write_text("")
        code = cli.main([
            "quarantine", "clear", "--journal", str(path),
            "--digest", "deadbeef",
        ])
        assert code == 1
        assert "not quarantined" in capsys.readouterr().out

    def test_listed_in_extensions(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fleet" in out and "quarantine" in out
