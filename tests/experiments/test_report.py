"""Markdown report generation."""

from __future__ import annotations

from repro.experiments.report import generate_report, write_report


class TestReport:
    def test_contains_all_sections(self):
        from tests.experiments.test_figures import FakeCampaign

        text = generate_report(FakeCampaign())
        assert "# CAER reproduction report" in text
        for heading in (
            "Headline numbers",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figure 10",
        ):
            assert heading in text, heading
        assert "run length" in text

    def test_write_report(self, tmp_path):
        from tests.experiments.test_figures import FakeCampaign

        path = write_report(FakeCampaign(), tmp_path / "r" / "report.md")
        assert path.exists()
        assert "Figure 6" in path.read_text()
