"""Markdown report generation."""

from __future__ import annotations

from repro.experiments.campaign import RunSummary
from repro.experiments.report import (
    _telemetry_section,
    _timing_section,
    generate_report,
    write_report,
)


def _summary(bench: str, wall_seconds: float, telemetry=None) -> RunSummary:
    return RunSummary(
        bench=bench,
        config="shutter",
        completion_periods=10,
        total_periods=10,
        ls_total_llc_misses=100,
        utilization_gained=0.5,
        wall_seconds=wall_seconds,
        telemetry=telemetry,
    )


class TestReport:
    def test_contains_all_sections(self):
        from tests.experiments.test_figures import FakeCampaign

        text = generate_report(FakeCampaign())
        assert "# CAER reproduction report" in text
        for heading in (
            "Headline numbers",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figure 10",
        ):
            assert heading in text, heading
        assert "run length" in text

    def test_write_report(self, tmp_path):
        from tests.experiments.test_figures import FakeCampaign

        path = write_report(FakeCampaign(), tmp_path / "r" / "report.md")
        assert path.exists()
        assert "Figure 6" in path.read_text()


class TestTimingSection:
    def test_all_untimed_renders_na_not_zero(self):
        from tests.experiments.test_figures import FakeCampaign

        campaign = FakeCampaign()
        campaign._memory[("429.mcf", "shutter")] = _summary(
            "429.mcf", wall_seconds=0.0
        )
        campaign._memory[("470.lbm", "shutter")] = _summary(
            "470.lbm", wall_seconds=0.0
        )
        text = _timing_section(campaign, elapsed=1.0)
        assert "n/a" in text
        assert "0.0 s across" not in text
        assert "cache epoch" in text
        assert "--no-cache" in text

    def test_partial_timing_calls_out_untimed_entries(self):
        from tests.experiments.test_figures import FakeCampaign

        campaign = FakeCampaign()
        campaign._memory[("429.mcf", "shutter")] = _summary(
            "429.mcf", wall_seconds=2.5
        )
        campaign._memory[("470.lbm", "shutter")] = _summary(
            "470.lbm", wall_seconds=0.0
        )
        text = _timing_section(campaign, elapsed=1.0)
        assert "2.5 s across 1 timed runs" in text
        assert "1 of 2 runs have no timing (n/a)" in text

    def test_fully_timed_has_no_epoch_note(self):
        from tests.experiments.test_figures import FakeCampaign

        campaign = FakeCampaign()
        campaign._memory[("429.mcf", "shutter")] = _summary(
            "429.mcf", wall_seconds=1.5
        )
        text = _timing_section(campaign, elapsed=1.0)
        assert "n/a" not in text
        assert "cache epoch" not in text


class TestTelemetrySection:
    def test_empty_without_telemetry(self):
        from tests.experiments.test_figures import FakeCampaign

        assert _telemetry_section(FakeCampaign()) == ""

    def test_summarises_caer_governed_runs(self):
        from tests.experiments.test_figures import FakeCampaign

        campaign = FakeCampaign()
        campaign._memory[("429.mcf", "shutter")] = _summary(
            "429.mcf",
            wall_seconds=1.0,
            telemetry={
                "metrics": {},
                "derived": {
                    "verdicts": 10.0,
                    "detector_trigger_rate": 0.4,
                    "batch_run_fraction": 0.7,
                },
            },
        )
        text = _telemetry_section(campaign)
        assert "## Telemetry" in text
        assert "trigger rate is 40%" in text
        assert "70% of governed periods" in text
