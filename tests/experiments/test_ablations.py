"""Ablation registry and sweep mechanics (with a stubbed runner)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import ablations
from repro.experiments.ablations import ABLATIONS, AblationRunner


class StubRunner:
    """Records which configs a sweep evaluates; returns canned numbers."""

    def __init__(self):
        from repro.config import MachineConfig

        self.evaluated = []
        self.machine = MachineConfig.scaled_nehalem()

    def evaluate(self, victim, config):
        self.evaluated.append((victim, config))
        return 0.1, 0.5

    def evaluate_many(self, pairs, jobs=None):
        return [self.evaluate(victim, config) for victim, config in pairs]


class TestRegistry:
    def test_all_named_ablations_registered(self):
        expected = {
            "impact-factor",
            "shutter-geometry",
            "usage-threshold",
            "response-length",
            "adaptive-response",
            "window-size",
            "shutter-mode",
            "response-mechanism",
            "probe-period",
            "probe-overhead",
            "prefetch",
            "writebacks",
            "detector",
        }
        assert set(ABLATIONS) == expected

    def test_unknown_ablation_rejected(self):
        with pytest.raises(ExperimentError, match="unknown ablation"):
            ablations.run_ablation("nonesuch")


#: Sweeps that only vary the CAER config (drivable through a stub).
CONFIG_LEVEL_ABLATIONS = sorted(
    set(ABLATIONS)
    - {
        "probe-period", "probe-overhead", "prefetch", "writebacks",
        "detector",
    }
)

#: Sweeps that rebuild the machine or engine per setting.
MACHINE_LEVEL_ABLATIONS = (
    "probe-period", "probe-overhead", "prefetch", "writebacks",
    "detector",
)


class TestSweeps:
    @pytest.mark.parametrize("name", CONFIG_LEVEL_ABLATIONS)
    def test_sweep_produces_complete_table(self, name):
        runner = StubRunner()
        table = ABLATIONS[name](runner)
        assert table.row_names  # at least one setting
        for column in (
            "mcf_penalty",
            "mcf_util",
            "namd_penalty",
            "namd_util",
        ):
            assert len(table.column(column)) == len(table.row_names)
        # Both victims evaluated for every setting.
        assert len(runner.evaluated) == 2 * len(table.row_names)

    def test_impact_factor_rows_labelled(self):
        table = ABLATIONS["impact-factor"](StubRunner())
        assert all(r.startswith("impact=") for r in table.row_names)

    def test_geometry_configs_valid(self):
        runner = StubRunner()
        ABLATIONS["shutter-geometry"](runner)
        # Config construction happens inside the sweep; reaching here
        # means every (switch, end) pair validated.


class TestRunnerPlumbing:
    def test_runner_builds_machine_from_settings(self):
        from repro.experiments.campaign import CampaignSettings

        runner = AblationRunner(CampaignSettings(length=0.01))
        assert runner.machine.l3.capacity_lines == 8192

    def test_runner_evaluates_real_config(self):
        """One real (tiny) evaluation to cover the simulation path."""
        from repro.caer.runtime import CaerConfig
        from repro.experiments.campaign import CampaignSettings

        runner = AblationRunner(CampaignSettings(length=0.01))
        penalty, util = runner.evaluate(
            "444.namd", CaerConfig.rule_based()
        )
        assert penalty > -0.5
        assert 0.0 <= util <= 1.0


class TestMachineLevelSweeps:
    @pytest.mark.parametrize("name", MACHINE_LEVEL_ABLATIONS)
    def test_real_sweep_structure(self, name):
        """Machine-level sweeps rebuild chips; run them tiny but real."""
        from repro.experiments.campaign import CampaignSettings

        runner = AblationRunner(CampaignSettings(length=0.01))
        table = ABLATIONS[name](runner)
        assert table.row_names
        for column in table.columns:
            assert len(table.column(column)) == len(table.row_names)
