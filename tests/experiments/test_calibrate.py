"""The calibration harness (tooling, not a paper artefact)."""

from __future__ import annotations

import pytest

from repro.config import MachineConfig
from repro.experiments.calibrate import (
    FIGURE1_TARGETS,
    CalibrationRow,
    calibrate_benchmark,
)


class TestTargets:
    def test_targets_cover_the_whole_suite(self):
        from repro.workloads import benchmark_names

        assert set(FIGURE1_TARGETS) == set(benchmark_names())

    def test_target_mean_matches_paper(self):
        mean = sum(FIGURE1_TARGETS.values()) / len(FIGURE1_TARGETS)
        assert mean == pytest.approx(1.17, abs=0.03)

    def test_mcf_and_namd_anchor_points(self):
        assert FIGURE1_TARGETS["429.mcf"] == pytest.approx(1.36)
        assert FIGURE1_TARGETS["444.namd"] == pytest.approx(1.02)


class TestRow:
    def test_miss_delta(self):
        row = CalibrationRow(
            name="x",
            solo_periods=100,
            solo_misses_per_period=100.0,
            colo_misses_per_period=150.0,
            slowdown=1.2,
            target=1.2,
        )
        assert row.miss_delta == pytest.approx(0.5)

    def test_miss_delta_zero_base(self):
        row = CalibrationRow("x", 10, 0.0, 5.0, 1.0, 1.0)
        assert row.miss_delta == 0.0


class TestMeasurement:
    def test_calibrates_one_benchmark(self):
        row = calibrate_benchmark(
            "444.namd", MachineConfig.scaled_nehalem(), length=0.02
        )
        assert row.solo_periods > 0
        assert row.slowdown >= 0.95
        assert row.target == pytest.approx(1.02)
