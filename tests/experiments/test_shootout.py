"""The detector shootout driver."""

from __future__ import annotations

import pytest

from repro.caer import registry
from repro.caer.runtime import CaerConfig
from repro.errors import ExperimentError
from repro.experiments import CampaignSettings, detector_shootout
from repro.experiments.shootout import shootout_config

# Burst-Shutter needs enough periods for several full shutter cycles
# to land verdicts; 0.2 (~200 periods) is the shortest length where
# every heuristic has settled.
SETTINGS = CampaignSettings(length=0.2, backend="statistical")


class TestShootoutConfig:
    def test_shutter_keeps_paper_setup_plus_hardening(self):
        config = shootout_config("shutter", 100.0, "429.mcf")
        # The §6 knobs are untouched; only the opt-in fault hardening
        # rides on the parameter mapping for the robustness sweep.
        assert config == CaerConfig.shutter(
            detector_params={"fault_filter": True, "debounce": 3}
        )
        baseline = CaerConfig.shutter()
        assert config.switch_point == baseline.switch_point
        assert config.end_point == baseline.end_point
        assert config.impact_factor == baseline.impact_factor

    def test_random_keeps_baseline_setup(self):
        assert shootout_config(
            "random", 100.0, "429.mcf"
        ) == CaerConfig.random_baseline()

    def test_profile_gets_baseline_and_informed_thresh(self):
        config = shootout_config("profile", 100.0, "429.mcf")
        assert config.baseline_misses == 100.0
        assert config.usage_thresh == pytest.approx(125.0)

    def test_rule_based_gets_informed_thresh(self):
        config = shootout_config("rule-based", 200.0, "429.mcf")
        assert config.detector == "rule-based"
        assert config.usage_thresh == pytest.approx(250.0)
        assert config.response == "soft-lock"

    def test_proactive_gets_victim_param(self):
        config = shootout_config(
            "proactive-analytic", 100.0, "444.namd"
        )
        assert config.detector_param("victim") == "444.namd"


class TestDetectorShootout:
    def test_rejects_empty_intensities(self):
        with pytest.raises(ExperimentError, match="intensity"):
            detector_shootout(SETTINGS, intensities=())

    def test_rejects_missing_clean_intensity(self):
        with pytest.raises(ExperimentError, match="0.0"):
            detector_shootout(SETTINGS, intensities=(0.5,))

    def test_rejects_unknown_detector_listing_choices(self):
        with pytest.raises(ExperimentError, match="gmm-fence"):
            detector_shootout(SETTINGS, detectors=("psychic",))

    def test_scores_every_registered_detector(self):
        """One row per registered detector, random strictly worst."""
        table = detector_shootout(SETTINGS, intensities=(0.0,), jobs=2)
        rows = dict(zip(table.row_names, table.columns["acc"]))
        assert set(rows) == set(registry.detector_names())
        floor = rows.pop("random")
        assert 0.0 <= floor <= 1.0
        for name, accuracy in rows.items():
            assert accuracy > floor, (
                f"{name} ({accuracy}) must beat random ({floor})"
            )
        # The closed loop measurably throttled somebody: every scored
        # run reports a defined penalty and utilization column.
        assert len(table.columns["penalty"]) == len(table.row_names)
        assert len(table.columns["util"]) == len(table.row_names)

    def test_subset_and_ordering(self):
        table = detector_shootout(
            SETTINGS,
            intensities=(0.0,),
            detectors=("rule-based", "random"),
            jobs=1,
        )
        assert table.row_names == ["rule-based", "random"]

    def test_shutter_holds_random_floor_under_heavy_faults(self):
        """The fault-hardened shutter never dips below random.

        The historical fragility: at fault intensity 1.0 the raw
        shutter's accuracy collapsed under the random floor (every
        noise-driven phase move read as contention).  The shootout
        arms ``fault_filter``/``debounce`` on the shutter row, so its
        mean accuracy across the swept intensities — including full
        intensity — must clear the coin-flip baseline.
        """
        table = detector_shootout(
            SETTINGS,
            intensities=(0.0, 1.0),
            detectors=("shutter", "random"),
            jobs=2,
        )
        rows = dict(zip(table.row_names, table.columns["acc_mean"]))
        assert rows["shutter"] > rows["random"], (
            f"hardened shutter ({rows['shutter']}) must beat the "
            f"random floor ({rows['random']}) across intensities"
        )
