"""The detector shootout driver."""

from __future__ import annotations

import pytest

from repro.caer import registry
from repro.caer.runtime import CaerConfig
from repro.errors import ExperimentError
from repro.experiments import CampaignSettings, detector_shootout
from repro.experiments.shootout import shootout_config

# Burst-Shutter needs enough periods for several full shutter cycles
# to land verdicts; 0.2 (~200 periods) is the shortest length where
# every heuristic has settled.
SETTINGS = CampaignSettings(length=0.2, backend="statistical")


class TestShootoutConfig:
    def test_shutter_keeps_paper_setup(self):
        assert shootout_config(
            "shutter", 100.0, "429.mcf"
        ) == CaerConfig.shutter()

    def test_random_keeps_baseline_setup(self):
        assert shootout_config(
            "random", 100.0, "429.mcf"
        ) == CaerConfig.random_baseline()

    def test_profile_gets_baseline_and_informed_thresh(self):
        config = shootout_config("profile", 100.0, "429.mcf")
        assert config.baseline_misses == 100.0
        assert config.usage_thresh == pytest.approx(125.0)

    def test_rule_based_gets_informed_thresh(self):
        config = shootout_config("rule-based", 200.0, "429.mcf")
        assert config.detector == "rule-based"
        assert config.usage_thresh == pytest.approx(250.0)
        assert config.response == "soft-lock"

    def test_proactive_gets_victim_param(self):
        config = shootout_config(
            "proactive-analytic", 100.0, "444.namd"
        )
        assert config.detector_param("victim") == "444.namd"


class TestDetectorShootout:
    def test_rejects_empty_intensities(self):
        with pytest.raises(ExperimentError, match="intensity"):
            detector_shootout(SETTINGS, intensities=())

    def test_rejects_missing_clean_intensity(self):
        with pytest.raises(ExperimentError, match="0.0"):
            detector_shootout(SETTINGS, intensities=(0.5,))

    def test_rejects_unknown_detector_listing_choices(self):
        with pytest.raises(ExperimentError, match="gmm-fence"):
            detector_shootout(SETTINGS, detectors=("psychic",))

    def test_scores_every_registered_detector(self):
        """One row per registered detector, random strictly worst."""
        table = detector_shootout(SETTINGS, intensities=(0.0,), jobs=2)
        rows = dict(zip(table.row_names, table.columns["acc"]))
        assert set(rows) == set(registry.detector_names())
        floor = rows.pop("random")
        assert 0.0 <= floor <= 1.0
        for name, accuracy in rows.items():
            assert accuracy > floor, (
                f"{name} ({accuracy}) must beat random ({floor})"
            )
        # The closed loop measurably throttled somebody: every scored
        # run reports a defined penalty and utilization column.
        assert len(table.columns["penalty"]) == len(table.row_names)
        assert len(table.columns["util"]) == len(table.row_names)

    def test_subset_and_ordering(self):
        table = detector_shootout(
            SETTINGS,
            intensities=(0.0,),
            detectors=("rule-based", "random"),
            jobs=1,
        )
        assert table.row_names == ["rule-based", "random"]
