"""The multi-batch scaling study (extension experiment)."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError
from repro.experiments.campaign import CampaignSettings
from repro.experiments.scaling import scaling_study
from repro.sim import run_multi_colocated
from repro.workloads import synthetic


class TestScenario:
    def test_multi_colocated_schedules_all_batches(self, scaled_machine):
        result = run_multi_colocated(
            synthetic.zipf_worker(lines=2_000, instructions=80_000.0),
            [
                synthetic.streamer(lines=10_000, instructions=40_000.0),
                synthetic.streamer(lines=10_000, instructions=40_000.0),
            ],
            scaled_machine,
        )
        assert len(result.batch_processes()) == 2
        names = {p.name for p in result.batch_processes()}
        assert len(names) == 2  # distinct auto-generated names

    def test_too_many_batches_rejected(self, tiny_machine):
        with pytest.raises(SchedulingError, match="cores"):
            run_multi_colocated(
                synthetic.compute_bound(),
                [synthetic.compute_bound()] * 3,
                tiny_machine,  # only 2 cores
            )

    def test_more_contenders_hurt_more(self, scaled_machine):
        victim = synthetic.zipf_worker(
            lines=5_000, alpha=0.7, instructions=100_000.0
        )
        contender = synthetic.streamer(
            lines=30_000, instructions=50_000.0
        )

        def periods(k: int) -> int:
            result = run_multi_colocated(
                victim, [contender] * k, scaled_machine
            )
            return result.latency_sensitive().completion_periods

        assert periods(3) > periods(1)


class TestStudy:
    def test_table_structure_and_direction(self):
        table = scaling_study(CampaignSettings(length=0.02))
        assert table.row_names == ["1 batch", "2 batch", "3 batch"]
        raw = table.column("raw_penalty")
        caer = table.column("caer_penalty")
        # Raw interference grows with contender count...
        assert raw[-1] > raw[0]
        # ...while CAER holds the penalty well below raw at every count.
        for r, c in zip(raw, caer):
            assert c < r
