"""The multi-batch scaling study (extension experiment)."""

from __future__ import annotations

import pytest

from repro.caer.runtime import CaerConfig
from repro.errors import SchedulingError
from repro.experiments.campaign import CampaignSettings
from repro.experiments.scaling import scaling_spec, scaling_study
from repro.sim import run_multi_colocated
from repro.workloads import synthetic

FAST = CampaignSettings(length=0.02)


class TestScenario:
    def test_multi_colocated_schedules_all_batches(self, scaled_machine):
        result = run_multi_colocated(
            synthetic.zipf_worker(lines=2_000, instructions=80_000.0),
            [
                synthetic.streamer(lines=10_000, instructions=40_000.0),
                synthetic.streamer(lines=10_000, instructions=40_000.0),
            ],
            scaled_machine,
        )
        assert len(result.batch_processes()) == 2
        names = {p.name for p in result.batch_processes()}
        assert len(names) == 2  # distinct auto-generated names

    def test_too_many_batches_rejected(self, tiny_machine):
        with pytest.raises(SchedulingError, match="cores"):
            run_multi_colocated(
                synthetic.compute_bound(),
                [synthetic.compute_bound()] * 3,
                tiny_machine,  # only 2 cores
            )

    def test_more_contenders_hurt_more(self, scaled_machine):
        victim = synthetic.zipf_worker(
            lines=5_000, alpha=0.7, instructions=100_000.0
        )
        contender = synthetic.streamer(
            lines=30_000, instructions=50_000.0
        )

        def periods(k: int) -> int:
            result = run_multi_colocated(
                victim, [contender] * k, scaled_machine
            )
            return result.latency_sensitive().completion_periods

        assert periods(3) > periods(1)


class TestSpecs:
    def test_k_contenders_and_policy(self):
        spec = scaling_spec(FAST, "429.mcf", 3, CaerConfig.rule_based())
        assert len(spec.contenders) == 3
        assert spec.caer == CaerConfig.rule_based()
        assert spec.describe() == "(429.mcf, rule x3)"

    def test_settings_flow_into_the_spec(self):
        spec = scaling_spec(FAST, "429.mcf", 1)
        assert spec.length == FAST.length
        assert spec.backend == FAST.backend
        assert spec.machine == FAST.machine()


class TestStudy:
    def test_table_structure_and_direction(self):
        table = scaling_study(FAST)
        assert table.row_names == ["1 batch", "2 batch", "3 batch"]
        raw = table.column("raw_penalty")
        caer = table.column("caer_penalty")
        # Raw interference grows with contender count...
        assert raw[-1] > raw[0]
        # ...while CAER holds the penalty well below raw at every count.
        for r, c in zip(raw, caer):
            assert c < r

    def test_caer_holds_the_penalty_roughly_flat(self):
        """The docstring's shape claim, quantified.

        Adding contenders grows the raw penalty by some margin; CAER's
        penalty may drift too, but by less — the whole point of
        throttling the batch group as one.
        """
        table = scaling_study(FAST)
        raw = table.column("raw_penalty")
        caer = table.column("caer_penalty")
        raw_growth = raw[-1] - raw[0]
        caer_growth = caer[-1] - caer[0]
        assert raw_growth > 0
        assert caer_growth < raw_growth
        # "Roughly flat": CAER's worst penalty stays within a small
        # absolute band of its best, while raw fans out.
        assert max(caer) - min(caer) < max(raw) - min(raw)

    def test_parallel_matches_serial(self):
        assert (
            scaling_study(FAST, jobs=2).column("caer_penalty")
            == scaling_study(FAST, jobs=1).column("caer_penalty")
        )
