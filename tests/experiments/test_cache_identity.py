"""Digest-keyed campaign cache: cross-driver hits and the key audit."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.experiments.campaign import (
    _AUDIT_PERTURBATIONS,
    Campaign,
    CampaignSettings,
    audit_cache_key,
)

FAST = CampaignSettings(length=0.02)


def _count(campaign: Campaign, name: str) -> float:
    entry = campaign.metrics.snapshot().get(name)
    return entry["value"] if entry else 0.0


class TestCrossDriverCacheHits:
    def test_identical_specs_hit_across_campaigns(self, tmp_path):
        """A re-run over the same cache serves 100% from cache.

        First campaign populates the disk cache via the parallel
        prefetch path; a second, fresh campaign asking for the same
        specs — through prefetch, ``solo`` and ``colocated`` alike —
        simulates nothing and never misses.
        """
        benches = ["429.mcf", "470.lbm"]
        configs = ["solo", "raw", "rule"]
        first = Campaign(FAST, cache_dir=tmp_path, jobs=2)
        assert first.prefetch(benches, configs) == 6
        assert _count(first, "campaign.runs_simulated") == 6

        rerun = Campaign(FAST, cache_dir=tmp_path, jobs=2)
        assert rerun.prefetch(benches, configs) == 0
        for bench in benches:
            rerun.solo(bench)
            rerun.colocated(bench, "raw")
            rerun.colocated(bench, "rule")
        assert _count(rerun, "campaign.runs_simulated") == 0
        assert _count(rerun, "campaign.cache_misses") == 0
        assert _count(rerun, "campaign.cache_invalid") == 0
        assert _count(rerun, "campaign.cache_disk_hits") == 6
        assert _count(rerun, "campaign.cache_memory_hits") == 6

    def test_cache_path_is_the_spec_digest(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path)
        spec = campaign.spec_for("429.mcf", "rule")
        path = campaign._cache_path("429.mcf", "rule")
        assert path.name == f"{spec.digest}.json"

    def test_backends_never_share_cache_entries(self, tmp_path):
        sim = Campaign(FAST, cache_dir=tmp_path)
        stat = Campaign(
            dataclasses.replace(FAST, backend="statistical"),
            cache_dir=tmp_path,
        )
        assert sim._cache_path("429.mcf", "raw") != stat._cache_path(
            "429.mcf", "raw"
        )

    def test_differing_settings_produce_differing_keys(self):
        """Satellite collision check at the campaign level."""
        digests = {
            perturb(FAST).run_spec("429.mcf", "rule").digest
            for perturb in _AUDIT_PERTURBATIONS.values()
        }
        digests.add(FAST.run_spec("429.mcf", "rule").digest)
        assert len(digests) == len(_AUDIT_PERTURBATIONS) + 1


class TestCacheKeyAudit:
    def test_default_settings_pass(self):
        audit_cache_key(CampaignSettings())

    def test_unaudited_field_refused(self, monkeypatch):
        trimmed = dict(_AUDIT_PERTURBATIONS)
        del trimmed["seed"]
        monkeypatch.setattr(
            "repro.experiments.campaign._AUDIT_PERTURBATIONS", trimmed
        )
        with pytest.raises(ConfigError, match="seed"):
            audit_cache_key(CampaignSettings())

    def test_digest_invariant_perturbation_refused(self, monkeypatch):
        broken = dict(_AUDIT_PERTURBATIONS)
        broken["length"] = lambda s: s  # knob "changes" but digest won't
        monkeypatch.setattr(
            "repro.experiments.campaign._AUDIT_PERTURBATIONS", broken
        )
        with pytest.raises(ConfigError, match="length"):
            audit_cache_key(CampaignSettings())

    def test_campaign_construction_runs_the_audit(
        self, tmp_path, monkeypatch
    ):
        trimmed = dict(_AUDIT_PERTURBATIONS)
        del trimmed["backend"]
        monkeypatch.setattr(
            "repro.experiments.campaign._AUDIT_PERTURBATIONS", trimmed
        )
        with pytest.raises(ConfigError, match="backend"):
            Campaign(FAST, cache_dir=tmp_path)
