"""Headline-number aggregation."""

from __future__ import annotations

import pytest

from repro.experiments.headline import HeadlineNumbers, headline_numbers


class TestRendering:
    def test_render_contains_measured_and_paper(self):
        numbers = HeadlineNumbers(
            raw_penalty=0.17,
            shutter_penalty=0.06,
            rule_penalty=0.04,
            shutter_utilization=0.60,
            rule_utilization=0.58,
        )
        text = numbers.render()
        assert "0.170" in text
        assert "0.17" in text
        assert "utilization" in text

    def test_paper_references_attached(self):
        numbers = HeadlineNumbers(0.2, 0.05, 0.03, 0.5, 0.5)
        assert numbers.paper_raw_penalty == pytest.approx(0.17)
        assert numbers.paper_rule_penalty == pytest.approx(0.04)


class TestAggregation:
    def test_means_computed_from_campaign(self):
        from tests.experiments.test_figures import FakeCampaign

        numbers = headline_numbers(FakeCampaign())
        assert numbers.raw_penalty == pytest.approx(0.17, abs=0.02)
        assert numbers.rule_penalty < numbers.shutter_penalty
        assert numbers.shutter_penalty < numbers.raw_penalty
        assert 0.0 < numbers.rule_utilization <= 1.0
