"""Figure drivers, exercised against a synthetic campaign.

The real campaign simulates 21 benchmarks x 5 configurations — that is
the benches' job.  Here a :class:`FakeCampaign` supplies hand-crafted
summaries so each driver's *analysis* is verified exactly.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.campaign import Campaign, CampaignSettings, RunSummary
from repro.experiments.paperdata import (
    FIGURE1_SLOWDOWN,
    LEAST_SENSITIVE,
    MOST_SENSITIVE,
)
from repro.workloads import benchmark_names


class FakeCampaign(Campaign):
    """Serves synthetic run summaries shaped like the paper's data."""

    def __init__(self):
        super().__init__(CampaignSettings(length=0.01),
                         use_disk_cache=False)
        self._utils = {
            "raw": 1.0, "shutter": 0.6, "rule": 0.58, "random": 0.5,
        }

    def solo(self, bench: str) -> RunSummary:
        misses = 1000 if bench in MOST_SENSITIVE else 50
        return RunSummary(
            bench=bench,
            config="solo",
            completion_periods=100,
            total_periods=100,
            ls_total_llc_misses=misses * 100,
            utilization_gained=0.0,
            miss_series=[misses] * 100,
            instruction_series=[10_000.0 - misses] * 100,
        )

    def colocated(self, bench: str, config: str) -> RunSummary:
        raw_slowdown = FIGURE1_SLOWDOWN[bench]
        managed = {
            "raw": raw_slowdown,
            "shutter": 1.0 + (raw_slowdown - 1.0) * 0.3,
            "rule": 1.0 + (raw_slowdown - 1.0) * 0.2,
            "random": 1.0 + (raw_slowdown - 1.0) * 0.6,
        }[config]
        sensitive = bench in MOST_SENSITIVE
        util = self._utils[config]
        if config in ("shutter", "rule") and sensitive:
            util *= 0.4  # heuristics sacrifice more for sensitive apps
        periods = round(100 * managed)
        return RunSummary(
            bench=bench,
            config=config,
            completion_periods=periods,
            total_periods=periods,
            ls_total_llc_misses=periods * 60,
            utilization_gained=util,
            miss_series=[60] * periods,
            instruction_series=[9_000.0] * periods,
        )


@pytest.fixture
def campaign() -> FakeCampaign:
    return FakeCampaign()


class TestFigure1:
    def test_rows_and_mean(self, campaign):
        table = figures.figure1(campaign)
        assert table.row_names == list(benchmark_names())
        assert table.column("slowdown") == pytest.approx(
            [FIGURE1_SLOWDOWN[b] for b in benchmark_names()]
        )
        assert table.mean("slowdown") == pytest.approx(1.17, abs=0.02)


class TestFigure2:
    def test_increase_computed(self, campaign):
        table = figures.figure2(campaign)
        for a, w, inc in zip(
            table.column("alone"),
            table.column("with_contender"),
            table.column("increase"),
        ):
            assert inc == pytest.approx(w / a - 1.0)


class TestFigure3:
    def test_charts_rendered(self, campaign):
        charts = figures.figure3(campaign)
        assert set(charts) == {
            "483.xalancbmk/misses",
            "483.xalancbmk/instructions",
            "429.mcf/misses",
            "429.mcf/instructions",
        }
        for chart in charts.values():
            assert "#" in chart

    def test_correlation_table(self, campaign):
        table = figures.figure3_correlations(campaign)
        assert table.row_names == list(figures.FIGURE3_BENCHMARKS)
        # Flat series -> correlation 0; the fake has constant series.
        for r in table.column("pearson_r"):
            assert -1.0 <= r <= 1.0


class TestFigure6:
    def test_ordering_raw_worst(self, campaign):
        table = figures.figure6(campaign)
        assert (
            table.mean("co-location")
            > table.mean("caer_shutter")
            > table.mean("caer_rule")
        )


class TestFigure7:
    def test_utilization_columns(self, campaign):
        table = figures.figure7(campaign)
        for value in table.column("caer_shutter"):
            assert 0.0 <= value <= 1.0


class TestFigure8:
    def test_elimination_in_unit_range(self, campaign):
        table = figures.figure8(campaign)
        for column in ("caer_shutter", "caer_rule"):
            for value in table.column(column):
                assert 0.0 <= value <= 1.0

    def test_rule_eliminates_more_than_shutter(self, campaign):
        table = figures.figure8(campaign)
        assert table.mean("caer_rule") >= table.mean("caer_shutter")


class TestFigures9And10:
    def test_signs_match_paper(self, campaign):
        most = figures.figure9(campaign)
        least = figures.figure10(campaign)
        assert most.row_names == list(MOST_SENSITIVE)
        assert least.row_names == list(LEAST_SENSITIVE)
        # Sensitive: heuristics sacrifice more than random (negative A).
        assert most.mean("caer_rule") < 0
        assert most.mean("caer_shutter") < 0
        # Insensitive: heuristics beat random (positive A).
        assert least.mean("caer_rule") > 0
        assert least.mean("caer_shutter") > 0


class TestPearson:
    def test_perfect_inverse(self):
        assert figures._pearson(
            [1, 2, 3, 4], [8, 6, 4, 2]
        ) == pytest.approx(-1.0)

    def test_uncorrelated_constant(self):
        assert figures._pearson([1, 1, 1], [2, 3, 4]) == 0.0

    def test_short_series(self):
        assert figures._pearson([1], [2]) == 0.0
