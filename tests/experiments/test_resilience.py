"""Resilient execution: retry, quarantine, journal resume, chaos."""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.errors import ChaosError, ConfigError, ExperimentError
from repro.experiments.campaign import (
    Campaign,
    CampaignSettings,
)
from repro.experiments.executor import fan_out
from repro.experiments.resilience import (
    DEFAULT_BACKOFF,
    CampaignJournal,
    RetryPolicy,
    run_specs_resilient,
)
from repro.faults.chaos import CHAOS_ENV, ChaosSpec, maybe_inject
from repro.obs import MetricsRegistry

FAST = CampaignSettings(length=0.02, backend="statistical")

#: An eager policy so retry tests stay fast.
EAGER = RetryPolicy(max_attempts=2, backoff=(0.0,))


def _count(campaign: Campaign, name: str) -> float:
    entry = campaign.metrics.snapshot().get(name)
    return entry["value"] if entry else 0.0


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.backoff == DEFAULT_BACKOFF
        assert policy.timeout is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff": (-0.1,)},
            {"timeout": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_RUN_TIMEOUT", "2.5")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 5
        assert policy.timeout == 2.5

    def test_from_env_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "many")
        with pytest.raises(ConfigError, match="REPRO_RETRIES"):
            RetryPolicy.from_env()

    def test_backoff_schedule_clamps_to_last(self):
        policy = RetryPolicy(max_attempts=9, backoff=(0.1, 0.4))
        assert policy.delay_before(1) == 0.0
        assert policy.delay_before(2) == 0.1
        assert policy.delay_before(3) == 0.4
        assert policy.delay_before(9) == 0.4


class TestChaosSpec:
    def test_unarmed(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert ChaosSpec.from_env() is None

    def test_parse_full_form(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:2:429.mcf")
        chaos = ChaosSpec.from_env()
        assert chaos == ChaosSpec("crash", 2, "429.mcf")

    def test_count_defaults_to_one(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "hang")
        assert ChaosSpec.from_env() == ChaosSpec("hang", 1)

    @pytest.mark.parametrize("raw", ["explode:1", "crash:soon", "crash:0"])
    def test_bad_directives_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(CHAOS_ENV, raw)
        with pytest.raises(ConfigError):
            ChaosSpec.from_env()

    def test_victim_scoping(self):
        chaos = ChaosSpec("crash", 2, "429.mcf")
        mcf = FAST.run_spec("429.mcf", "solo")
        namd = FAST.run_spec("444.namd", "solo")
        assert chaos.applies(mcf, 1) and chaos.applies(mcf, 2)
        assert not chaos.applies(mcf, 3)
        assert not chaos.applies(namd, 1)

    def test_maybe_inject_crash(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:1")
        with pytest.raises(ChaosError, match="attempt 1"):
            maybe_inject(FAST.run_spec("444.namd", "solo"), 1)
        maybe_inject(FAST.run_spec("444.namd", "solo"), 2)  # no-op


class TestRunSpecsResilient:
    def test_transient_crash_retries_to_success(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:1")
        metrics = MetricsRegistry()
        specs = [FAST.run_spec("444.namd", "solo")]
        outcomes, quarantined = run_specs_resilient(
            specs, jobs=1, metrics=metrics, policy=EAGER
        )
        assert not quarantined
        assert outcomes[specs[0].digest].completion_periods > 0
        snapshot = metrics.snapshot()
        assert snapshot["executor.attempts"]["value"] == 2.0
        assert snapshot["executor.retries"]["value"] == 1.0

    def test_persistent_crash_quarantines_not_raises(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:99:444.namd")
        metrics = MetricsRegistry()
        specs = [
            FAST.run_spec("444.namd", "solo"),
            FAST.run_spec("429.mcf", "solo"),
        ]
        outcomes, quarantined = run_specs_resilient(
            specs, jobs=1, metrics=metrics, policy=EAGER
        )
        assert specs[1].digest in outcomes
        record = quarantined[specs[0].digest]
        assert record.attempts == EAGER.max_attempts
        assert "ChaosError" in record.error
        assert metrics.snapshot()["executor.quarantined"]["value"] == 1.0

    def test_on_complete_fires_per_completion(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        done = []
        specs = [
            FAST.run_spec("444.namd", "solo"),
            FAST.run_spec("429.mcf", "solo"),
        ]
        run_specs_resilient(
            specs, jobs=1, policy=EAGER,
            on_complete=lambda spec, outcome, attempt: done.append(
                (spec.digest, attempt)
            ),
        )
        assert sorted(done) == sorted(
            (spec.digest, 1) for spec in specs
        )

    def test_duplicate_digests_run_once(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        metrics = MetricsRegistry()
        spec = FAST.run_spec("444.namd", "solo")
        outcomes, _ = run_specs_resilient(
            [spec, spec], jobs=1, metrics=metrics, policy=EAGER
        )
        assert len(outcomes) == 1
        assert metrics.snapshot()["executor.attempts"]["value"] == 1.0

    def test_hang_trips_per_run_timeout(self, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "hang:1")
        specs = [
            FAST.run_spec("444.namd", "solo"),
            FAST.run_spec("429.mcf", "solo"),
        ]
        policy = RetryPolicy(
            max_attempts=2, backoff=(0.0,), timeout=0.75
        )
        started = time.monotonic()
        outcomes, quarantined = run_specs_resilient(
            specs, jobs=2, policy=policy
        )
        # Attempt 1 hangs (3 s) and is abandoned at the 0.75 s timeout;
        # attempt 2 is clean, so everything still completes.
        assert not quarantined
        assert set(outcomes) == {spec.digest for spec in specs}
        assert time.monotonic() - started < 2.5 * policy.timeout + 10


class TestCampaignJournal:
    def test_round_trip(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.record_done("d1", "444.namd", "solo", attempts=2)
        journal.record_quarantined("d2", "429.mcf", "rule", 3, "boom")
        again = CampaignJournal(tmp_path / "journal.jsonl")
        assert again.completed["d1"]["attempts"] == 2
        assert again.quarantined["d2"]["error"] == "boom"

    def test_later_records_win(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.record_quarantined("d1", "444.namd", "solo", 3, "boom")
        journal.record_done("d1", "444.namd", "solo")
        again = CampaignJournal(tmp_path / "journal.jsonl")
        assert "d1" in again.completed
        assert "d1" not in again.quarantined

    def test_cleared_lifts_quarantine(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.record_quarantined("d1", "444.namd", "solo", 3, "boom")
        journal.record_cleared("d1")
        assert "d1" not in CampaignJournal(
            tmp_path / "journal.jsonl"
        ).quarantined

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = CampaignJournal(path)
        journal.record_done("d1", "444.namd", "solo")
        with open(path, "a") as handle:
            handle.write('{"status": "done", "digest": "d2"')  # torn
        again = CampaignJournal(path)
        assert "d1" in again.completed
        assert "d2" not in again.completed

    def test_missing_file_is_empty(self, tmp_path):
        journal = CampaignJournal(tmp_path / "absent.jsonl")
        assert journal.completed == {} and journal.quarantined == {}


class TestCampaignResilience:
    def test_quarantined_spec_reported_not_raised(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(CHAOS_ENV, "crash:99:444.namd")
        campaign = Campaign(FAST, cache_dir=tmp_path, retry=EAGER)
        simulated = campaign.prefetch(
            ["444.namd", "429.mcf"], ["solo"], jobs=1
        )
        assert simulated == 1
        report = campaign.quarantine_report()
        assert [r.label for r in report] == ["(444.namd, solo)"]
        with pytest.raises(ExperimentError, match="quarantined"):
            campaign.solo("444.namd")
        # The journal persists the quarantine into the next campaign.
        monkeypatch.delenv(CHAOS_ENV)
        fresh = Campaign(FAST, cache_dir=tmp_path, retry=EAGER)
        assert len(fresh.quarantine_report()) == 1
        # ... unless the operator asks for another chance.
        monkeypatch.setenv("REPRO_RETRY_QUARANTINED", "1")
        retrying = Campaign(FAST, cache_dir=tmp_path, retry=EAGER)
        assert retrying.quarantine_report() == []
        assert retrying.prefetch(["444.namd"], ["solo"], jobs=1) == 1

    def test_clear_quarantine_is_journalled(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, "crash:99")
        campaign = Campaign(FAST, cache_dir=tmp_path, retry=EAGER)
        campaign.prefetch(["444.namd"], ["solo"], jobs=1)
        assert campaign.quarantine_report()
        monkeypatch.delenv(CHAOS_ENV)
        assert campaign.clear_quarantine() == 1
        fresh = Campaign(FAST, cache_dir=tmp_path, retry=EAGER)
        assert fresh.quarantine_report() == []
        assert fresh.solo("444.namd").completion_periods > 0

    def test_interrupt_then_rerun_resumes_with_zero_reexecution(
        self, tmp_path, monkeypatch
    ):
        # namd completes (and is checkpointed) before the chaos
        # interrupt kills the mcf run mid-campaign.
        monkeypatch.setenv(CHAOS_ENV, "interrupt:99:429.mcf")
        first = Campaign(FAST, cache_dir=tmp_path, retry=EAGER)
        with pytest.raises(KeyboardInterrupt):
            first.prefetch(["444.namd", "429.mcf"], ["solo"], jobs=1)
        assert _count(first, "campaign.runs_simulated") == 1.0

        monkeypatch.delenv(CHAOS_ENV)
        second = Campaign(FAST, cache_dir=tmp_path, retry=EAGER)
        simulated = second.prefetch(
            ["444.namd", "429.mcf"], ["solo"], jobs=1
        )
        # Only the interrupted run is executed; the completed one is
        # vouched for by the journal and never re-simulated.
        assert simulated == 1
        assert _count(second, "campaign.journal_resumed") == 1.0
        assert _count(second, "campaign.runs_simulated") == 1.0

        third = Campaign(FAST, cache_dir=tmp_path, retry=EAGER)
        assert third.prefetch(
            ["444.namd", "429.mcf"], ["solo"], jobs=1
        ) == 0
        assert _count(third, "campaign.journal_resumed") == 2.0
        assert _count(third, "campaign.runs_simulated") == 0.0

    def test_corrupt_cache_entry_renamed_aside(self, tmp_path):
        campaign = Campaign(FAST, cache_dir=tmp_path)
        campaign.solo("444.namd")
        path = campaign._cache_path("444.namd", "solo")
        path.write_text("{definitely not json")
        fresh = Campaign(FAST, cache_dir=tmp_path)
        assert fresh.solo("444.namd").completion_periods > 0
        assert _count(fresh, "campaign.cache_invalid") == 1.0
        corpse = path.with_name(path.name + ".corrupt")
        assert corpse.exists()
        assert corpse.read_text() == "{definitely not json"
        assert json.loads(path.read_text())  # re-simulated and stored


def _orphan_worker(task: tuple[str, str, float]) -> str:
    """fan_out unit for the cancellation test (module-level to pickle)."""
    kind, marker, delay = task
    if kind == "interrupt":
        raise KeyboardInterrupt("simulated Ctrl-C in a worker")
    time.sleep(delay)
    Path(marker).write_text("ran")
    return marker


class TestFanOutCancellation:
    def test_interrupt_cancels_queued_tasks(self, tmp_path):
        """A dying batch must not leak orphan workers: unstarted tasks
        are cancelled, not executed after the interrupt."""
        sleepers = 6
        tasks = [("interrupt", "", 0.0)] + [
            ("sleep", str(tmp_path / f"marker_{i}"), 0.3)
            for i in range(sleepers)
        ]
        with pytest.raises(KeyboardInterrupt):
            fan_out(_orphan_worker, tasks, jobs=2)
        # Give in-flight (and call-queue-prefetched) workers ample time
        # to finish, then count what actually ran.  Without
        # cancel_futures the pool would drain all six sleepers; with it
        # only the handful already dispatched may complete.
        time.sleep(1.5)
        markers = sorted(p.name for p in tmp_path.glob("marker_*"))
        assert len(markers) < sleepers
