"""Public API surface and error hierarchy."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_symbols(self):
        # The README quickstart must keep working.
        assert callable(repro.run_solo)
        assert callable(repro.run_colocated)
        assert callable(repro.benchmark)
        assert callable(repro.caer_factory)
        assert repro.CaerConfig.rule_based().detector == "rule-based"

    def test_subpackage_all_exports_resolve(self):
        import repro.analytic
        import repro.arch
        import repro.caer
        import repro.experiments
        import repro.perfmon
        import repro.sim
        import repro.statistical
        import repro.workloads

        for module in (
            repro.arch,
            repro.workloads,
            repro.sim,
            repro.perfmon,
            repro.caer,
            repro.analytic,
            repro.statistical,
            repro.experiments,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        leaf_errors = [
            errors.ConfigError,
            errors.CacheConfigError,
            errors.SimulationError,
            errors.SchedulingError,
            errors.WorkloadError,
            errors.UnknownBenchmarkError,
            errors.PerfmonError,
            errors.DetectorError,
            errors.ExperimentError,
        ]
        for exc in leaf_errors:
            assert issubclass(exc, errors.ReproError)

    def test_scheduling_is_simulation_error(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)

    def test_cache_config_is_config_error(self):
        assert issubclass(errors.CacheConfigError, errors.ConfigError)

    def test_unknown_benchmark_carries_hint(self):
        err = errors.UnknownBenchmarkError("foo", ("a", "b"))
        assert "foo" in str(err)
        assert "a, b" in str(err)

    def test_library_failures_catchable_at_root(self):
        with pytest.raises(errors.ReproError):
            repro.benchmark("not-a-benchmark")
        with pytest.raises(errors.ReproError):
            repro.CacheGeometry(num_sets=3, associativity=1)
