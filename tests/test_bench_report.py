"""The bench_simspeed ``--json`` report: schema and gate logic.

``BENCH_simspeed.json`` is a perf *trajectory*: each full bench run
appends one comparable point (schema 2), and pre-trajectory schema-1
snapshots are migrated as point zero.  These tests pin the point
schema, the v1 -> v2 migration, the append semantics, and the gate
logic — including the per-workload vector gates — without running
full-length measurements.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks"
    / "bench_simspeed.py"
)
_spec = importlib.util.spec_from_file_location("bench_simspeed", BENCH_PATH)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)

TIER_NAMES = {"generic", "fastlane", "kernel", "vector"}
RATIO_NAMES = {
    "fastlane_over_generic",
    "kernel_over_fastlane",
    "kernel_over_generic",
    "vector_over_kernel",
    "vector_over_generic",
}


def fake_rows(
    kf: float = 2.0,
    kg: float = 4.0,
    fg: float = 2.2,
    vk: float = 3.5,
    gate_vk: float | None = None,
    gate_ol: float | None = None,
):
    """Synthetic suite rows with the given ratios on every workload.

    ``vk`` is the default-budget vector/kernel ratio; ``gate_vk``
    overrides the ratio measured at each workload's own gate budget
    (defaults to comfortably above every target); ``gate_ol``
    overrides the ownership gates' vector-over-legacy ratio likewise.
    """
    rows = []
    for name, (_f, streaming, gated, vgate,
               ogate) in bench.WORKLOADS.items():
        generic = 100_000.0
        row = {
            "workload": name,
            "streaming": streaming,
            "kernel_gated": gated,
            "tiers": {
                "generic": generic,
                "fastlane": generic * fg,
                "kernel": generic * kg,
                "vector": generic * kg * vk,
            },
            "ratios": {
                "fastlane_over_generic": fg,
                "kernel_over_fastlane": kf,
                "kernel_over_generic": kg,
                "vector_over_kernel": vk,
                "vector_over_generic": kg * vk,
            },
            "vector_gate": None,
            "ownership_gate": None,
        }
        if vgate is not None:
            ratio = gate_vk if gate_vk is not None else \
                vgate["target"] + 1.0
            row["vector_gate"] = {
                "budget": vgate["budget"],
                "target": vgate["target"],
                "kernel": generic * kg,
                "vector": generic * kg * ratio,
                "vector_over_kernel": ratio,
            }
        if ogate is not None:
            ratio = gate_ol if gate_ol is not None else \
                ogate["target"] + 0.5
            vector = row["tiers"]["vector"]
            row["ownership_gate"] = {
                "budget": ogate["budget"],
                "target": ogate["target"],
                "legacy_vector": vector / ratio,
                "vector": vector,
                "vector_over_legacy": ratio,
            }
        rows.append(row)
    return rows


def fake_point():
    return bench.build_point(fake_rows(), warm=1, timed=2, reps=1)


class TestPointSchema:
    def test_point_has_contract_fields(self):
        point = fake_point()
        for key in ("platform", "python", "implementation", "cpu_count"):
            assert key in point["machine"]
        assert point["config"]["machine_config"] == "scaled_nehalem"
        for name in bench.WORKLOADS:
            wl = point["workloads"][name]
            assert set(wl["tiers"]) == TIER_NAMES
            assert set(wl["ratios"]) == RATIO_NAMES
        assert point["targets"]["kernel_over_fastlane"] == \
            bench.KERNEL_OVER_FASTLANE_TARGET
        assert point["targets"]["vector_over_kernel_stream"] == \
            bench.VECTOR_OVER_KERNEL_STREAM_TARGET
        assert point["targets"]["vector_over_kernel_chase"] == \
            bench.VECTOR_OVER_KERNEL_CHASE_TARGET
        assert point["targets"]["owner_over_legacy_stream"] == \
            bench.OWNER_OVER_LEGACY_STREAM_TARGET
        assert point["targets"]["owner_over_legacy_chase"] == \
            bench.OWNER_OVER_LEGACY_CHASE_TARGET

    def test_point_records_kernel_gates_per_tier(self):
        # Satellite of the tier-5 PR: a trajectory point must say
        # which REPRO_* kernel gates each measured column ran under.
        gates = fake_point()["kernel_gates"]
        assert set(gates) == set(bench.TIERS) | {"legacy_vector"}
        flags = {"fast_lane", "bulk_kernel", "vector_kernel",
                 "owner_arrays", "vector_fills"}
        for column in gates.values():
            assert set(column) == flags
            assert all(isinstance(v, bool) for v in column.values())
        assert gates["vector"]["owner_arrays"]
        assert gates["vector"]["vector_fills"]
        assert not gates["legacy_vector"]["owner_arrays"]
        assert not gates["legacy_vector"]["vector_fills"]
        assert gates["legacy_vector"]["vector_kernel"]
        assert not gates["generic"]["fast_lane"]

    def test_gated_workloads_record_their_gate_measurement(self):
        point = fake_point()
        gated = {
            name: vgate
            for name, (_f, _s, _g, vgate, _o) in bench.WORKLOADS.items()
            if vgate is not None
        }
        assert gated  # the suite must carry at least one vector gate
        for name, vgate in gated.items():
            gate = point["workloads"][name]["vector_gate"]
            assert gate["budget"] == vgate["budget"]
            assert gate["target"] == vgate["target"]
            assert gate["vector_over_kernel"] > gate["target"]
        ungated = set(bench.WORKLOADS) - set(gated)
        for name in ungated:
            assert point["workloads"][name]["vector_gate"] is None

    def test_ownership_gated_workloads_record_their_measurement(self):
        point = fake_point()
        gated = {
            name: ogate
            for name, (_f, _s, _g, _v, ogate) in bench.WORKLOADS.items()
            if ogate is not None
        }
        # Both acceptance workloads carry an ownership gate.
        assert set(gated) == {"stream-llc", "pointer-chase"}
        for name, ogate in gated.items():
            gate = point["workloads"][name]["ownership_gate"]
            assert gate["budget"] == ogate["budget"]
            assert gate["target"] == ogate["target"]
            assert gate["vector_over_legacy"] > gate["target"]
        for name in set(bench.WORKLOADS) - set(gated):
            assert point["workloads"][name]["ownership_gate"] is None

    def test_report_wraps_points(self):
        report = bench.build_report([fake_point()])
        assert report["schema_version"] == bench.SCHEMA_VERSION
        assert report["benchmark"] == "bench_simspeed"
        assert len(report["points"]) == 1

    def test_report_is_json_serialisable(self):
        report = bench.build_report([fake_point()])
        assert json.loads(json.dumps(report)) == report

    def test_checked_in_seed_matches_schema(self):
        seed_path = BENCH_PATH.parent.parent / "BENCH_simspeed.json"
        report = json.loads(seed_path.read_text())
        assert report["schema_version"] == bench.SCHEMA_VERSION
        assert report["points"]
        # Every point names the same workload set the suite runs.
        for point in report["points"]:
            assert set(point["workloads"]) == set(bench.WORKLOADS)


class TestTrajectory:
    def test_migrate_v1_snapshot_becomes_point_zero(self):
        v1 = {
            "schema_version": 1,
            "benchmark": "bench_simspeed",
            "timestamp": "2026-08-06T00:00:00",
            "machine": {},
            "config": {},
            "targets": {},
            "workloads": {},
        }
        points = bench.migrate_points(v1)
        assert len(points) == 1
        assert "schema_version" not in points[0]
        assert "benchmark" not in points[0]
        assert points[0]["timestamp"] == "2026-08-06T00:00:00"

    def test_migrate_v2_returns_points_as_is(self):
        report = bench.build_report([fake_point(), fake_point()])
        assert bench.migrate_points(report) == report["points"]

    def test_write_fresh_file_has_one_point(self, tmp_path):
        path = tmp_path / "bench.json"
        count = bench.write_report(
            path, fake_rows(), warm=1, timed=2, reps=1, append=True
        )
        assert count == 1
        report = json.loads(path.read_text())
        assert report["schema_version"] == bench.SCHEMA_VERSION
        assert len(report["points"]) == 1

    def test_append_accumulates_points(self, tmp_path):
        path = tmp_path / "bench.json"
        for expected in (1, 2, 3):
            count = bench.write_report(
                path, fake_rows(), warm=1, timed=2, reps=1, append=True
            )
            assert count == expected
        assert len(json.loads(path.read_text())["points"]) == 3

    def test_append_migrates_v1_file_in_place(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "schema_version": 1,
            "benchmark": "bench_simspeed",
            "timestamp": "t0",
            "workloads": {},
        }))
        count = bench.write_report(
            path, fake_rows(), warm=1, timed=2, reps=1, append=True
        )
        assert count == 2
        report = json.loads(path.read_text())
        assert report["schema_version"] == bench.SCHEMA_VERSION
        assert report["points"][0]["timestamp"] == "t0"
        assert set(report["points"][1]["workloads"]) == \
            set(bench.WORKLOADS)

    def test_overwrite_without_append_keeps_one_point(self, tmp_path):
        path = tmp_path / "bench.json"
        bench.write_report(
            path, fake_rows(), warm=1, timed=2, reps=1, append=True
        )
        count = bench.write_report(
            path, fake_rows(), warm=1, timed=2, reps=1, append=False
        )
        assert count == 1
        assert len(json.loads(path.read_text())["points"]) == 1


class TestGateLogic:
    def test_passing_ratios_produce_no_failures(self):
        assert bench.check_gates(fake_rows(), smoke=False) == []
        assert bench.check_gates(fake_rows(), smoke=True) == []

    def test_kernel_below_fastlane_target_fails_gated_workload(self):
        failures = bench.check_gates(fake_rows(kf=1.2), smoke=False)
        assert any("over-fastlane" in f for f in failures)
        # Only the gated streaming benchmark enforces the kernel gate.
        gated = [
            name for name, (_f, _s, g, _v, _o) in bench.WORKLOADS.items()
            if g
        ]
        assert all(f.split(":")[0] in gated for f in failures)

    def test_kernel_below_generic_target_fails(self):
        failures = bench.check_gates(fake_rows(kg=2.0), smoke=False)
        assert any("over-generic" in f for f in failures)

    def test_fastlane_below_streaming_target_fails(self):
        failures = bench.check_gates(fake_rows(fg=1.5), smoke=False)
        assert any("streaming target" in f for f in failures)

    def test_vector_below_gate_target_fails_each_gated_workload(self):
        failures = bench.check_gates(
            fake_rows(gate_vk=1.01), smoke=False
        )
        gated = [
            name for name, (_f, _s, _g, v, _o) in bench.WORKLOADS.items()
            if v is not None
        ]
        vector_failures = [
            f for f in failures
            if "over-kernel" in f and "legacy" not in f
        ]
        assert len(vector_failures) == len(gated)
        for f in vector_failures:
            assert "cycle budget" in f

    def test_vector_gate_passes_exactly_at_target(self):
        rows = fake_rows()
        for row in rows:
            if row["vector_gate"] is not None:
                row["vector_gate"]["vector_over_kernel"] = \
                    row["vector_gate"]["target"]
        assert bench.check_gates(rows, smoke=False) == []

    def test_ownership_below_target_fails_each_gated_workload(self):
        failures = bench.check_gates(fake_rows(gate_ol=1.05),
                                     smoke=False)
        ownership_failures = [
            f for f in failures if "over-legacy-vector" in f
        ]
        gated = [
            name for name, (_f, _s, _g, _v, o) in bench.WORKLOADS.items()
            if o is not None
        ]
        assert len(ownership_failures) == len(gated)
        assert all(
            f.split(":")[0] in gated for f in ownership_failures
        )

    def test_ownership_gate_passes_exactly_at_target(self):
        rows = fake_rows()
        for row in rows:
            if row["ownership_gate"] is not None:
                row["ownership_gate"]["vector_over_legacy"] = \
                    row["ownership_gate"]["target"]
        assert bench.check_gates(rows, smoke=False) == []

    def test_smoke_checks_ownership_ordering(self):
        # Below the absolute target but still faster than legacy:
        # smoke passes.  An inversion fails even the smoke run.
        assert bench.check_gates(fake_rows(gate_ol=1.05),
                                 smoke=True) == []
        failures = bench.check_gates(fake_rows(gate_ol=0.95),
                                     smoke=True)
        assert any("legacy vector" in f for f in failures)

    def test_smoke_checks_ordering_only(self):
        # Below absolute targets but correctly ordered: smoke passes.
        rows = fake_rows(kf=1.05, kg=1.3, fg=1.2, vk=1.1)
        assert bench.check_gates(rows, smoke=True) == []
        assert bench.check_gates(rows, smoke=False) != []
        # An inversion fails even the smoke run.
        inverted = fake_rows(kf=0.9, kg=0.8, fg=0.9, vk=0.9)
        assert bench.check_gates(inverted, smoke=True) != []

    def test_smoke_vector_ordering_applies_to_gated_rows_only(self):
        # Pointer-chase stands down to parity at the smoke budget, so
        # vector-below-kernel there must not fail the smoke run; the
        # amortised streaming benchmark still must stay ordered.
        rows = fake_rows(vk=0.9)
        failures = bench.check_gates(rows, smoke=True)
        slower = [f for f in failures if "vector slower than kernel" in f]
        gated = [
            name for name, (_f, _s, g, _v, _o) in bench.WORKLOADS.items()
            if g
        ]
        assert len(slower) == len(gated)
        assert all(f.split(":")[0] in gated for f in slower)

    def test_smoke_ignores_vector_gate_measurements(self):
        # Smoke rows carry no gate measurement at all; the checker
        # must not require one.
        rows = fake_rows()
        for row in rows:
            row["vector_gate"] = None
        assert bench.check_gates(rows, smoke=True) == []
