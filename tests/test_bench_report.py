"""The bench_simspeed ``--json`` report: schema and gate logic.

``BENCH_simspeed.json`` is the seed of the perf trajectory: future PRs
append comparable points, so the format is a contract (documented in
docs/performance.md).  These tests pin the schema and the gate
semantics without running full-length measurements.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

BENCH_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks"
    / "bench_simspeed.py"
)
_spec = importlib.util.spec_from_file_location("bench_simspeed", BENCH_PATH)
bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench)


def fake_rows(kf: float = 2.0, kg: float = 4.0, fg: float = 2.2):
    """Synthetic suite rows with the given ratios on every workload."""
    rows = []
    for name, (_factory, streaming, gated) in bench.WORKLOADS.items():
        generic = 100_000.0
        rows.append({
            "workload": name,
            "streaming": streaming,
            "kernel_gated": gated,
            "tiers": {
                "generic": generic,
                "fastlane": generic * fg,
                "kernel": generic * kg,
            },
            "ratios": {
                "fastlane_over_generic": fg,
                "kernel_over_fastlane": kf,
                "kernel_over_generic": kg,
            },
        })
    return rows


class TestReportSchema:
    def test_report_has_contract_fields(self):
        report = bench.build_report(fake_rows(), warm=1, timed=2, reps=1)
        assert report["schema_version"] == bench.SCHEMA_VERSION
        assert report["benchmark"] == "bench_simspeed"
        for key in ("platform", "python", "implementation", "cpu_count"):
            assert key in report["machine"]
        assert report["config"]["machine_config"] == "scaled_nehalem"
        for name in bench.WORKLOADS:
            wl = report["workloads"][name]
            assert set(wl["tiers"]) == {"generic", "fastlane", "kernel"}
            assert set(wl["ratios"]) == {
                "fastlane_over_generic",
                "kernel_over_fastlane",
                "kernel_over_generic",
            }
        assert report["targets"]["kernel_over_fastlane"] == \
            bench.KERNEL_OVER_FASTLANE_TARGET

    def test_report_is_json_serialisable(self):
        report = bench.build_report(fake_rows(), warm=1, timed=2, reps=1)
        assert json.loads(json.dumps(report)) == report

    def test_checked_in_seed_matches_schema(self):
        seed_path = BENCH_PATH.parent.parent / "BENCH_simspeed.json"
        report = json.loads(seed_path.read_text())
        assert report["schema_version"] == bench.SCHEMA_VERSION
        assert set(report["workloads"]) == set(bench.WORKLOADS)


class TestGateLogic:
    def test_passing_ratios_produce_no_failures(self):
        assert bench.check_gates(fake_rows(), smoke=False) == []
        assert bench.check_gates(fake_rows(), smoke=True) == []

    def test_kernel_below_fastlane_target_fails_gated_workload(self):
        failures = bench.check_gates(fake_rows(kf=1.2), smoke=False)
        assert any("over-fastlane" in f for f in failures)
        # Only the gated streaming benchmark enforces the kernel gate.
        gated = [
            name for name, (_f, _s, g) in bench.WORKLOADS.items() if g
        ]
        assert all(f.split(":")[0] in gated for f in failures)

    def test_kernel_below_generic_target_fails(self):
        failures = bench.check_gates(fake_rows(kg=2.0), smoke=False)
        assert any("over-generic" in f for f in failures)

    def test_fastlane_below_streaming_target_fails(self):
        failures = bench.check_gates(fake_rows(fg=1.5), smoke=False)
        assert any("streaming target" in f for f in failures)

    def test_smoke_checks_ordering_only(self):
        # Below absolute targets but correctly ordered: smoke passes.
        rows = fake_rows(kf=1.05, kg=1.3, fg=1.2)
        assert bench.check_gates(rows, smoke=True) == []
        assert bench.check_gates(rows, smoke=False) != []
        # An inversion fails even the smoke run.
        inverted = fake_rows(kf=0.9, kg=0.8, fg=0.9)
        assert bench.check_gates(inverted, smoke=True) != []
