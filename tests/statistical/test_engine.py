"""The statistical engine: API compatibility and behaviour."""

from __future__ import annotations

import pytest

from repro.caer.metrics import slowdown, utilization_gained
from repro.caer.runtime import CaerConfig, caer_factory
from repro.config import MachineConfig
from repro.errors import SchedulingError
from repro.sim.process import AppClass, ProcessState, SimProcess
from repro.statistical import StatisticalEngine, fast_colocated, fast_solo
from repro.workloads import benchmark, synthetic

MACHINE = MachineConfig.scaled_nehalem()
L3 = MACHINE.l3.capacity_lines


class TestBasics:
    def test_solo_run_completes(self):
        result = fast_solo(
            synthetic.zipf_worker(lines=2_000, instructions=400_000.0),
            MACHINE,
        )
        ls = result.latency_sensitive()
        assert ls.first_completion_period is not None
        assert ls.instructions_retired == pytest.approx(
            400_000.0, rel=0.01
        )

    def test_series_recorded_per_period(self):
        result = fast_solo(
            synthetic.streamer(lines=20_000, instructions=300_000.0),
            MACHINE,
        )
        ls = result.latency_sensitive()
        assert len(ls.samples) == result.total_periods
        assert ls.total_llc_misses() > 0

    def test_heavier_workload_runs_longer(self):
        light = fast_solo(
            synthetic.compute_bound(instructions=300_000.0), MACHINE
        )
        heavy = fast_solo(
            synthetic.pointer_chaser(
                lines=3 * L3, instructions=300_000.0
            ),
            MACHINE,
        )
        assert (
            heavy.latency_sensitive().completion_periods
            > 2 * light.latency_sensitive().completion_periods
        )

    def test_duplicate_core_rejected(self):
        with pytest.raises(SchedulingError):
            StatisticalEngine(
                MACHINE,
                [
                    SimProcess(synthetic.compute_bound(), 0, name="a"),
                    SimProcess(synthetic.compute_bound(), 0, name="b"),
                ],
            )


class TestContention:
    def test_streamer_slows_reuse_victim(self):
        victim = synthetic.zipf_worker(
            lines=int(0.8 * L3), alpha=0.5, instructions=400_000.0
        )
        contender = synthetic.streamer(
            lines=4 * L3, instructions=200_000.0
        )
        solo = fast_solo(victim, MACHINE)
        colo = fast_colocated(victim, contender, MACHINE)
        assert slowdown(colo, solo) > 1.1

    def test_compute_bound_victim_unharmed(self):
        victim = synthetic.compute_bound(instructions=400_000.0)
        contender = synthetic.streamer(
            lines=4 * L3, instructions=200_000.0
        )
        solo = fast_solo(victim, MACHINE)
        colo = fast_colocated(victim, contender, MACHINE)
        assert slowdown(colo, solo) < 1.05

    def test_paused_contender_footprint_decays(self):
        """The transient the shutter depends on exists here too."""
        victim = synthetic.zipf_worker(
            lines=int(0.8 * L3), alpha=0.5, instructions=500_000.0
        )
        contender = synthetic.streamer(
            lines=4 * L3, instructions=200_000.0
        )
        pauses = []

        def factory(engine):
            def hook(eng, period, samples):
                # Pause the batch for a long stretch mid-run.
                name = next(
                    n for n, p in eng.processes.items()
                    if p.app_class is AppClass.BATCH
                )
                eng.set_paused(name, 40 <= period < 90)
                pauses.append(samples)

            return hook

        result = fast_colocated(
            victim, contender, MACHINE, caer_factory=factory
        )
        ls = result.latency_sensitive()
        series = ls.llc_miss_series()
        during_colo = sum(series[25:40]) / 15
        after_recovery = sum(series[70:90]) / 20
        # With the contender parked, the victim reclaims cache and its
        # misses fall substantially.
        assert after_recovery < 0.7 * during_colo


class TestCaerOnStatisticalEngine:
    def test_rule_based_protects(self):
        mcf = benchmark("429.mcf", L3, length=0.5)
        lbm = benchmark("470.lbm", L3, length=0.5)
        solo = fast_solo(mcf, MACHINE)
        raw = fast_colocated(mcf, lbm, MACHINE)
        managed = fast_colocated(
            mcf, lbm, MACHINE,
            caer_factory=caer_factory(CaerConfig.rule_based()),
        )
        # The statistical model underestimates mcf's absolute penalty
        # (no inclusion victims, no set conflicts) but must keep the
        # ordinal story: a real raw penalty, removed by CAER.
        raw_penalty = slowdown(raw, solo) - 1.0
        managed_penalty = slowdown(managed, solo) - 1.0
        assert raw_penalty > 0.05
        assert managed_penalty < 0.6 * raw_penalty
        assert utilization_gained(managed) < 0.3

    def test_insensitive_victim_keeps_utilization(self):
        namd = benchmark("444.namd", L3, length=0.5)
        lbm = benchmark("470.lbm", L3, length=0.5)
        managed = fast_colocated(
            namd, lbm, MACHINE,
            caer_factory=caer_factory(CaerConfig.rule_based()),
        )
        assert utilization_gained(managed) > 0.6

    def test_batch_actually_pauses(self):
        mcf = benchmark("429.mcf", L3, length=0.4)
        lbm = benchmark("470.lbm", L3, length=0.4)
        managed = fast_colocated(
            mcf, lbm, MACHINE,
            caer_factory=caer_factory(CaerConfig.rule_based()),
            batch_name="batch",
        )
        assert ProcessState.PAUSED in managed.process("batch").states
        assert managed.caer_log


class TestCrossValidation:
    """The two engines must tell the same story."""

    @pytest.mark.parametrize(
        "name,band",
        [("429.mcf", (1.05, 2.0)), ("444.namd", (0.97, 1.08))],
    )
    def test_raw_slowdown_band_matches_trace_engine(self, name, band):
        from repro.sim import run_colocated, run_solo

        spec = benchmark(name, L3, length=0.06)
        lbm = benchmark("470.lbm", L3, length=0.06)
        trace_solo = run_solo(spec, MACHINE)
        trace_colo = run_colocated(spec, lbm, MACHINE)
        trace = slowdown(trace_colo, trace_solo)
        fast_s = fast_solo(spec, MACHINE)
        fast_c = fast_colocated(spec, lbm, MACHINE)
        fast = slowdown(fast_c, fast_s)
        low, high = band
        assert low <= trace <= high or trace == pytest.approx(low, 0.1)
        assert low <= fast <= high

    def test_speedup_over_trace_engine(self):
        """The statistical engine must be far faster (typically ~30x;
        the bound is loose because wall-clock timing on a shared CI
        machine is noisy)."""
        import time

        spec = benchmark("429.mcf", L3, length=0.5)
        lbm = benchmark("470.lbm", L3, length=0.5)
        from repro.sim import run_colocated

        t0 = time.time()
        run_colocated(spec, lbm, MACHINE)
        trace_seconds = time.time() - t0
        t0 = time.time()
        fast_colocated(spec, lbm, MACHINE)
        fast_seconds = time.time() - t0
        assert fast_seconds < trace_seconds / 4
