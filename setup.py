"""Legacy setup shim (see setup.cfg for metadata).

The offline environment ships setuptools without the ``wheel`` package,
so pip's PEP 660 editable path (which builds a wheel) cannot run.  With
this ``setup.py`` present and no ``[build-system]`` table in
``pyproject.toml``, ``pip install -e .`` falls back to the legacy
``setup.py develop`` route, which works without wheel.
"""

from setuptools import setup

setup()
