"""The statistical engine: closed-form period stepping.

Each period, for every runnable process:

1. the current phase's miss-rate curve is evaluated at the process's
   *current* L3 occupancy (plus the private levels at their fixed
   sizes) to get the hit-level split;
2. the per-access cost follows the trace engine's core model (compute
   cycles + latency-weighted stalls over the phase's MLP), including
   last period's memory queueing delay;
3. the period's cycle budget (scaled by any DVFS directive) converts
   into accesses, instructions, and misses;
4. the shared-L3 occupancy state advances: every process inserts its
   missed lines, and when the cache overflows the excess is charged
   mostly to the *inserters* (LRU protects re-referenced lines, and a
   process's own insertions are what push its unprotected tail out)
   plus a small occupancy leak, so an idle footprint still decays over
   tens of periods — giving CAER's detectors realistic transients
   (a paused contender's lines drain as the victim reclaims them);
5. per-process PMU samples are assembled and handed to the period
   hooks, exactly as the trace engine does.

Occupancy quotas (the cache-partition response) cap step 4's insertion
for the quota'd process.  Probe overhead shrinks the cycle budget as in
the trace engine.
"""

from __future__ import annotations

from typing import Callable, Iterable

from ..analytic.mrc import MissRateCurve
from ..arch.memory import MAX_RHO
from ..arch.pmu import PMUSample
from ..config import MachineConfig
from ..errors import SchedulingError, SimulationError
from ..faults import FaultInjector, FaultPlan
from ..obs import NULL_TRACER, PROFILER, MetricsRegistry, Tracer
from ..sim.engine import PeriodHook
from ..sim.process import ProcessState, SimProcess
from ..sim.results import ProcessResult, RunResult

#: Accesses sampled per phase when building miss-rate curves.
PROFILE_SAMPLES = 40_000

#: Default per-probe cost, matching the perfmon layer.
DEFAULT_PROBE_OVERHEAD_CYCLES = 20.0


class _MachineView:
    """The minimal chip surface CAER needs (``engine.chip.machine``)."""

    def __init__(self, machine: MachineConfig):
        self.machine = machine


class _ProcessModel:
    """Analytic state of one process: phase profiles + L3 occupancy."""

    def __init__(self, proc: SimProcess, machine: MachineConfig):
        import numpy as np

        self.proc = proc
        self.machine = machine
        self.occupancy = 0.0
        #: first-touch (compulsory) misses still owed; unlike the MRC's
        #: constant cold fraction these happen once per footprint.
        self.cold_remaining = float(proc.spec.footprint_lines() or 0)
        # Profile each phase's pattern once (the statistical engine's
        # only expensive step).
        self.mrcs: dict[int, MissRateCurve] = {}
        rng = np.random.default_rng(proc.seed)
        for index, phase in enumerate(proc.spec.phases):
            pattern = phase.pattern.instantiate(rng, base=0)
            self.mrcs[index] = MissRateCurve.from_pattern(
                pattern, PROFILE_SAMPLES
            )

    def current_mrc(self) -> MissRateCurve:
        index = self.proc.workload._phase_index
        return self.mrcs[index]

    def step_cost(self, queue_delay: float) -> tuple[float, float, float]:
        """(cycles/access, L3-reference fraction, miss fraction).

        The MRC's compulsory floor is removed from the steady miss
        fraction — first touches are charged from ``cold_remaining``
        instead, once — and added back while the cold budget lasts.
        """
        machine = self.machine
        lat = machine.latencies
        phase = self.proc.current_phase()
        mrc = self.current_mrc()
        # Only the transient portion of the cold misses is exempt from
        # steady state.  Single-touch lines (the MRC cannot see their
        # revisits) keep missing exactly while the cache does not hold
        # the whole footprint: a zipf tail is safe once resident, a
        # beyond-cache walk never is.
        transient = (
            mrc.transient_cold_fraction
            if self.cold_remaining > 0
            else 0.0
        )
        footprint = float(mrc.footprint())
        singles_resident = self.occupancy >= 0.95 * min(
            footprint, float(machine.l3.capacity_lines)
        ) and footprint <= machine.l3.capacity_lines
        h1 = mrc.hit_rate(machine.l1.capacity_lines)
        h2 = max(h1, mrc.hit_rate(machine.l2.capacity_lines))
        l3_reach = max(
            machine.l2.capacity_lines,
            min(self.occupancy, machine.l3.capacity_lines),
        )
        h3 = max(h2, mrc.hit_rate(l3_reach))
        exempt = mrc.transient_cold_fraction - transient
        if singles_resident:
            exempt += mrc.singleton_fraction
        miss_fraction = max(0.0, (1.0 - h3) - exempt)
        reference_fraction = max(
            miss_fraction, max(0.0, (1.0 - h2) - exempt)
        )
        stall = (
            max(0.0, reference_fraction - miss_fraction)
            * (lat.l3 - lat.l1)
            + max(0.0, (h2 - h1)) * (lat.l2 - lat.l1)
            + miss_fraction * (lat.memory + queue_delay - lat.l1)
        )
        cost = (
            phase.compute_cycles_per_access + stall / phase.overlap
        )
        return cost, reference_fraction, miss_fraction


class StatisticalEngine:
    """Drives processes period by period in closed form.

    API-compatible with :class:`repro.sim.engine.SimulationEngine` for
    everything the CAER runtime and the metrics touch: ``processes``,
    ``chip.machine``, ``set_paused``/``set_speed``/``set_l3_quota``,
    ``log_decision``, ``run(stop_when)``, and the resulting
    :class:`~repro.sim.results.RunResult`.
    """

    def __init__(
        self,
        machine: MachineConfig,
        processes: Iterable[SimProcess],
        period_hooks: Iterable[PeriodHook] = (),
        max_periods: int = 500_000,
        probe_overhead_cycles: float = DEFAULT_PROBE_OVERHEAD_CYCLES,
        service_cycles: float = 36.0,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultPlan | None = None,
    ):
        # Same passive-observability seam as the trace engine: the CAER
        # runtime reads ``engine.tracer``/``engine.metrics`` via getattr,
        # so attaching them here makes statistical runs traceable too.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._fault_injector: FaultInjector | None = None
        if faults is not None and not faults.is_null():
            self._fault_injector = FaultInjector(
                faults, tracer=self.tracer, metrics=metrics
            )
        self.machine = machine
        self.chip = _MachineView(machine)
        self.processes: dict[str, SimProcess] = {}
        self._models: dict[str, _ProcessModel] = {}
        used_cores: set[int] = set()
        for proc in processes:
            if proc.name in self.processes:
                raise SchedulingError(
                    f"duplicate process name {proc.name!r}"
                )
            if proc.core_id in used_cores:
                raise SchedulingError(
                    f"core {proc.core_id} already has a process"
                )
            used_cores.add(proc.core_id)
            self.processes[proc.name] = proc
            self._models[proc.name] = _ProcessModel(proc, machine)
        if not self.processes:
            raise SchedulingError("no processes to run")
        self.period_hooks = list(period_hooks)
        self.max_periods = max_periods
        self.probe_overhead_cycles = probe_overhead_cycles
        self.service_cycles = service_cycles
        self.period = 0
        self._queue_delay = 0.0
        self._rho = 0.0
        self._pending_pause: dict[str, bool] = {}
        self._pending_speed: dict[str, float] = {}
        self._pending_quota: dict[str, float | None] = {}
        self._quotas: dict[str, float | None] = {
            name: None for name in self.processes
        }
        self.result = RunResult(
            machine_name=f"{machine.name}/statistical",
            period_cycles=machine.period_cycles,
        )
        for name, proc in self.processes.items():
            self.result.processes[name] = ProcessResult(
                name=name,
                app_class=proc.app_class,
                core_id=proc.core_id,
                launch_period=proc.launch_period,
            )

    # -- directive interface (CAER-compatible) ---------------------------

    def set_paused(self, name: str, paused: bool) -> None:
        """Request a throttle state change, effective next period."""
        if name not in self.processes:
            raise SchedulingError(f"no process named {name!r}")
        self._pending_pause[name] = paused

    def set_speed(self, name: str, factor: float) -> None:
        """Request a frequency-scaling change, effective next period."""
        if name not in self.processes:
            raise SchedulingError(f"no process named {name!r}")
        self._pending_speed[name] = factor

    def set_l3_quota(self, name: str, fraction: float | None) -> None:
        """Request an L3 occupancy cap, effective next period."""
        if name not in self.processes:
            raise SchedulingError(f"no process named {name!r}")
        self._pending_quota[name] = fraction

    def log_decision(self, record: dict) -> None:
        """Append a CAER decision record to the run log."""
        self.result.caer_log.append(record)

    def process(self, name: str) -> SimProcess:
        """Look up a live process by name."""
        try:
            return self.processes[name]
        except KeyError:
            raise SchedulingError(f"no process named {name!r}") from None

    # -- main loop --------------------------------------------------------

    def run(
        self,
        stop_when: Callable[["StatisticalEngine"], bool] | None = None,
    ) -> RunResult:
        """Run to completion and return the result record."""
        done = stop_when or _all_primary_finished
        while True:
            if done(self):
                break
            if self.period >= self.max_periods:
                raise SimulationError(
                    f"run exceeded max_periods={self.max_periods}"
                )
            if PROFILER.enabled:
                with PROFILER.span("profile.engine_period_seconds"):
                    self._step_period()
            else:
                self._step_period()
        self.result.total_periods = self.period
        self._finalise()
        return self.result

    def _step_period(self) -> None:
        period = self.period
        for proc in self.processes.values():
            if proc.state is ProcessState.WAITING and \
                    proc.launch_period <= period:
                proc.launch()
        states_at_start = {
            name: proc.state for name, proc in self.processes.items()
        }
        budget = max(
            0.0,
            self.machine.period_cycles - self.probe_overhead_cycles,
        )

        samples: dict[str, PMUSample] = {}
        insertions: dict[str, float] = {}
        total_misses = 0.0
        for name, proc in self.processes.items():
            if not proc.runnable:
                samples[name] = PMUSample.zero()
                insertions[name] = 0.0
                continue
            model = self._models[name]
            cost, reference_fraction, miss_fraction = model.step_cost(
                self._queue_delay
            )
            cycles = budget * proc.speed_factor
            accesses = cycles / cost
            phase = proc.current_phase()
            instructions = accesses * phase.instructions_per_access
            remaining = proc.workload.instructions_remaining
            if instructions >= remaining:
                fraction = remaining / instructions
                accesses *= fraction
                cycles *= fraction
                instructions = remaining
            # Phase rotation note: a period's instructions are all
            # priced at the period-start phase, so a boundary crossed
            # mid-period is attributed one period late — the same
            # granularity CAER itself observes at.
            self._account_instructions(proc, instructions)
            misses = accesses * miss_fraction
            cold_spent = min(
                model.cold_remaining,
                accesses * model.current_mrc().transient_cold_fraction,
            )
            model.cold_remaining -= cold_spent
            total_misses += misses
            insertions[name] = misses
            samples[name] = PMUSample(
                cycles=cycles,
                instructions=instructions,
                llc_misses=int(misses),
                llc_references=int(accesses * reference_fraction),
                l2_misses=int(accesses * reference_fraction),
                l1_misses=int(accesses * reference_fraction),
                back_invalidations=0,
                lines_stolen=0,
            )
            if proc.finished:
                proc.note_completion(period)
                if proc.relaunch:
                    # A fresh instance reuses the same phase profiles.
                    pass

        self._advance_occupancy(insertions)
        self._advance_memory(total_misses)

        for name, proc in self.processes.items():
            record = self.result.processes[name]
            record.record(
                states_at_start[name],
                samples[name],
                speed=proc.speed_factor,
            )
            if proc.state is ProcessState.RUNNING:
                proc.periods_running += 1
            elif proc.state is ProcessState.PAUSED:
                proc.periods_paused += 1
        # The physical records above always keep the true samples; the
        # hooks (CAER) observe the fault channel's perturbation of them.
        observed = samples
        if self._fault_injector is not None:
            observed = self._fault_injector.observe_all(period, samples)
        for hook in self.period_hooks:
            hook(self, period, observed)

        for name, paused in self._pending_pause.items():
            self.processes[name].set_paused(paused)
        self._pending_pause.clear()
        for name, factor in self._pending_speed.items():
            self.processes[name].set_speed(factor)
        self._pending_speed.clear()
        for name, fraction in self._pending_quota.items():
            self._quotas[name] = fraction
        self._pending_quota.clear()
        self.period += 1

    @staticmethod
    def _account_instructions(proc: SimProcess, instructions: float) -> None:
        """Advance the workload by a fractional instruction count."""
        workload = proc.workload
        phase = workload.current_phase()
        accesses = instructions / phase.instructions_per_access
        # account() is integer-access based; emulate fractional progress
        # by adjusting the remaining counters directly through repeated
        # whole-access accounting plus a remainder carried in-place.
        whole = int(accesses)
        if whole:
            workload.account(whole)
        remainder = (accesses - whole) * phase.instructions_per_access
        if remainder and not workload.finished:
            workload.instructions_retired += remainder
            workload._phase_remaining -= remainder
            workload._total_remaining -= remainder
            if workload._total_remaining <= 1e-9:
                workload.finished = True

    #: weight of resident occupancy (vs. fresh insertions) in the
    #: eviction split: small, so re-referenced footprints are mostly
    #: protected but idle ones still leak.
    OCCUPANCY_LEAK = 0.25

    def _advance_occupancy(self, insertions: dict[str, float]) -> None:
        capacity = float(self.machine.l3.capacity_lines)
        for name, inserted in insertions.items():
            model = self._models[name]
            quota = self._quotas[name]
            cap = capacity if quota is None else quota * capacity
            footprint = float(
                self.processes[name].spec.footprint_lines() or capacity
            )
            model.occupancy = min(
                model.occupancy + inserted, cap, footprint
            )
        total = sum(m.occupancy for m in self._models.values())
        overflow = total - capacity
        if overflow <= 0:
            return
        weights: dict[str, float] = {}
        for name, model in self._models.items():
            # A footprint small enough to be re-referenced every few
            # periods is LRU-protected against streaming insertions
            # (hits keep its lines at MRU); only occupancy beyond that
            # floor leaks.
            footprint = float(
                self.processes[name].spec.footprint_lines() or 0
            )
            protected = (
                footprint if footprint <= 0.25 * capacity else 0.0
            )
            leakable = max(0.0, model.occupancy - protected)
            weights[name] = (
                insertions[name] + self.OCCUPANCY_LEAK * leakable
            )
        weight_sum = sum(weights.values())
        if weight_sum <= 0:
            return
        for name, model in self._models.items():
            evicted = overflow * weights[name] / weight_sum
            model.occupancy = max(0.0, model.occupancy - evicted)

    def _advance_memory(self, total_misses: float) -> None:
        raw = min(
            total_misses * self.service_cycles
            / self.machine.period_cycles,
            MAX_RHO,
        )
        self._rho += 0.5 * (raw - self._rho)
        self._queue_delay = (
            self.service_cycles * self._rho / (2.0 * (1.0 - self._rho))
        )

    def _finalise(self) -> None:
        for name, proc in self.processes.items():
            record = self.result.processes[name]
            record.completions = proc.completions
            record.first_completion_period = proc.first_completion_period
            record.instructions_retired = (
                proc.workload.instructions_retired
                + proc.completions * proc.spec.total_instructions
                if proc.relaunch
                else proc.workload.instructions_retired
            )


def _all_primary_finished(engine: StatisticalEngine) -> bool:
    primaries = [
        p for p in engine.processes.values() if not p.relaunch
    ]
    if not primaries:
        raise SimulationError(
            "all processes relaunch forever; pass an explicit stop_when"
        )
    return all(p.state is ProcessState.FINISHED for p in primaries)
