"""Canonical scenarios on the statistical engine."""

from __future__ import annotations

from typing import Callable

from ..config import MachineConfig
from ..sim.engine import PeriodHook
from ..sim.process import AppClass, SimProcess
from ..sim.results import RunResult
from ..sim.scenario import DEFAULT_LAUNCH_STAGGER
from ..workloads.base import WorkloadSpec
from .engine import StatisticalEngine


def fast_solo(
    spec: WorkloadSpec,
    machine: MachineConfig | None = None,
    seed: int = 0,
) -> RunResult:
    """Run one workload alone, analytically."""
    machine = machine or MachineConfig.scaled_nehalem()
    proc = SimProcess(
        spec, core_id=0, app_class=AppClass.LATENCY_SENSITIVE, seed=seed
    )
    return StatisticalEngine(machine, [proc]).run()


def fast_colocated(
    ls_spec: WorkloadSpec,
    batch_spec: WorkloadSpec,
    machine: MachineConfig | None = None,
    caer_factory: Callable[[StatisticalEngine], PeriodHook] | None = None,
    seed: int = 0,
    launch_stagger: int = DEFAULT_LAUNCH_STAGGER,
    batch_name: str | None = None,
) -> RunResult:
    """The paper's co-location scenario on the statistical engine."""
    machine = machine or MachineConfig.scaled_nehalem()
    batch = SimProcess(
        batch_spec,
        core_id=1,
        app_class=AppClass.BATCH,
        name=batch_name or f"{batch_spec.name}:batch",
        seed=seed + 7_919,
        launch_period=0,
        relaunch=True,
    )
    ls = SimProcess(
        ls_spec,
        core_id=0,
        app_class=AppClass.LATENCY_SENSITIVE,
        seed=seed,
        launch_period=launch_stagger,
    )
    engine = StatisticalEngine(machine, [ls, batch])
    if caer_factory is not None:
        engine.period_hooks.append(caer_factory(engine))
    return engine.run()
