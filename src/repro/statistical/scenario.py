"""Canonical scenarios on the statistical engine.

Process construction is shared with the trace engine
(:mod:`repro.sim.scenario`), so a given scenario places, names, seeds,
and staggers its processes identically on both engines — only the
period-stepping machinery differs.
"""

from __future__ import annotations

from typing import Callable

from ..config import MachineConfig
from ..sim.engine import PeriodHook
from ..sim.results import RunResult
from ..sim.scenario import (
    DEFAULT_LAUNCH_STAGGER,
    colocation_processes,
    latency_process,
)
from ..workloads.base import WorkloadSpec
from .engine import StatisticalEngine


def fast_solo(
    spec: WorkloadSpec,
    machine: MachineConfig | None = None,
    seed: int = 0,
) -> RunResult:
    """Run one workload alone, analytically."""
    machine = machine or MachineConfig.scaled_nehalem()
    return StatisticalEngine(
        machine, [latency_process(spec, seed=seed)]
    ).run()


def fast_colocated(
    ls_spec: WorkloadSpec,
    batch_spec: WorkloadSpec,
    machine: MachineConfig | None = None,
    caer_factory: Callable[[StatisticalEngine], PeriodHook] | None = None,
    seed: int = 0,
    launch_stagger: int = DEFAULT_LAUNCH_STAGGER,
    batch_name: str | None = None,
) -> RunResult:
    """The paper's co-location scenario on the statistical engine."""
    machine = machine or MachineConfig.scaled_nehalem()
    processes = colocation_processes(
        ls_spec, [batch_spec], seed=seed, launch_stagger=launch_stagger,
        batch_names=[batch_name],
    )
    engine = StatisticalEngine(machine, processes)
    if caer_factory is not None:
        engine.period_hooks.append(caer_factory(engine))
    return engine.run()


def fast_multi_colocated(
    ls_spec: WorkloadSpec,
    batch_specs: list[WorkloadSpec],
    machine: MachineConfig | None = None,
    caer_factory: Callable[[StatisticalEngine], PeriodHook] | None = None,
    seed: int = 0,
    launch_stagger: int = DEFAULT_LAUNCH_STAGGER,
) -> RunResult:
    """One victim against a group of contenders, analytically."""
    machine = machine or MachineConfig.scaled_nehalem()
    processes = colocation_processes(
        ls_spec, batch_specs, seed=seed, launch_stagger=launch_stagger,
        num_cores=machine.num_cores,
    )
    engine = StatisticalEngine(machine, processes)
    if caer_factory is not None:
        engine.period_hooks.append(caer_factory(engine))
    return engine.run()
