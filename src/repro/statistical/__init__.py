"""A statistical (analytic-resolution) twin of the trace-driven engine.

The trace engine simulates every memory access; this engine advances
whole probe periods in closed form using the same models the analytic
package cross-validates: per-phase miss-rate curves, a proportional
LRU occupancy state that evolves period by period, and the M/D/1 memory
channel.  It exposes the same period-hook interface, so the unmodified
:class:`repro.caer.runtime.CaerRuntime` runs on top of it — at two to
three orders of magnitude less cost per simulated period.

Use it for what statistics are good at — long-horizon screening, wide
parameter sweeps, full-length (``length=1.0``) campaigns — and the
trace engine for anything where per-access effects matter (set
conflicts, inclusion victims, exact interleavings).  The test-suite
cross-validates the two on slowdowns and on CAER's end-to-end
behaviour.
"""

from .engine import StatisticalEngine
from .scenario import fast_colocated, fast_multi_colocated, fast_solo

__all__ = [
    "StatisticalEngine",
    "fast_solo",
    "fast_colocated",
    "fast_multi_colocated",
]
