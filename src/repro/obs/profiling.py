"""Wall-clock span profiling — metrics-only, outside the trace contract.

Trace events must never carry wall-clock values (the determinism
contract in :mod:`repro.obs.events`); profiling spans do nothing *but*
carry wall-clock, so they live entirely in the metrics registry, whose
snapshots already admit host-time measurements (executor job spans).

The instrumented sites are the hot structural seams of a run:

* ``profile.engine_period_seconds`` — one engine probe period's slice
  execution (:meth:`repro.sim.engine.SimulationEngine._step_period`);
* ``profile.vector_classify_seconds`` / ``profile.vector_commit_seconds``
  — one tier-4 batch through the numpy kernel
  (:meth:`repro.arch.hierarchy.CacheHierarchy.vector_classify` /
  ``vector_commit``);
* ``profile.worker_dispatch_seconds`` — one warm-pool task,
  dispatch-to-result, observed parent-side.

Sites check a process-global :data:`PROFILER` whose disabled state is
one attribute read — the same price as a disabled tracer — so bare
engine/kernel use (the throughput benchmarks) pays nothing.
:func:`activate_profiling` arms the profiler around one run with that
run's registry; :func:`execute_run` does this automatically unless
``REPRO_PROFILE_SPANS=0``, so span histograms ride back on run
telemetry and surface in the campaign report's profiling section.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from time import perf_counter
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from .metrics import MetricsRegistry

#: Gate (default on): ``0``/``false``/``off`` keeps the profiler
#: dormant even when a run attaches a metrics registry.
PROFILE_ENV = "REPRO_PROFILE_SPANS"

#: Histogram bounds for span durations, in seconds.  Batches and
#: periods are microsecond-to-millisecond scale; worker dispatches run
#: to seconds.
SPAN_SECONDS_BUCKETS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4,
    1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 30.0,
)

#: Every profile-span histogram name starts with this.
PROFILE_PREFIX = "profile."


def spans_enabled() -> bool:
    """Whether :func:`activate_profiling` should arm the profiler."""
    return os.environ.get(PROFILE_ENV, "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


class SpanProfiler:
    """The process-global span sink; disabled until activated.

    ``enabled`` is a plain attribute so hot sites pay a single load
    when profiling is off (mirroring :class:`~repro.obs.Tracer`).  One
    run is active per process at a time — worker processes execute
    specs serially — so a single global is race-free.
    """

    __slots__ = ("enabled", "registry", "_cache", "_cache_registry")

    def __init__(self) -> None:
        self.enabled = False
        self.registry: "MetricsRegistry | None" = None
        self._cache: dict[str, object] = {}
        self._cache_registry: "MetricsRegistry | None" = None

    def observe(self, name: str, seconds: float) -> None:
        """Record one span into the active registry (no-op when off).

        Resolved :class:`~repro.obs.metrics.Histogram` instruments are
        cached per registry, so the per-span cost is two dict hits and
        the observe itself — the get-or-create walk happens once per
        span name per run.
        """
        registry = self.registry
        if registry is None:
            return
        if registry is not self._cache_registry:
            self._cache = {}
            self._cache_registry = registry
        histogram = self._cache.get(name)
        if histogram is None:
            histogram = registry.histogram(
                name, buckets=SPAN_SECONDS_BUCKETS
            )
            self._cache[name] = histogram
        histogram.observe(seconds)  # type: ignore[attr-defined]

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Context manager timing its body into histogram ``name``."""
        if not self.enabled:
            yield
            return
        started = perf_counter()
        try:
            yield
        finally:
            self.observe(name, perf_counter() - started)


#: The shared profiler every instrumentation site consults.
PROFILER = SpanProfiler()


@contextmanager
def activate_profiling(
    registry: "MetricsRegistry | None",
) -> Iterator[SpanProfiler]:
    """Arm :data:`PROFILER` with ``registry`` for the enclosed run.

    A no-op (profiler stays dormant) when ``registry`` is ``None`` or
    ``REPRO_PROFILE_SPANS`` disables spans; always restores the prior
    state, so nesting and exceptions are safe.
    """
    prior = (PROFILER.enabled, PROFILER.registry)
    if registry is not None and spans_enabled():
        PROFILER.enabled = True
        PROFILER.registry = registry
    try:
        yield PROFILER
    finally:
        PROFILER.enabled, PROFILER.registry = prior


class ProfileSpan:
    """An explicitly started span for call sites that cannot nest a
    ``with`` block cleanly; pairs :meth:`start` with :meth:`stop`.

    ``ProfileSpan("profile.x_seconds")`` records into the global
    profiler's registry when armed, else drops the measurement.
    """

    __slots__ = ("name", "_started")

    def __init__(self, name: str):
        self.name = name
        self._started: float | None = None

    def start(self) -> "ProfileSpan":
        if PROFILER.enabled:
            self._started = perf_counter()
        return self

    def stop(self) -> None:
        if self._started is not None:
            PROFILER.observe(self.name, perf_counter() - self._started)
            self._started = None

    def __enter__(self) -> "ProfileSpan":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
