"""Observability: period-level tracing and a metrics registry.

CAER's argument is about *online* behaviour — per-period PMU samples
driving detector verdicts and throttle directives — so this layer makes
that behaviour inspectable without changing it:

* :mod:`repro.obs.events` — typed, deterministic period-level events
  (PMU samples, detection inputs/verdicts, response directives, phase
  transitions);
* :mod:`repro.obs.tracer` — the :class:`Tracer` fan-out with a free
  disabled default (:data:`NULL_TRACER`), a bounded in-memory
  :class:`RingBufferSink`, and a rotating :class:`JSONLSink`;
* :mod:`repro.obs.metrics` — counters, gauges, and histograms in a
  :class:`MetricsRegistry` whose snapshots ride on run summaries and
  the campaign report.

The contract instrumented code must keep: tracing is *transparent* —
attaching any tracer or registry never changes a run's results (the
trace-transparency property tests enforce this), and a disabled tracer
costs one attribute check per instrumentation site.
"""

from .events import (
    EVENT_KINDS,
    DetectionEvent,
    FaultEvent,
    PhaseEvent,
    PMUSampleEvent,
    ResponseEvent,
    RunSpecEvent,
    TraceEvent,
)
from .metrics import (
    POW2_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from .tracer import (
    NULL_TRACER,
    JSONLSink,
    RingBufferSink,
    Sink,
    Tracer,
    read_jsonl,
)

__all__ = [
    "TraceEvent",
    "PMUSampleEvent",
    "DetectionEvent",
    "ResponseEvent",
    "PhaseEvent",
    "RunSpecEvent",
    "FaultEvent",
    "EVENT_KINDS",
    "Tracer",
    "NULL_TRACER",
    "Sink",
    "RingBufferSink",
    "JSONLSink",
    "read_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "POW2_BUCKETS",
    "SECONDS_BUCKETS",
]
