"""Observability: period-level tracing and a metrics registry.

CAER's argument is about *online* behaviour — per-period PMU samples
driving detector verdicts and throttle directives — so this layer makes
that behaviour inspectable without changing it:

* :mod:`repro.obs.events` — typed, deterministic period-level events
  (PMU samples, detection inputs/verdicts, response directives, phase
  transitions);
* :mod:`repro.obs.tracer` — the :class:`Tracer` fan-out with a free
  disabled default (:data:`NULL_TRACER`), a bounded in-memory
  :class:`RingBufferSink`, and a rotating :class:`JSONLSink`;
* :mod:`repro.obs.metrics` — counters, gauges, and histograms in a
  :class:`MetricsRegistry` whose snapshots ride on run summaries and
  the campaign report;
* :mod:`repro.obs.export` — Prometheus text exposition over those
  snapshots and the opt-in ``/metrics`` HTTP endpoint
  (``REPRO_METRICS_PORT``);
* :mod:`repro.obs.heartbeat` — best-effort progress beacons from
  warm-pool workers and the campaign parent (``REPRO_BEACON_DIR``),
  the substrate of ``repro-caer watch``;
* :mod:`repro.obs.profiling` — wall-clock span histograms
  (metrics-only, explicitly outside the no-wall-clock trace
  contract) around engine periods, vector-kernel batches, and worker
  dispatches.

The contract instrumented code must keep: tracing is *transparent* —
attaching any tracer or registry never changes a run's results (the
trace-transparency property tests enforce this), and a disabled tracer
costs one attribute check per instrumentation site.
"""

from .events import (
    EVENT_KINDS,
    DetectionEvent,
    FaultEvent,
    PhaseEvent,
    PMUSampleEvent,
    ResponseEvent,
    RunSpecEvent,
    TraceEvent,
)
from .export import (
    METRICS_PORT_ENV,
    MetricsExporter,
    exporter_port,
    render_prometheus,
    sanitize_metric_name,
    start_exporter,
)
from .heartbeat import (
    BEACON_DIR_ENV,
    beacon_age,
    beacon_dir,
    beacon_field,
    merge_beacon_metrics,
    read_beacons,
    scan_beacons,
    write_beacon,
)
from .metrics import (
    POW2_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
)
from .profiling import (
    PROFILE_ENV,
    PROFILE_PREFIX,
    PROFILER,
    SPAN_SECONDS_BUCKETS,
    ProfileSpan,
    SpanProfiler,
    activate_profiling,
    spans_enabled,
)
from .tracer import (
    NULL_TRACER,
    JSONLSink,
    RingBufferSink,
    Sink,
    Tracer,
    read_jsonl,
)

__all__ = [
    "TraceEvent",
    "PMUSampleEvent",
    "DetectionEvent",
    "ResponseEvent",
    "PhaseEvent",
    "RunSpecEvent",
    "FaultEvent",
    "EVENT_KINDS",
    "Tracer",
    "NULL_TRACER",
    "Sink",
    "RingBufferSink",
    "JSONLSink",
    "read_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "histogram_quantile",
    "POW2_BUCKETS",
    "SECONDS_BUCKETS",
    # live export
    "METRICS_PORT_ENV",
    "MetricsExporter",
    "exporter_port",
    "render_prometheus",
    "sanitize_metric_name",
    "start_exporter",
    # heartbeats
    "BEACON_DIR_ENV",
    "beacon_age",
    "beacon_dir",
    "merge_beacon_metrics",
    "read_beacons",
    "scan_beacons",
    "beacon_field",
    "write_beacon",
    # span profiling
    "PROFILE_ENV",
    "PROFILE_PREFIX",
    "PROFILER",
    "SPAN_SECONDS_BUCKETS",
    "ProfileSpan",
    "SpanProfiler",
    "activate_profiling",
    "spans_enabled",
]
