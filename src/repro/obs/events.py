"""Typed period-level trace events.

Every decision the runtime stack makes is reconstructible from four
event kinds, all keyed by the probe-period index:

* :class:`PMUSampleEvent` — what the hardware counters said about one
  process during one period (the raw input to everything else);
* :class:`DetectionEvent` — what the detection side saw and concluded:
  the heuristic's inputs (own/neighbour misses, windowed means), its
  threshold, the Figure 5 state it was in, and the verdict (``None``
  while evidence is still being gathered);
* :class:`ResponseEvent` — the throttle directive a response policy
  issued: pause, DVFS speed, L3 quota, and whether the response ended;
* :class:`PhaseEvent` — lifecycle edges: process launch/completion and
  the runtime's detect ↔ respond transitions.

Determinism contract: event payloads carry **no wall-clock values** —
time is expressed only as period indices — so a traced run serialises
bit-identically across hosts and re-runs, and tracing can be diffed
like any other run artefact.  (Wall-clock profiling lives in
:mod:`repro.obs.metrics`, which makes no such promise.)
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar, Union


@dataclass(frozen=True)
class PMUSampleEvent:
    """One process's counter deltas for one period."""

    kind: ClassVar[str] = "pmu_sample"

    period: int
    process: str
    state: str  # scheduling state held during the period
    cycles: float
    instructions: float
    llc_misses: int
    llc_references: int

    def to_dict(self) -> dict:
        """JSON-serialisable payload, ``kind`` included."""
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class DetectionEvent:
    """The detection side of one period: inputs, threshold, verdict.

    Emitted every period the CAER hook runs — including periods spent
    inside a response, where ``state`` says so and ``verdict`` is
    ``None`` — so the event count of a trace equals the run's period
    count and gaps are impossible.
    """

    kind: ClassVar[str] = "detection"

    period: int
    detector: str
    state: str  # "detect", "respond", "c-positive", "c-negative"
    own_misses: float
    neighbor_misses: float
    own_mean: float
    neighbor_mean: float
    threshold: float | None
    pause_self: bool
    verdict: bool | None

    def to_dict(self) -> dict:
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class ResponseEvent:
    """One period's throttle directive from the active response."""

    kind: ClassVar[str] = "response"

    period: int
    response: str
    verdict: bool  # the assertion the response is acting on
    pause_batch: bool
    speed: float
    l3_quota: float | None
    done: bool

    def to_dict(self) -> dict:
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class RunSpecEvent:
    """The identity of the run a trace belongs to, emitted at period 0.

    Carries the executing :class:`~repro.runspec.RunSpec`'s
    content-addressed digest plus the coordinates a human needs to
    rebuild the spec, so any trace file (or ring buffer) is
    self-describing: events can be joined back to the exact run
    description — and its cache entry — that produced them.
    """

    kind: ClassVar[str] = "run_spec"

    period: int
    digest: str
    backend: str
    victim: str
    contenders: int

    def to_dict(self) -> dict:
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class FaultEvent:
    """One injected PMU-signal fault (:mod:`repro.faults`).

    Emitted by the fault injector at the moment a perturbation is
    applied to a process's counter stream: ``fault`` names the
    perturbation kind (``drop``, ``stuck``, ``jitter``, ``noise``,
    ``saturate``, ``delay``) and ``magnitude`` its size in the kind's
    natural unit (the jitter scale factor, the saturation cap, 1.0 for
    the pure on/off kinds).  Like every trace event it carries no
    wall-clock values, so faulty runs stay bit-reproducible.
    """

    kind: ClassVar[str] = "fault"

    period: int
    process: str
    fault: str
    magnitude: float

    def to_dict(self) -> dict:
        return {"kind": self.kind, **asdict(self)}


@dataclass(frozen=True)
class PhaseEvent:
    """A lifecycle edge: ``scope`` names the state machine, ``subject``
    the instance, ``phase`` the state entered at ``period``."""

    kind: ClassVar[str] = "phase"

    period: int
    scope: str  # "process" or "caer"
    subject: str  # process name, or the runtime's detector name
    phase: str  # "launched", "completed", "detect", "respond"

    def to_dict(self) -> dict:
        return {"kind": self.kind, **asdict(self)}


#: Union of every event type a sink may receive.
TraceEvent = Union[
    PMUSampleEvent, DetectionEvent, ResponseEvent, PhaseEvent,
    RunSpecEvent, FaultEvent,
]

#: All event kinds, in emission-priority order (for reports).
EVENT_KINDS = (
    RunSpecEvent.kind,
    PMUSampleEvent.kind,
    FaultEvent.kind,
    DetectionEvent.kind,
    ResponseEvent.kind,
    PhaseEvent.kind,
)
