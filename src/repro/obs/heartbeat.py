"""Campaign heartbeats: progress beacons from workers and the parent.

The warm pool's result rings carry *outcomes*; beacons carry *status*.
When ``REPRO_BEACON_DIR`` is set, every warm-pool worker writes a small
JSON beacon file as it picks up and finishes each task, and the parent
campaign writes a ``campaign`` beacon as runs checkpoint — so any other
process (``repro-caer watch``, the Prometheus endpoint's provider) can
reconstruct in-flight campaign health without touching the task queues.

Beacons are plain JSON files, written atomically (unique temp name +
rename, the campaign cache's pattern) so a reader never observes a torn
payload; a corrupt or vanished beacon reads as absent, never as a
crash.  Writers swallow every error: heartbeats are best-effort
telemetry and must never fail a run.

Each beacon payload carries ``beacon`` (its name), ``pid``, ``seq`` (a
per-writer monotone counter, so watchers can detect progress without
trusting clocks) and ``ts`` (wall-clock, for staleness display only —
beacons never feed back into simulation, so the no-wall-clock trace
contract is untouched).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

#: When set, workers and campaigns drop beacon files in this directory.
BEACON_DIR_ENV = "REPRO_BEACON_DIR"

#: Bump when the beacon payload schema changes shape.
BEACON_VERSION = 1

#: Beacons older than this many seconds render as stale in ``watch``.
STALE_SECONDS = 30.0

_seq = 0


def beacon_dir() -> Path | None:
    """The configured beacon directory, or ``None`` when disabled."""
    value = os.environ.get(BEACON_DIR_ENV)
    if not value or not value.strip():
        return None
    return Path(value)


def write_beacon(
    directory: str | os.PathLike, name: str, payload: dict
) -> Path | None:
    """Atomically write ``<name>.json`` under ``directory``.

    Returns the written path, or ``None`` when anything went wrong —
    beacons are best-effort and never raise.
    """
    global _seq
    _seq += 1
    record = {
        "beacon": name,
        "version": BEACON_VERSION,
        "pid": os.getpid(),
        "seq": _seq,
        "ts": time.time(),
        **payload,
    }
    try:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.json"
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
    except Exception:
        return None


def scan_beacons(
    directory: str | os.PathLike,
) -> tuple[dict[str, dict], int]:
    """``(readable beacons, skipped count)`` under ``directory``.

    Corrupt, torn, or non-object beacon files are *skipped and
    counted* — the cache layer's corrupt-entry-equals-miss policy
    applied to telemetry, with the count surfaced so a sick writer is
    visible instead of silently absent.  Concurrently-deleted files
    and a missing directory read as no beacons (not as corruption).
    """
    beacons: dict[str, dict] = {}
    skipped = 0
    try:
        entries = sorted(Path(directory).glob("*.json"))
    except OSError:
        return beacons, skipped
    for path in entries:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            continue  # writer renamed/cleaned it mid-scan
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            skipped += 1
            continue
        if isinstance(payload, dict):
            beacons[path.stem] = payload
        else:
            skipped += 1
    return beacons, skipped


def read_beacons(directory: str | os.PathLike) -> dict[str, dict]:
    """Every readable beacon under ``directory``, keyed by name."""
    return scan_beacons(directory)[0]


def beacon_age(payload: dict, now: float | None = None) -> float:
    """Seconds since the beacon was written (``inf`` when unstamped)."""
    ts = payload.get("ts")
    if not isinstance(ts, (int, float)):
        return float("inf")
    return max(0.0, (now if now is not None else time.time()) - ts)


def beacon_field(payload: dict, key: str, default: float = 0.0) -> float:
    """A numeric beacon field, defensively coerced.

    Beacon payloads cross a filesystem boundary from arbitrary writer
    versions; a field that should be a number can arrive as a string,
    null, or garbage.  Anything non-coercible reads as ``default`` —
    ingestion must degrade, never crash.
    """
    value = payload.get(key, default)
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value)
        except ValueError:
            return default
    return default


def _beacon_kind(payload) -> str:
    if not isinstance(payload, dict):
        return ""
    kind = payload.get("beacon", "")
    return kind if isinstance(kind, str) else ""


def merge_beacon_metrics(
    beacons: dict[str, dict], invalid: int = 0
) -> dict[str, dict]:
    """Fold beacons into a metrics-snapshot fragment for the exporter.

    Worker beacons aggregate into pool-level instruments (completed /
    failed / reuse totals, workers alive and running right now);
    campaign beacons surface scheduled/completed/quarantined run
    gauges; fleet and per-node beacons surface fleet-wide placement
    health.  The fragment merges like any registry snapshot, so the
    endpoint serves one coherent namespace.  Every numeric field is
    defensively coerced (:func:`beacon_field`) and ``invalid`` — the
    skipped-file count from :func:`scan_beacons` — is exported as
    ``beacons.invalid``, so corrupt telemetry is visible, not fatal.
    """
    snapshot: dict[str, dict] = {}

    def gauge(name: str, value: float) -> None:
        snapshot[name] = {"type": "gauge", "value": float(value)}

    def counter(name: str, value: float) -> None:
        snapshot[name] = {"type": "counter", "value": float(value)}

    if invalid:
        counter("beacons.invalid", invalid)
    workers = [
        p for p in beacons.values()
        if _beacon_kind(p).startswith("worker")
    ]
    if workers:
        gauge("workerpool.workers", len(workers))
        gauge(
            "workerpool.workers_running",
            sum(1 for p in workers if p.get("state") == "running"),
        )
        counter(
            "workerpool.tasks_completed",
            sum(beacon_field(p, "tasks_completed") for p in workers),
        )
        counter(
            "workerpool.tasks_failed",
            sum(beacon_field(p, "tasks_failed") for p in workers),
        )
        counter(
            "workerpool.spec_reuse",
            sum(beacon_field(p, "reused_dispatches") for p in workers),
        )
        counter(
            "workerpool.detector_verdicts",
            sum(beacon_field(p, "detector_verdicts") for p in workers),
        )
        counter(
            "workerpool.detector_positives",
            sum(beacon_field(p, "detector_positives") for p in workers),
        )
    campaign = beacons.get("campaign")
    if isinstance(campaign, dict):
        for key, name in (
            ("runs_total", "campaign.beacon_runs_total"),
            ("runs_completed", "campaign.beacon_runs_completed"),
            ("runs_cached", "campaign.beacon_runs_cached"),
            ("quarantined", "campaign.beacon_quarantined"),
        ):
            value = campaign.get(key)
            if isinstance(value, (int, float)):
                gauge(name, value)
        gauge(
            "campaign.beacon_running",
            1.0 if campaign.get("state") == "running" else 0.0,
        )
    nodes = [
        p for p in beacons.values()
        if _beacon_kind(p).startswith("node-")
    ]
    if nodes:
        gauge("fleet.nodes_reporting", len(nodes))
        gauge(
            "fleet.nodes_contended",
            sum(1 for p in nodes if beacon_field(p, "contended")),
        )
        gauge(
            "fleet.nodes_straggling",
            sum(1 for p in nodes if beacon_field(p, "straggler")),
        )
        gauge(
            "fleet.jobs_running",
            sum(beacon_field(p, "jobs_running") for p in nodes),
        )
    fleet = beacons.get("fleet")
    if isinstance(fleet, dict):
        for key, name in (
            ("tick", "fleet.tick"),
            ("nodes", "fleet.nodes"),
            ("nodes_dead", "fleet.nodes_dead"),
            ("nodes_quarantined", "fleet.nodes_quarantined"),
            ("jobs_total", "fleet.jobs_total"),
            ("jobs_done", "fleet.jobs_done"),
            ("jobs_waiting", "fleet.jobs_waiting"),
            ("migrations", "fleet.migrations"),
        ):
            value = fleet.get(key)
            if isinstance(value, (int, float)):
                gauge(name, value)
        gauge(
            "fleet.running",
            1.0 if fleet.get("state") == "running" else 0.0,
        )
    return snapshot
