"""Campaign heartbeats: progress beacons from workers and the parent.

The warm pool's result rings carry *outcomes*; beacons carry *status*.
When ``REPRO_BEACON_DIR`` is set, every warm-pool worker writes a small
JSON beacon file as it picks up and finishes each task, and the parent
campaign writes a ``campaign`` beacon as runs checkpoint — so any other
process (``repro-caer watch``, the Prometheus endpoint's provider) can
reconstruct in-flight campaign health without touching the task queues.

Beacons are plain JSON files, written atomically (unique temp name +
rename, the campaign cache's pattern) so a reader never observes a torn
payload; a corrupt or vanished beacon reads as absent, never as a
crash.  Writers swallow every error: heartbeats are best-effort
telemetry and must never fail a run.

Each beacon payload carries ``beacon`` (its name), ``pid``, ``seq`` (a
per-writer monotone counter, so watchers can detect progress without
trusting clocks) and ``ts`` (wall-clock, for staleness display only —
beacons never feed back into simulation, so the no-wall-clock trace
contract is untouched).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

#: When set, workers and campaigns drop beacon files in this directory.
BEACON_DIR_ENV = "REPRO_BEACON_DIR"

#: Bump when the beacon payload schema changes shape.
BEACON_VERSION = 1

#: Beacons older than this many seconds render as stale in ``watch``.
STALE_SECONDS = 30.0

_seq = 0


def beacon_dir() -> Path | None:
    """The configured beacon directory, or ``None`` when disabled."""
    value = os.environ.get(BEACON_DIR_ENV)
    if not value or not value.strip():
        return None
    return Path(value)


def write_beacon(
    directory: str | os.PathLike, name: str, payload: dict
) -> Path | None:
    """Atomically write ``<name>.json`` under ``directory``.

    Returns the written path, or ``None`` when anything went wrong —
    beacons are best-effort and never raise.
    """
    global _seq
    _seq += 1
    record = {
        "beacon": name,
        "version": BEACON_VERSION,
        "pid": os.getpid(),
        "seq": _seq,
        "ts": time.time(),
        **payload,
    }
    try:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.json"
        fd, tmp = tempfile.mkstemp(
            dir=directory, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path
    except Exception:
        return None


def read_beacons(directory: str | os.PathLike) -> dict[str, dict]:
    """Every readable beacon under ``directory``, keyed by name.

    Corrupt, torn, or concurrently-deleted files are skipped; a missing
    directory reads as no beacons.
    """
    beacons: dict[str, dict] = {}
    try:
        entries = sorted(Path(directory).glob("*.json"))
    except OSError:
        return beacons
    for path in entries:
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if isinstance(payload, dict):
            beacons[path.stem] = payload
    return beacons


def beacon_age(payload: dict, now: float | None = None) -> float:
    """Seconds since the beacon was written (``inf`` when unstamped)."""
    ts = payload.get("ts")
    if not isinstance(ts, (int, float)):
        return float("inf")
    return max(0.0, (now if now is not None else time.time()) - ts)


def merge_beacon_metrics(beacons: dict[str, dict]) -> dict[str, dict]:
    """Fold beacons into a metrics-snapshot fragment for the exporter.

    Worker beacons aggregate into pool-level instruments (completed /
    failed / reuse totals, workers alive and running right now);
    campaign beacons surface scheduled/completed/quarantined run
    gauges.  The fragment merges like any registry snapshot, so the
    endpoint serves one coherent namespace.
    """
    snapshot: dict[str, dict] = {}

    def gauge(name: str, value: float) -> None:
        snapshot[name] = {"type": "gauge", "value": float(value)}

    def counter(name: str, value: float) -> None:
        snapshot[name] = {"type": "counter", "value": float(value)}

    workers = [
        p for p in beacons.values() if p.get("beacon", "").startswith("worker")
    ]
    if workers:
        gauge("workerpool.workers", len(workers))
        gauge(
            "workerpool.workers_running",
            sum(1 for p in workers if p.get("state") == "running"),
        )
        counter(
            "workerpool.tasks_completed",
            sum(p.get("tasks_completed", 0) for p in workers),
        )
        counter(
            "workerpool.tasks_failed",
            sum(p.get("tasks_failed", 0) for p in workers),
        )
        counter(
            "workerpool.spec_reuse",
            sum(p.get("reused_dispatches", 0) for p in workers),
        )
        counter(
            "workerpool.detector_verdicts",
            sum(p.get("detector_verdicts", 0) for p in workers),
        )
        counter(
            "workerpool.detector_positives",
            sum(p.get("detector_positives", 0) for p in workers),
        )
    campaign = beacons.get("campaign")
    if campaign is not None:
        for key, name in (
            ("runs_total", "campaign.beacon_runs_total"),
            ("runs_completed", "campaign.beacon_runs_completed"),
            ("runs_cached", "campaign.beacon_runs_cached"),
            ("quarantined", "campaign.beacon_quarantined"),
        ):
            value = campaign.get(key)
            if isinstance(value, (int, float)):
                gauge(name, value)
        gauge(
            "campaign.beacon_running",
            1.0 if campaign.get("state") == "running" else 0.0,
        )
    return snapshot
