"""Live telemetry export: Prometheus text exposition over HTTP.

The registry (:mod:`repro.obs.metrics`) snapshots into plain dicts;
this module renders those snapshots in the Prometheus text exposition
format (version 0.0.4) and, opt-in, serves them from a background HTTP
endpoint so an in-flight campaign can be scraped mid-run:

* :func:`render_prometheus` — counters become ``_total`` counters,
  gauges pass through, histograms become cumulative ``_bucket{le=...}``
  series with ``_sum``/``_count``, every family prefixed with
  ``# HELP``/``# TYPE`` lines and namespaced ``repro_``;
* :class:`MetricsExporter` — a daemon-thread HTTP server whose
  ``/metrics`` handler calls a *provider* callable on every scrape, so
  the payload always reflects the current merged registry (the
  campaign's provider folds in per-run telemetry and worker heartbeats
  as they arrive);
* ``REPRO_METRICS_PORT`` — the CLI gate: when set, the campaign serves
  its merged registry on that port (0 = any free port).

Everything here is read-only over snapshots: serving metrics can never
change a run, and the exporter-on/off bit-identity property tests pin
that (`tests/obs/test_transparency.py`).
"""

from __future__ import annotations

import os
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Mapping

from ..errors import ObservabilityError

#: When set, ``repro-caer`` serves the campaign's merged metrics on
#: this port (``0`` binds any free port); unset disables the endpoint.
METRICS_PORT_ENV = "REPRO_METRICS_PORT"

#: Namespace every exported metric name is prefixed with.
NAMESPACE = "repro"

#: Prometheus metric names: ``[a-zA-Z_:][a-zA-Z0-9_:]*``.
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_FIRST = re.compile(r"^[^a-zA-Z_:]")

#: Exposition content type (text format 0.0.4).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def exporter_port() -> int | None:
    """The ``REPRO_METRICS_PORT`` setting, or ``None`` when unset.

    ``0`` is valid (bind any free port); non-integers and negative
    values raise :class:`ObservabilityError`.
    """
    value = os.environ.get(METRICS_PORT_ENV)
    if value is None or not value.strip():
        return None
    try:
        port = int(value)
    except ValueError:
        raise ObservabilityError(
            f"{METRICS_PORT_ENV} must be an integer port, got {value!r}"
        ) from None
    if port < 0 or port > 65535:
        raise ObservabilityError(
            f"{METRICS_PORT_ENV} must be in [0, 65535], got {port}"
        )
    return port


def sanitize_metric_name(name: str) -> str:
    """Map a registry name onto the Prometheus grammar.

    Dots (the registry's namespace separator) and every other invalid
    character become underscores; a name that would start with a digit
    is prefixed with one.  ``sim.llc_misses_per_period.lbm-0`` →
    ``sim_llc_misses_per_period_lbm_0``.
    """
    if not name:
        raise ObservabilityError("metric name must be non-empty")
    cleaned = _INVALID_CHARS.sub("_", name)
    if _INVALID_FIRST.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float | int | None) -> str:
    """A float in exposition syntax (NaN for missing observations)."""
    if value is None:
        return "NaN"
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(
    snapshot: Mapping[str, Mapping],
    namespace: str = NAMESPACE,
    help_text: Mapping[str, str] | None = None,
) -> str:
    """Render a registry snapshot as Prometheus text exposition.

    ``snapshot`` is :meth:`~repro.obs.MetricsRegistry.snapshot` output
    (or a :func:`~repro.obs.merge_snapshots` merge of several).
    Counters gain the conventional ``_total`` suffix; histogram bucket
    counts — stored per-bucket in the snapshot — are emitted as the
    cumulative ``le``-labelled series Prometheus expects, closed by
    ``le="+Inf"``.  Two registry names that sanitize to the same
    exposition name keep only the first (sorted) occurrence, so the
    output never declares a family twice.
    """
    prefix = sanitize_metric_name(namespace) + "_" if namespace else ""
    help_text = help_text or {}
    lines: list[str] = []
    seen: set[str] = set()
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        base = prefix + sanitize_metric_name(name)
        if kind == "counter":
            base += "_total"
        if base in seen:
            continue
        seen.add(base)
        help_line = help_text.get(name, f"repro metric {name}")
        if kind == "counter":
            lines.append(f"# HELP {base} {help_line}")
            lines.append(f"# TYPE {base} counter")
            lines.append(f"{base} {_format_value(data['value'])}")
        elif kind == "gauge":
            lines.append(f"# HELP {base} {help_line}")
            lines.append(f"# TYPE {base} gauge")
            lines.append(f"{base} {_format_value(data['value'])}")
        elif kind == "histogram":
            lines.append(f"# HELP {base} {help_line}")
            lines.append(f"# TYPE {base} histogram")
            cumulative = 0
            for bound, count in zip(data["buckets"], data["counts"]):
                cumulative += count
                lines.append(
                    f'{base}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            total = cumulative + data["counts"][len(data["buckets"])]
            lines.append(f'{base}_bucket{{le="+Inf"}} {total}')
            lines.append(f"{base}_sum {_format_value(data['sum'])}")
            lines.append(f"{base}_count {data['count']}")
        # unknown types are skipped: exposition must stay parseable
    return "\n".join(lines) + "\n" if lines else ""


class MetricsExporter:
    """A background ``/metrics`` endpoint over a snapshot provider.

    ``provider`` is called on every scrape and must return a snapshot
    dict (:meth:`~repro.obs.MetricsRegistry.snapshot` shape); the
    campaign passes a closure that merges its registry, the per-run
    telemetry gathered so far, and any worker heartbeats — so two
    scrapes of an in-flight campaign observe monotonically advancing
    completed-run counters.  The serving thread is a daemon: it never
    keeps the process alive, and a provider exception surfaces as an
    HTTP 500, never a crash of the campaign.
    """

    def __init__(
        self,
        provider: Callable[[], Mapping[str, Mapping]],
        port: int = 0,
        host: str = "127.0.0.1",
    ):
        self.provider = provider
        exporter = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.rstrip("/") in ("", "/metrics"):
                    try:
                        body = render_prometheus(exporter.provider())
                    except Exception as exc:  # serve, never crash
                        self.send_response(500)
                        self.send_header("Content-Type", "text/plain")
                        self.end_headers()
                        self.wfile.write(
                            f"provider error: {exc!r}\n".encode()
                        )
                        return
                    payload = body.encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                    self.send_header("Content-Length", str(len(payload)))
                    self.end_headers()
                    self.wfile.write(payload)
                else:
                    self.send_response(404)
                    self.end_headers()

            def log_message(self, *args: object) -> None:
                """Scrapes are routine; keep stderr quiet."""

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.host = host
        #: The actually bound port (meaningful when asked for port 0).
        self.port = self._server.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsExporter":
        """Begin serving on the daemon thread; returns self."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"repro-metrics-exporter-{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=2.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "serving" if self._thread is not None else "stopped"
        return f"MetricsExporter({self.url}, {state})"


def start_exporter(
    provider: Callable[[], Mapping[str, Mapping]],
    port: int | None = None,
) -> MetricsExporter | None:
    """Start an exporter when ``REPRO_METRICS_PORT`` (or ``port``) asks.

    Returns the running exporter, or ``None`` when no port is
    configured — callers can unconditionally ``if exporter:`` around
    the result.
    """
    if port is None:
        port = exporter_port()
    if port is None:
        return None
    return MetricsExporter(provider, port=port).start()
