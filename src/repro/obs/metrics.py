"""A zero-dependency counter/gauge/histogram registry.

The registry is the *aggregate* side of the observability layer: where
the tracer records every decision, the registry keeps cheap running
totals — detector trigger counts, batch run-fractions, per-period
LLC-miss distributions, executor job wall-times — that snapshot into a
plain JSON-serialisable dict carried on :class:`RunSummary` records and
rendered in the campaign report.

Unlike trace events, metric values may legitimately contain wall-clock
measurements (executor spans); the determinism contract covers only
simulation-derived metrics, which depend solely on the run's inputs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

from ..errors import ObservabilityError

#: Default histogram boundaries: powers of two, good for count-like
#: distributions such as misses-per-period.
POW2_BUCKETS = tuple(2.0 ** i for i in range(0, 15))

#: Default boundaries for wall-clock spans, in seconds.
SECONDS_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counters only go up; got inc({amount})"
            )
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A value that can move both ways (last write wins)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.value})"


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max.

    ``buckets`` are upper bounds (inclusive), strictly increasing; an
    implicit overflow bucket catches everything above the last bound.
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "total", "count", "min", "max")

    def __init__(self, buckets: Sequence[float] = POW2_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError("histogram needs >= 1 bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"bucket bounds must strictly increase: {bounds}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q`` quantile.

        A bucket-resolution estimate (the overflow bucket reports the
        observed maximum); 0 <= q <= 1.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1]: {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.max if self.max is not None else 0.0
        return self.max if self.max is not None else 0.0

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
            "min": self.min,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, mean={self.mean:.3g})"


class MetricsRegistry:
    """Named metrics with get-or-create accessors.

    Re-requesting a name returns the existing instrument; requesting it
    as a different type is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ObservabilityError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested as {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, "gauge")

    def histogram(
        self, name: str, buckets: Sequence[float] = POW2_BUCKETS
    ) -> Histogram:
        return self._get(name, lambda: Histogram(buckets), "histogram")

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict]:
        """Plain-data view of every metric, JSON-serialisable.

        Sorts a point-in-time copy of the table, so a concurrent
        reader (the live exporter's serving thread) never trips over
        an instrument being registered mid-iteration.
        """
        return {
            name: metric.snapshot()
            for name, metric in sorted(list(self._metrics.items()))
        }

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"


def merge_snapshots(snapshots: Iterable[dict[str, dict]]) -> dict[str, dict]:
    """Aggregate snapshots from several runs into one.

    Counters and histograms add; gauges keep the last value seen.
    Unknown metric types pass through last-wins.
    """
    merged: dict[str, dict] = {}
    for snapshot in snapshots:
        for name, data in snapshot.items():
            have = merged.get(name)
            if have is None or have.get("type") != data.get("type"):
                merged[name] = json_copy(data)
            elif data["type"] == "counter":
                have["value"] += data["value"]
            elif data["type"] == "histogram":
                if have["buckets"] != data["buckets"]:
                    merged[name] = json_copy(data)
                    continue
                have["counts"] = [
                    a + b for a, b in zip(have["counts"], data["counts"])
                ]
                have["sum"] += data["sum"]
                have["count"] += data["count"]
                for key, pick in (("min", min), ("max", max)):
                    values = [
                        v for v in (have[key], data[key]) if v is not None
                    ]
                    have[key] = pick(values) if values else None
            else:  # gauge and anything unrecognised: last wins
                merged[name] = json_copy(data)
    return merged


def histogram_quantile(snapshot: dict, q: float) -> float:
    """Bucket-resolution quantile of a *snapshot* histogram entry.

    The same estimate :meth:`Histogram.quantile` computes, but over the
    plain-dict form that rides on run telemetry and report merges
    (the overflow bucket reports the observed maximum).
    """
    if not 0.0 <= q <= 1.0:
        raise ObservabilityError(f"quantile must be in [0, 1]: {q}")
    count = snapshot.get("count", 0)
    if not count:
        return 0.0
    buckets = snapshot["buckets"]
    maximum = snapshot.get("max") or 0.0
    rank = q * count
    seen = 0
    for index, bucket_count in enumerate(snapshot["counts"]):
        seen += bucket_count
        if seen >= rank and bucket_count:
            if index < len(buckets):
                return buckets[index]
            return maximum
    return maximum


def json_copy(data: dict) -> dict:
    """Deep-copy a snapshot entry without sharing mutable lists."""
    return {
        key: list(value) if isinstance(value, list) else value
        for key, value in data.items()
    }
