"""The tracer and its sinks.

A :class:`Tracer` fans typed events out to pluggable sinks.  The
instrumentation sites in the engine, the CAER runtime, and the campaign
executor all follow the same pattern::

    if tracer.enabled:
        tracer.emit(DetectionEvent(...))

so the disabled default — :data:`NULL_TRACER` — costs one attribute
read per site and constructs no event objects.  Two sinks ship with the
library:

* :class:`RingBufferSink` — a bounded in-memory window over the most
  recent events, for tests and interactive inspection;
* :class:`JSONLSink` — one JSON object per line, with size-triggered
  file rotation, for post-mortem analysis of long campaigns.
"""

from __future__ import annotations

import json
import os
from collections import Counter, deque
from pathlib import Path
from typing import Iterable, Protocol

from ..errors import ObservabilityError
from .events import TraceEvent


class Sink(Protocol):
    """Anything that can receive trace events."""

    def emit(self, event: TraceEvent) -> None: ...

    def close(self) -> None: ...


class Tracer:
    """Event fan-out with a cheap disabled state.

    ``enabled`` is a plain attribute (not a property) so hot
    instrumentation sites pay a single load for the common "tracing
    off" case.  ``counts`` tallies emitted events by kind — the basis
    of `repro-caer trace`'s summary and of the transparency tests.
    """

    __slots__ = ("sinks", "enabled", "counts")

    def __init__(self, sinks: Iterable[Sink] = ()):
        self.sinks: list[Sink] = list(sinks)
        self.enabled = bool(self.sinks)
        self.counts: Counter[str] = Counter()

    def emit(self, event: TraceEvent) -> None:
        """Deliver one event to every sink (no-op when disabled)."""
        if not self.enabled:
            return
        self.counts[event.kind] += 1
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        """Close every sink (flushes file sinks)."""
        for sink in self.sinks:
            sink.close()

    def total_events(self) -> int:
        """Number of events emitted so far."""
        return sum(self.counts.values())

    def __bool__(self) -> bool:
        return self.enabled

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Tracer(sinks={len(self.sinks)}, "
            f"events={self.total_events()})"
        )


#: The shared disabled tracer every instrumentation site defaults to.
NULL_TRACER = Tracer()


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory.

    When full, the oldest event is evicted and counted in ``evicted``
    so consumers can tell a complete trace from a truncated window.
    """

    def __init__(self, capacity: int = 65_536):
        if capacity < 1:
            raise ObservabilityError(
                f"ring capacity must be >= 1: {capacity}"
            )
        self.capacity = capacity
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self.evicted = 0

    def emit(self, event: TraceEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.evicted += 1
        self._buffer.append(event)

    def close(self) -> None:
        """Nothing to release; the buffer stays readable."""

    @property
    def events(self) -> list[TraceEvent]:
        """The retained window, oldest first."""
        return list(self._buffer)

    def by_kind(self, kind: str) -> list[TraceEvent]:
        """Retained events of one kind, oldest first."""
        return [e for e in self._buffer if e.kind == kind]

    def __len__(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:
        return (
            f"RingBufferSink({len(self._buffer)}/{self.capacity}, "
            f"evicted={self.evicted})"
        )


class JSONLSink:
    """Append events to a JSON-lines file, rotating by size.

    When a write would push the current file past ``max_bytes`` the
    file is rotated shift-style (``trace.jsonl`` → ``trace.jsonl.1`` →
    ``trace.jsonl.2`` …); at most ``max_files`` rotated files are kept,
    the oldest being dropped.  ``max_bytes=None`` disables rotation.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        max_bytes: int | None = None,
        max_files: int = 3,
    ):
        if max_bytes is not None and max_bytes < 1:
            raise ObservabilityError(
                f"max_bytes must be >= 1 or None: {max_bytes}"
            )
        if max_files < 1:
            raise ObservabilityError(
                f"max_files must be >= 1: {max_files}"
            )
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_files = max_files
        self.rotations = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w")
        self._bytes = 0

    def emit(self, event: TraceEvent) -> None:
        line = json.dumps(event.to_dict(), separators=(",", ":")) + "\n"
        if (
            self.max_bytes is not None
            and self._bytes
            and self._bytes + len(line) > self.max_bytes
        ):
            self._rotate()
        self._handle.write(line)
        self._bytes += len(line)

    def _rotate(self) -> None:
        self._handle.close()
        oldest = self.path.with_name(
            f"{self.path.name}.{self.max_files}"
        )
        if oldest.exists():
            oldest.unlink()
        for index in range(self.max_files - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{index}")
            if src.exists():
                src.rename(
                    self.path.with_name(f"{self.path.name}.{index + 1}")
                )
        self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self._handle = open(self.path, "w")
        self._bytes = 0
        self.rotations += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __repr__(self) -> str:
        return f"JSONLSink({self.path}, rotations={self.rotations})"


def read_jsonl(path: str | os.PathLike) -> list[dict]:
    """Load a JSONL trace file back into event payload dicts."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
