"""Machine configuration for the simulated multicore substrate.

The paper runs on an Intel Core i7 920 (Nehalem): four cores, private
L1 (16 KB) and L2 (256 KB) caches, and an 8 MB 16-way *inclusive* shared
L3, probed by CAER every 1 ms (~2.66 M cycles at 2.66 GHz).

Simulating that geometry at full scale is far too slow in Python, so the
library works on a *scaled machine*: cache capacities and the probe
period are divided by configurable scale factors while every ratio that
matters to CAER is preserved:

* working-set size / cache size (workloads are specified relative to the
  scaled L3),
* LLC misses per period / detection threshold (thresholds given by the
  paper in misses-per-millisecond are converted with
  :func:`scale_misses_per_period`).

``MachineConfig.scaled_nehalem()`` is the default machine used by the
test-suite and the experiment harness; ``MachineConfig.nehalem_i7_920()``
is the faithful full-scale geometry for anyone with patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import CacheConfigError, ConfigError

#: Cycles in one paper probe period: 1 ms at the i7 920's 2.66 GHz.
REFERENCE_PERIOD_CYCLES = 2_660_000

#: The paper's rule-based "heavy usage" threshold: 1500 LLC misses / ms.
REFERENCE_USAGE_THRESHOLD = 1500.0


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache.

    Addresses are modelled at cache-line granularity throughout the
    library, so ``line_bytes`` only matters when reporting capacities in
    bytes.
    """

    num_sets: int
    associativity: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.num_sets):
            raise CacheConfigError(
                f"num_sets must be a power of two, got {self.num_sets}"
            )
        if self.associativity < 1:
            raise CacheConfigError(
                f"associativity must be >= 1, got {self.associativity}"
            )
        if not _is_power_of_two(self.line_bytes):
            raise CacheConfigError(
                f"line_bytes must be a power of two, got {self.line_bytes}"
            )

    @property
    def capacity_lines(self) -> int:
        """Total number of cache lines the cache can hold."""
        return self.num_sets * self.associativity

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.capacity_lines * self.line_bytes

    def scaled(self, factor: int) -> "CacheGeometry":
        """Return the geometry with ``num_sets`` divided by ``factor``.

        Associativity is preserved (it controls conflict behaviour, not
        footprint ratios) so capacity shrinks by exactly ``factor``.
        """
        if factor < 1:
            raise CacheConfigError(f"scale factor must be >= 1, got {factor}")
        new_sets = self.num_sets // factor
        if new_sets < 1:
            raise CacheConfigError(
                f"scaling {self.num_sets} sets by {factor} leaves no sets"
            )
        return replace(self, num_sets=new_sets)

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "num_sets": self.num_sets,
            "associativity": self.associativity,
            "line_bytes": self.line_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheGeometry":
        """Rebuild a geometry from :meth:`to_dict` output (validating)."""
        try:
            return cls(**data)
        except TypeError as exc:
            raise CacheConfigError(
                f"bad cache geometry payload {data!r}: {exc}"
            ) from None


@dataclass(frozen=True)
class CacheLatencies:
    """Load-to-use latency (cycles) of each level of the hierarchy.

    Defaults approximate Nehalem: L1 4, L2 10, L3 38, DRAM ~200 cycles.
    """

    l1: int = 4
    l2: int = 10
    l3: int = 38
    memory: int = 200

    def __post_init__(self) -> None:
        ordered = (self.l1, self.l2, self.l3, self.memory)
        if any(lat <= 0 for lat in ordered):
            raise ConfigError(f"latencies must be positive, got {ordered}")
        if not (self.l1 < self.l2 < self.l3 < self.memory):
            raise ConfigError(
                "latencies must be strictly increasing down the hierarchy, "
                f"got {ordered}"
            )

    def for_level(self, level: int) -> int:
        """Latency of hit level 1..3, or 4 for main memory."""
        table = {1: self.l1, 2: self.l2, 3: self.l3, 4: self.memory}
        try:
            return table[level]
        except KeyError:
            raise ConfigError(f"no such memory level: {level}") from None

    def to_dict(self) -> dict:
        """JSON-serialisable form (see :meth:`from_dict`)."""
        return {
            "l1": self.l1, "l2": self.l2,
            "l3": self.l3, "memory": self.memory,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheLatencies":
        """Rebuild latencies from :meth:`to_dict` output (validating)."""
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(
                f"bad latency payload {data!r}: {exc}"
            ) from None


@dataclass(frozen=True)
class MachineConfig:
    """Full description of the simulated multicore machine.

    ``period_cycles`` is the number of core cycles in one CAER probe
    period (the "1 ms timer interrupt" of the paper).
    """

    name: str = "nehalem-i7-920"
    num_cores: int = 4
    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(num_sets=32, associativity=8)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(num_sets=512, associativity=8)
    )
    l3: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(num_sets=8192, associativity=16)
    )
    latencies: CacheLatencies = field(default_factory=CacheLatencies)
    period_cycles: int = REFERENCE_PERIOD_CYCLES
    replacement: str = "lru"
    l3_inclusive: bool = True
    #: next-line hardware prefetch degree (0 disables).  Off by default:
    #: the workload calibration targets the no-prefetch model; the
    #: ``prefetch`` ablation studies its effect.
    prefetch_degree: int = 0
    #: model dirty-line writebacks (store-marked lines evicted from the
    #: L3 consume memory bandwidth).  Off by default for the same
    #: reason as prefetching; the ``writebacks`` ablation studies it.
    model_writebacks: bool = False

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError(f"need at least one core, got {self.num_cores}")
        if self.period_cycles < 100:
            raise ConfigError(
                f"period_cycles unrealistically small: {self.period_cycles}"
            )
        if self.l1.capacity_lines >= self.l2.capacity_lines:
            raise ConfigError("L1 must be smaller than L2")
        if self.l2.capacity_lines >= self.l3.capacity_lines:
            raise ConfigError("L2 must be smaller than L3")
        if self.prefetch_degree < 0:
            raise ConfigError(
                f"prefetch_degree must be >= 0: {self.prefetch_degree}"
            )

    @property
    def period_scale(self) -> float:
        """How much shorter the probe period is than the paper's 1 ms."""
        return self.period_cycles / REFERENCE_PERIOD_CYCLES

    @classmethod
    def nehalem_i7_920(cls) -> "MachineConfig":
        """The paper's machine at full scale (slow to simulate)."""
        return cls()

    @classmethod
    def scaled_nehalem(
        cls,
        cache_scale: int = 16,
        period_cycles: int = 40_000,
        num_cores: int = 4,
    ) -> "MachineConfig":
        """The default scaled machine used throughout the reproduction.

        With the defaults the shared L3 holds 8192 lines (512 KB
        equivalent) and one probe period is 40 K cycles; see the module
        docstring for why the scaling preserves CAER-relevant behaviour.
        """
        full = cls.nehalem_i7_920()
        return cls(
            name=f"nehalem-i7-920/scale{cache_scale}",
            num_cores=num_cores,
            l1=full.l1.scaled(cache_scale),
            l2=full.l2.scaled(cache_scale),
            l3=full.l3.scaled(cache_scale),
            latencies=full.latencies,
            period_cycles=period_cycles,
            replacement=full.replacement,
            l3_inclusive=full.l3_inclusive,
        )

    def to_dict(self) -> dict:
        """Canonical JSON-serialisable form of the whole machine.

        Every field that affects simulation results is present, so the
        payload is a complete identity: two machines with equal
        ``to_dict`` outputs produce identical runs, and a run spec's
        content digest can hash this form directly.
        """
        return {
            "name": self.name,
            "num_cores": self.num_cores,
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "l3": self.l3.to_dict(),
            "latencies": self.latencies.to_dict(),
            "period_cycles": self.period_cycles,
            "replacement": self.replacement,
            "l3_inclusive": self.l3_inclusive,
            "prefetch_degree": self.prefetch_degree,
            "model_writebacks": self.model_writebacks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MachineConfig":
        """Rebuild a machine from :meth:`to_dict` output (validating)."""
        payload = dict(data)
        try:
            for level in ("l1", "l2", "l3"):
                payload[level] = CacheGeometry.from_dict(payload[level])
            payload["latencies"] = CacheLatencies.from_dict(
                payload["latencies"]
            )
            return cls(**payload)
        except (KeyError, TypeError) as exc:
            raise ConfigError(
                f"bad machine payload: {exc!r}"
            ) from None

    @classmethod
    def tiny(cls) -> "MachineConfig":
        """A minimal machine for fast unit tests."""
        return cls(
            name="tiny",
            num_cores=2,
            l1=CacheGeometry(num_sets=2, associativity=2),
            l2=CacheGeometry(num_sets=4, associativity=4),
            l3=CacheGeometry(num_sets=16, associativity=8),
            period_cycles=2_000,
        )


def scale_misses_per_period(
    misses_per_reference_period: float, machine: MachineConfig
) -> float:
    """Convert a paper threshold (misses per 1 ms) to the scaled machine.

    The paper asserts "heavy usage" at 1500 LLC misses per millisecond;
    on a machine whose probe period is ``period_cycles`` long the
    equivalent threshold is proportionally smaller.
    """
    if misses_per_reference_period < 0:
        raise ConfigError(
            f"miss threshold must be non-negative, "
            f"got {misses_per_reference_period}"
        )
    return misses_per_reference_period * machine.period_scale


def default_usage_threshold(machine: MachineConfig) -> float:
    """The paper's rule-based usage threshold converted to ``machine``."""
    return scale_misses_per_period(REFERENCE_USAGE_THRESHOLD, machine)
