"""Analytical cache-contention model.

The paper's related work leans on analytical contention prediction
(Chandra et al., HPCA'05; reuse-distance theory, Ding & Zhong PLDI'03).
This package provides that substrate: reuse-distance profiling of an
address trace (:mod:`repro.analytic.stack_distance`), miss-rate curves
(:mod:`repro.analytic.mrc`), a fixed-point shared-cache occupancy model
(:mod:`repro.analytic.sharing`), and a co-location slowdown predictor
(:mod:`repro.analytic.predictor`) that mirrors the simulator's core and
memory models in closed form.

It serves two roles: fast screening of workload configurations without
simulation, and cross-validation — the test-suite checks its
predictions against the trace-driven simulator on microbenchmarks.
"""

from .mrc import MissRateCurve
from .predictor import (
    ColocationPrediction,
    predict_colocation,
    predict_colocation_phased,
    predict_solo,
)
from .sharing import SharedCacheModel
from .stack_distance import reuse_distance_histogram

__all__ = [
    "reuse_distance_histogram",
    "MissRateCurve",
    "SharedCacheModel",
    "ColocationPrediction",
    "predict_colocation",
    "predict_colocation_phased",
    "predict_solo",
]
