"""Reuse-distance (LRU stack distance) profiling.

The reuse distance of an access is the number of *distinct* lines
referenced since the previous access to the same line; under
fully-associative LRU, an access hits a cache of ``C`` lines iff its
reuse distance is less than ``C`` (Mattson's stack algorithm).  The
histogram of reuse distances therefore yields the whole miss-rate curve
in one pass.

The implementation is the classic O(N log N) algorithm: previous-use
times in a dict, distinct-count queries via a Fenwick (binary indexed)
tree over access timestamps.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..errors import WorkloadError

#: Bucket index used for first-time (cold) accesses.
COLD = -1


class _Fenwick:
    """Binary indexed tree over ``n`` slots supporting prefix sums."""

    def __init__(self, n: int):
        self._n = n
        self._tree = [0] * (n + 1)

    def add(self, index: int, delta: int) -> None:
        i = index + 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots [0, index]."""
        i = index + 1
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots [lo, hi]."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo else 0)


def reuse_distances(trace: Iterable[int]) -> list[int]:
    """Per-access reuse distances (:data:`COLD` for first touches)."""
    trace = list(trace)
    tree = _Fenwick(len(trace))
    last_use: dict[int, int] = {}
    distances: list[int] = []
    for t, addr in enumerate(trace):
        prev = last_use.get(addr)
        if prev is None:
            distances.append(COLD)
        else:
            # Distinct lines touched strictly between prev and t: each
            # line's *latest* use in that window is marked in the tree.
            distances.append(tree.range_sum(prev + 1, t - 1))
            tree.add(prev, -1)
        tree.add(t, 1)
        last_use[addr] = t
    return distances


def reuse_distance_histogram(
    trace: Iterable[int],
) -> tuple[dict[int, int], int]:
    """Histogram of reuse distances plus the cold-miss count.

    Returns ``(histogram, cold)`` where ``histogram[d]`` counts accesses
    with reuse distance ``d`` and ``cold`` counts first touches.
    """
    histogram: dict[int, int] = {}
    cold = 0
    for d in reuse_distances(trace):
        if d == COLD:
            cold += 1
        else:
            histogram[d] = histogram.get(d, 0) + 1
    return histogram, cold


def singleton_count(trace: Iterable[int]) -> int:
    """Lines touched exactly once in the trace.

    A single-touch line's first (and only) access misses at every cache
    size *every time the workload reaches it* — for cyclic workloads
    whose period exceeds the profiled window this is steady-state
    missing, not a one-off compulsory miss.  The complement
    (``cold - singletons``) counts genuinely transient first touches of
    lines the workload demonstrably revisits.
    """
    counts: dict[int, int] = {}
    for addr in trace:
        counts[addr] = counts.get(addr, 0) + 1
    return sum(1 for c in counts.values() if c == 1)


def sample_trace(pattern: "object", length: int) -> list[int]:
    """Materialise ``length`` accesses from a live pattern.

    ``pattern`` is any :class:`repro.workloads.base.AccessPattern`.
    """
    if length <= 0:
        raise WorkloadError(f"trace length must be positive: {length}")
    next_address = pattern.next_address
    return [next_address() for _ in range(length)]
