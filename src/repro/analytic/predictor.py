"""Closed-form co-location slowdown prediction.

Mirrors the simulator's execution model analytically: a phase's cost per
access is its compute cost plus latency-weighted stalls, with the
hit-level split taken from the phase's miss-rate curve evaluated at the
private-cache sizes and at the application's *share* of the L3.  The L3
share and the memory queueing delay are mutually dependent with the
execution rates, so the predictor iterates the whole system (occupancy
model + M/D/1 channel + costs) to a damped fixed point.

Used for fast screening of workload designs and — in the test-suite —
for cross-validating the trace-driven simulator: on microbenchmarks the
two must agree on who wins and by roughly what factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MachineConfig
from ..errors import ExperimentError
from ..workloads.base import PhaseSpec, WorkloadSpec
from .mrc import MissRateCurve
from .sharing import SharedCacheModel, SharerProfile

#: Accesses sampled per phase when profiling a pattern.  The window is
#: deliberately moderate: revisits rarer than the window (deep zipf
#: tails) profile as cold and therefore contention-insensitive — which
#: is also how shared LRU treats them, since lines re-referenced that
#: rarely are evicted and re-fetched regardless of the co-runner.  A
#: much larger window makes the *proportional* occupancy model
#: overstate how much of the tail a victim loses (LRU protects hot
#: lines better than proportional sharing assumes).
PROFILE_SAMPLES = 30_000

#: Outer fixed-point iterations over (occupancy, queue, rates).
OUTER_ITERATIONS = 30


@dataclass(frozen=True)
class PhaseProfile:
    """A phase's analytically relevant quantities."""

    spec: PhaseSpec
    mrc: MissRateCurve

    @property
    def compute_cycles_per_access(self) -> float:
        return self.spec.base_cpi / self.spec.mem_ratio


@dataclass(frozen=True)
class ColocationPrediction:
    """Predicted outcome of co-locating a victim with a contender."""

    victim: str
    contender: str
    victim_solo_cost: float  # cycles per access, alone
    victim_colo_cost: float  # cycles per access, co-located
    victim_occupancy_fraction: float
    queue_delay: float

    @property
    def slowdown(self) -> float:
        """Predicted completion-time ratio co-located / alone."""
        return self.victim_colo_cost / self.victim_solo_cost


def profile_phase(
    phase: PhaseSpec, seed: int = 0, samples: int = PROFILE_SAMPLES
) -> PhaseProfile:
    """Sample a phase's pattern and build its miss-rate curve."""
    rng = np.random.default_rng(seed)
    pattern = phase.pattern.instantiate(rng, base=0)
    return PhaseProfile(
        spec=phase, mrc=MissRateCurve.from_pattern(pattern, samples)
    )


def _dominant_phase(spec: WorkloadSpec) -> PhaseSpec:
    """The phase carrying the largest instruction share."""
    return max(spec.phases, key=lambda p: p.duration_instructions)


def _phase_cost(
    profile: PhaseProfile,
    machine: MachineConfig,
    l3_lines: float,
    queue_delay: float,
) -> float:
    """Cycles per access of a phase given an L3 share and queue delay."""
    lat = machine.latencies
    mrc = profile.mrc
    h1 = mrc.hit_rate(machine.l1.capacity_lines)
    h2 = mrc.hit_rate(machine.l2.capacity_lines)
    h3 = mrc.hit_rate(min(l3_lines, machine.l3.capacity_lines))
    h2 = max(h2, h1)
    h3 = max(h3, h2)
    stall = (
        (h2 - h1) * (lat.l2 - lat.l1)
        + (h3 - h2) * (lat.l3 - lat.l1)
        + (1.0 - h3) * (lat.memory + queue_delay - lat.l1)
    )
    return profile.compute_cycles_per_access + stall / profile.spec.overlap


def _memory_queue_delay(
    machine: MachineConfig, misses_per_cycle: float, service: float
) -> float:
    """M/D/1 mean waiting time, as in :class:`repro.arch.memory`."""
    from ..arch.memory import MAX_RHO

    rho = min(misses_per_cycle * service, MAX_RHO)
    return service * rho / (2.0 * (1.0 - rho))


def predict_solo(
    spec: WorkloadSpec,
    machine: MachineConfig | None = None,
    seed: int = 0,
    service_cycles: float = 36.0,
) -> float:
    """Predicted cycles per access of the dominant phase, running alone."""
    machine = machine or MachineConfig.scaled_nehalem()
    profile = profile_phase(_dominant_phase(spec), seed=seed)
    cost = _phase_cost(profile, machine, machine.l3.capacity_lines, 0.0)
    for _ in range(OUTER_ITERATIONS):
        miss_rate = profile.mrc.miss_rate(machine.l3.capacity_lines)
        misses_per_cycle = miss_rate / cost
        queue = _memory_queue_delay(
            machine, misses_per_cycle, service_cycles
        )
        new_cost = _phase_cost(
            profile, machine, machine.l3.capacity_lines, queue
        )
        if abs(new_cost - cost) < 1e-6:
            break
        cost = 0.5 * (cost + new_cost)
    return cost


def predict_colocation(
    victim: WorkloadSpec,
    contender: WorkloadSpec,
    machine: MachineConfig | None = None,
    seed: int = 0,
    service_cycles: float = 36.0,
) -> ColocationPrediction:
    """Predict the victim's slowdown when co-located with the contender.

    Both workloads are represented by their dominant phase; the outer
    loop iterates occupancies, execution rates, and the shared memory
    channel to a fixed point.
    """
    machine = machine or MachineConfig.scaled_nehalem()
    victim_profile = profile_phase(_dominant_phase(victim), seed=seed)
    contender_profile = profile_phase(
        _dominant_phase(contender), seed=seed + 1
    )
    capacity = machine.l3.capacity_lines
    solo_cost = predict_solo(
        victim, machine, seed=seed, service_cycles=service_cycles
    )

    sharing = SharedCacheModel(capacity)
    costs = [solo_cost, _phase_cost(contender_profile, machine,
                                    capacity, 0.0)]
    profiles = [victim_profile, contender_profile]
    occupancies = [capacity / 2.0, capacity / 2.0]
    queue = 0.0
    for _ in range(OUTER_ITERATIONS):
        sharers = [
            SharerProfile(
                name=str(i), mrc=p.mrc, access_rate=1.0 / c
            )
            for i, (p, c) in enumerate(zip(profiles, costs))
        ]
        solved = sharing.solve(sharers)
        occupancies = [solved["0"], solved["1"]]
        misses_per_cycle = sum(
            p.mrc.miss_rate(o) / c
            for p, o, c in zip(profiles, occupancies, costs)
        )
        queue = _memory_queue_delay(
            machine, misses_per_cycle, service_cycles
        )
        new_costs = [
            _phase_cost(p, machine, o, queue)
            for p, o in zip(profiles, occupancies)
        ]
        delta = max(
            abs(n - c) for n, c in zip(new_costs, costs)
        )
        costs = [0.5 * (n + c) for n, c in zip(new_costs, costs)]
        if delta < 1e-6:
            break

    if solo_cost <= 0:
        raise ExperimentError("non-positive predicted solo cost")
    return ColocationPrediction(
        victim=victim.name,
        contender=contender.name,
        victim_solo_cost=solo_cost,
        victim_colo_cost=costs[0],
        victim_occupancy_fraction=occupancies[0] / capacity,
        queue_delay=queue,
    )


def predict_colocation_phased(
    victim: WorkloadSpec,
    contender: WorkloadSpec,
    machine: MachineConfig | None = None,
    seed: int = 0,
    service_cycles: float = 36.0,
) -> float:
    """Phase-weighted slowdown prediction.

    :func:`predict_colocation` represents the victim by its dominant
    phase; for heavily phased workloads (gcc, mcf, xalancbmk) this
    overweights whichever phase happens to be longest.  Here every
    victim phase is predicted separately against the contender's
    dominant phase, and the slowdowns are combined by each phase's
    share of *time* (instruction share weighted by its per-instruction
    cost), which is how phase slowdowns compose for a run-to-completion
    workload.
    """
    machine = machine or MachineConfig.scaled_nehalem()
    total_solo = 0.0
    total_colo = 0.0
    for index, phase in enumerate(victim.phases):
        single = WorkloadSpec(
            name=f"{victim.name}/phase{index}",
            phases=(phase,),
            total_instructions=phase.duration_instructions,
        )
        solo_cost = predict_solo(
            single, machine, seed=seed, service_cycles=service_cycles
        )
        prediction = predict_colocation(
            single, contender, machine, seed=seed,
            service_cycles=service_cycles,
        )
        # Per-instruction costs weight each phase's instruction share.
        instructions = phase.duration_instructions
        total_solo += instructions * solo_cost * phase.mem_ratio
        total_colo += (
            instructions * prediction.victim_colo_cost * phase.mem_ratio
        )
    if total_solo <= 0:
        raise ExperimentError("non-positive phased solo time")
    return total_colo / total_solo
