"""Miss-rate curves from reuse-distance histograms.

Under fully-associative LRU an access with reuse distance ``d`` hits a
cache of ``c`` lines iff ``d < c``, so the miss-rate curve is the
complementary CDF of the reuse-distance distribution (cold misses miss
at every size).  Set-associative caches of practical associativity
track the fully-associative curve closely enough for the occupancy
modelling this package does.
"""

from __future__ import annotations

import bisect
from collections.abc import Iterable

from ..errors import WorkloadError
from .stack_distance import (
    reuse_distance_histogram,
    sample_trace,
    singleton_count,
)


class MissRateCurve:
    """miss_rate(cache_lines) for one access stream."""

    def __init__(
        self,
        histogram: dict[int, int],
        cold: int,
        singletons: int = 0,
    ):
        """Build from a reuse-distance histogram plus cold-miss count.

        ``singletons`` is how many of the ``cold`` first touches belong
        to lines never revisited within the profiled window; those miss
        in steady state too, while the rest are transient warm-up.
        """
        if cold < 0 or any(v < 0 for v in histogram.values()):
            raise WorkloadError("negative counts in reuse histogram")
        if not 0 <= singletons <= cold:
            raise WorkloadError(
                f"singletons ({singletons}) out of range 0..{cold}"
            )
        self._total = sum(histogram.values()) + cold
        if self._total == 0:
            raise WorkloadError("empty reuse histogram")
        self._cold = cold
        self._singletons = singletons
        # Sorted distances with cumulative counts for O(log n) queries.
        self._distances = sorted(histogram)
        cumulative = []
        running = 0
        for d in self._distances:
            running += histogram[d]
            cumulative.append(running)
        self._cumulative = cumulative

    @classmethod
    def from_trace(cls, trace: Iterable[int]) -> "MissRateCurve":
        """Profile a concrete address trace."""
        trace = list(trace)
        histogram, cold = reuse_distance_histogram(trace)
        return cls(histogram, cold, singletons=singleton_count(trace))

    @classmethod
    def from_pattern(
        cls, pattern: "object", samples: int = 50_000
    ) -> "MissRateCurve":
        """Profile a live access pattern by sampling it."""
        return cls.from_trace(sample_trace(pattern, samples))

    def hit_rate(self, cache_lines: float) -> float:
        """Fraction of accesses with reuse distance < ``cache_lines``."""
        if cache_lines <= 0:
            return 0.0
        index = bisect.bisect_left(self._distances, cache_lines)
        hits = self._cumulative[index - 1] if index else 0
        return hits / self._total

    def miss_rate(self, cache_lines: float) -> float:
        """Misses per access at the given cache size (incl. cold)."""
        return 1.0 - self.hit_rate(cache_lines)

    @property
    def cold_fraction(self) -> float:
        """Fraction of accesses that are first touches."""
        return self._cold / self._total

    @property
    def compulsory_floor(self) -> float:
        """Miss rate with an infinite cache (cold misses only)."""
        return self.cold_fraction

    @property
    def singleton_fraction(self) -> float:
        """Accesses to lines never revisited in the profiled window."""
        return self._singletons / self._total

    @property
    def transient_cold_fraction(self) -> float:
        """First touches of lines the workload later revisits.

        This is the genuinely one-off warm-up portion of the cold
        misses; steady-state miss modelling should exclude it.
        """
        return (self._cold - self._singletons) / self._total

    def footprint(self) -> int:
        """Distinct lines observed in the profiled trace."""
        return self._cold

    def __repr__(self) -> str:
        return (
            f"MissRateCurve(total={self._total}, "
            f"cold={self.cold_fraction:.3f})"
        )
