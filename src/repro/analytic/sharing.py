"""Fixed-point shared-cache occupancy model.

When several applications share an LRU cache, steady-state occupancy
settles where each application's *insertion rate* (misses per cycle)
balances the eviction pressure of the others — an application that
misses faster pulls in lines faster and holds more of the cache, which
in turn lowers its miss rate.  This is the feedback loop behind the
paper's contention story, here solved in closed form:

Find occupancies ``O_i`` with ``sum(O_i) = C`` such that::

    O_i / C = insertion_i / sum(insertion_j)
    insertion_i = access_rate_i * mrc_i.miss_rate(O_i)

solved by damped fixed-point iteration.  The model is the simple
proportional variant of Chandra et al.'s inductive-probability
predictor, adequate for screening and cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExperimentError
from .mrc import MissRateCurve


@dataclass(frozen=True)
class SharerProfile:
    """One application's inputs to the sharing model."""

    name: str
    mrc: MissRateCurve
    access_rate: float  # accesses per cycle when unstalled

    def __post_init__(self) -> None:
        if self.access_rate <= 0:
            raise ExperimentError(
                f"access_rate must be positive: {self.access_rate}"
            )


class SharedCacheModel:
    """Solves steady-state occupancies of co-running applications."""

    def __init__(
        self,
        capacity_lines: int,
        damping: float = 0.5,
        tolerance: float = 1e-4,
        max_iterations: int = 500,
    ):
        if capacity_lines <= 0:
            raise ExperimentError(
                f"capacity must be positive: {capacity_lines}"
            )
        if not 0.0 < damping <= 1.0:
            raise ExperimentError(f"damping must be in (0, 1]: {damping}")
        self.capacity = capacity_lines
        self.damping = damping
        self.tolerance = tolerance
        self.max_iterations = max_iterations

    def solve(self, sharers: list[SharerProfile]) -> dict[str, float]:
        """Occupancy (in lines) per application at the fixed point.

        A single sharer gets the whole cache.  Occupancies are capped at
        each application's footprint-equivalent: an application whose
        miss rate hits its compulsory floor cannot grow further.
        """
        if not sharers:
            raise ExperimentError("no sharers given")
        if len(sharers) == 1:
            return {sharers[0].name: float(self.capacity)}
        n = len(sharers)
        occupancy = [self.capacity / n] * n
        for _ in range(self.max_iterations):
            insertions = [
                s.access_rate * s.mrc.miss_rate(o)
                for s, o in zip(sharers, occupancy)
            ]
            total = sum(insertions)
            if total <= 0:
                # Nobody misses: occupancies are arbitrary; keep split.
                break
            target = [self.capacity * ins / total for ins in insertions]
            delta = 0.0
            for i in range(n):
                step = self.damping * (target[i] - occupancy[i])
                occupancy[i] += step
                delta = max(delta, abs(step))
            if delta < self.tolerance * self.capacity:
                break
        return {s.name: o for s, o in zip(sharers, occupancy)}

    def miss_rates(
        self, sharers: list[SharerProfile]
    ) -> dict[str, float]:
        """Per-application miss rates at the solved occupancies."""
        occupancy = self.solve(sharers)
        return {
            s.name: s.mrc.miss_rate(occupancy[s.name]) for s in sharers
        }
