"""The declarative fleet specification and node calibration profiles.

A :class:`FleetSpec` plays the role :class:`~repro.runspec.RunSpec`
plays one level down: a frozen, hashable, canonically-serialisable
description of one fleet episode — node count, tick horizon, the job
mix, the CAER config every node runs, the SLO contract, the node-level
fault plan, and every controller knob.  Its SHA-256 digest keys the
fleet journal, so resumed episodes can never consume another
episode's completions.

Nodes are calibrated, not re-simulated: :func:`build_profiles` derives
each victim's per-tick rates from the *same campaign runs the paper
figures use* (solo and co-located under the spec's config).  With the
fleet layer off, those runs are bit-identical to today's campaign
runs by construction — the fleet merely reads their summaries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass

from ..errors import ConfigError
from ..faults.nodes import NodeFaultPlan
from ..runspec import BATCH_BENCHMARK

#: Version tag of the fleet spec's canonical JSON form.
FLEET_SPEC_VERSION = 1

#: Job kinds the placement controller understands.
JOB_KINDS = ("ls", "batch")

#: Fallback detector trigger rate when a run summary predates the
#: telemetry layer (cached before PR-7): a coin-flip contention signal.
DEFAULT_TRIGGER_RATE = 0.5


@dataclass(frozen=True)
class FleetJob:
    """One unit of admitted work.

    ``service`` is the ticks of progress the job needs at full speed
    (rate 1.0/tick); co-location and stragglers stretch the wall-tick
    time accordingly.  ``arrival`` is the first tick the controller may
    place it.
    """

    id: str
    kind: str
    bench: str
    arrival: int
    service: float

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ConfigError(
                f"job kind must be one of {JOB_KINDS}, got {self.kind!r}"
            )
        if not self.id:
            raise ConfigError("job id must be non-empty")
        if self.arrival < 0:
            raise ConfigError(
                f"arrival must be >= 0, got {self.arrival}"
            )
        if self.service <= 0:
            raise ConfigError(
                f"service must be > 0, got {self.service}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class FleetSpec:
    """A complete description of one fleet episode.

    Every result-affecting knob is a field, and every field reaches
    the digest — the :class:`~repro.runspec.RunSpec` discipline, one
    level up.  ``node_faults`` is the seed-driven chaos plan (``None``
    = a healthy fleet); the controller knobs encode the failover
    policy:

    * ``suspect_after`` — heartbeat-less ticks before a node's silence
      counts as contention (dark telemetry is never trusted blindly);
    * ``dead_after`` — heartbeat-less ticks before the node is declared
      dead and its stranded jobs rescheduled (journal-backed, zero
      loss);
    * ``sustain_ticks`` — consecutive contended heartbeats before the
      node's batch job is evicted (migrated elsewhere);
    * ``flap_threshold`` — evictions + dead-node reinstatements before
      a node is quarantined out of the placement pool;
    * ``max_place_attempts`` — caps the placement retry *backoff*
      schedule (jobs are never dropped; the attempt counter only
      clamps how far the backoff stretches).
    """

    nodes: int = 4
    ticks: int = 48
    ls_jobs: int = 3
    #: enough batch work to keep the fleet busy most of the horizon, so
    #: fault-induced delays show up in throughput instead of vanishing
    #: into slack
    batch_jobs: int = 20
    victims: tuple[str, ...] = ("429.mcf",)
    batch_bench: str = BATCH_BENCHMARK
    config: str = "rule"
    ls_service: float = 10.0
    batch_service: float = 8.0
    slo_stretch: float = 2.0
    node_faults: NodeFaultPlan | None = None
    seed: int = 0
    suspect_after: int = 2
    dead_after: int = 4
    sustain_ticks: int = 3
    flap_threshold: int = 3
    max_place_attempts: int = 3

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ConfigError(f"nodes must be >= 1, got {self.nodes}")
        if self.ticks < 1:
            raise ConfigError(f"ticks must be >= 1, got {self.ticks}")
        if self.ls_jobs < 0 or self.batch_jobs < 0:
            raise ConfigError("job counts must be >= 0")
        if not self.victims:
            raise ConfigError("victims must be non-empty")
        if not isinstance(self.victims, tuple):
            object.__setattr__(self, "victims", tuple(self.victims))
        if self.ls_service <= 0 or self.batch_service <= 0:
            raise ConfigError("service times must be > 0")
        if self.slo_stretch < 1.0:
            raise ConfigError(
                f"slo_stretch must be >= 1, got {self.slo_stretch}"
            )
        if self.suspect_after < 1:
            raise ConfigError(
                f"suspect_after must be >= 1, got {self.suspect_after}"
            )
        if self.dead_after <= self.suspect_after:
            raise ConfigError(
                f"dead_after ({self.dead_after}) must exceed "
                f"suspect_after ({self.suspect_after})"
            )
        if self.sustain_ticks < 1:
            raise ConfigError(
                f"sustain_ticks must be >= 1, got {self.sustain_ticks}"
            )
        if self.flap_threshold < 1:
            raise ConfigError(
                f"flap_threshold must be >= 1, got {self.flap_threshold}"
            )
        if self.max_place_attempts < 1:
            raise ConfigError(
                f"max_place_attempts must be >= 1, "
                f"got {self.max_place_attempts}"
            )

    # -- the admitted job mix ---------------------------------------------

    def jobs(self) -> tuple[FleetJob, ...]:
        """The episode's deterministic job arrivals.

        Arrivals spread over the first half of the horizon so late
        jobs still have headroom to meet the SLO; latency-sensitive
        jobs cycle through ``victims``.  Pure function of the spec —
        no RNG — so the mix is trivially reproducible.
        """
        jobs: list[FleetJob] = []
        for index in range(self.ls_jobs):
            jobs.append(
                FleetJob(
                    id=f"ls-{index}",
                    kind="ls",
                    bench=self.victims[index % len(self.victims)],
                    arrival=(index * self.ticks) // max(1, 2 * self.ls_jobs),
                    service=self.ls_service,
                )
            )
        for index in range(self.batch_jobs):
            jobs.append(
                FleetJob(
                    id=f"batch-{index}",
                    kind="batch",
                    bench=self.batch_bench,
                    arrival=(index * self.ticks)
                    // max(1, 2 * self.batch_jobs),
                    service=self.batch_service,
                )
            )
        return tuple(jobs)

    # -- canonical serialization ------------------------------------------

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["victims"] = list(self.victims)
        payload["node_faults"] = (
            None if self.node_faults is None else self.node_faults.to_dict()
        )
        payload["version"] = FLEET_SPEC_VERSION
        return payload

    def to_json(self) -> str:
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        payload = dict(data)
        version = payload.pop("version", FLEET_SPEC_VERSION)
        if version != FLEET_SPEC_VERSION:
            raise ConfigError(
                f"unsupported fleet spec version {version!r} "
                f"(this library speaks {FLEET_SPEC_VERSION})"
            )
        try:
            payload["victims"] = tuple(payload.get("victims", ()))
            faults = payload.get("node_faults")
            payload["node_faults"] = (
                None if faults is None else NodeFaultPlan.from_dict(faults)
            )
            return cls(**payload)
        except (KeyError, TypeError) as exc:
            raise ConfigError(
                f"bad fleet spec payload: {exc!r}"
            ) from None

    @property
    def digest(self) -> str:
        """SHA-256 content digest of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def describe(self) -> str:
        faults = (
            "clean" if self.node_faults is None or self.node_faults.is_null()
            else self.node_faults.describe()
        )
        return (
            f"fleet({self.nodes} nodes x {self.ticks} ticks, "
            f"{self.ls_jobs} ls + {self.batch_jobs} batch, "
            f"{self.config}, {faults})"
        )


@dataclass(frozen=True)
class NodeRunProfile:
    """Per-tick rates of one victim benchmark on a paper-shaped node.

    Calibrated from real campaign runs (see :func:`build_profiles`):

    * ``ls_progress`` — the LS job's progress per tick while
      co-located with the batch contender under the node's CAER
      config (solo rate is 1.0 by normalisation);
    * ``batch_progress`` — the batch job's progress per tick while
      co-located (the campaign's utilization-gained fraction);
    * ``trigger_rate`` — the CAER detector's per-period trigger rate
      on that pairing, used as the per-tick probability the node's
      heartbeat reports contention.
    """

    bench: str
    ls_progress: float
    batch_progress: float
    trigger_rate: float

    def __post_init__(self) -> None:
        if not 0.0 < self.ls_progress <= 1.0:
            raise ConfigError(
                f"ls_progress must be in (0, 1], got {self.ls_progress}"
            )
        if not 0.0 <= self.batch_progress <= 1.0:
            raise ConfigError(
                f"batch_progress must be in [0, 1], "
                f"got {self.batch_progress}"
            )
        if not 0.0 <= self.trigger_rate <= 1.0:
            raise ConfigError(
                f"trigger_rate must be in [0, 1], "
                f"got {self.trigger_rate}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def _trigger_rate(summary) -> float:
    """The detector trigger rate a run summary reports (or fallback)."""
    telemetry = getattr(summary, "telemetry", None)
    if isinstance(telemetry, dict):
        derived = telemetry.get("derived")
        if isinstance(derived, dict):
            rate = derived.get("detector_trigger_rate")
            if isinstance(rate, (int, float)):
                return min(1.0, max(0.0, float(rate)))
    return DEFAULT_TRIGGER_RATE


def build_profiles(source, spec: FleetSpec) -> dict[str, NodeRunProfile]:
    """Calibrate every victim's node profile from campaign runs.

    ``source`` is anything with the campaign's ``solo(bench)`` /
    ``colocated(bench, config)`` summary methods — a real
    :class:`~repro.experiments.campaign.Campaign` (cache-backed, so a
    fleet episode shares runs with the figures) or a test stub.  The
    LS rate is the solo/co-located completion-period ratio: a job that
    takes 22% longer co-located progresses at 1/1.22 per tick.
    """
    profiles: dict[str, NodeRunProfile] = {}
    for bench in spec.victims:
        solo = source.solo(bench)
        colo = source.colocated(bench, spec.config)
        if solo.completion_periods <= 0 or colo.completion_periods <= 0:
            raise ConfigError(
                f"cannot calibrate {bench!r}: run never completed"
            )
        profiles[bench] = NodeRunProfile(
            bench=bench,
            ls_progress=min(
                1.0, solo.completion_periods / colo.completion_periods
            ),
            batch_progress=min(
                1.0, max(0.0, colo.utilization_gained)
            ),
            trigger_rate=_trigger_rate(colo),
        )
    return profiles
