"""One fleet episode: spec + nodes + controller + journal + beacons.

The episode is the fleet-level analogue of a campaign run: fully
deterministic per spec (no wall clock anywhere in the result, all
randomness seeded through the spec), journal-backed (completed jobs
are recorded as they land and never re-executed on resume — the PR-4
crash-safe contract one level up) and observable (per-node heartbeats
and a fleet summary flow into the PR-7 beacon directory, so
``repro-caer watch`` shows live per-node state).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..experiments.resilience import CampaignJournal
from ..faults.nodes import NodeFaultPlan
from .controller import PlacementController
from .node import FleetNode
from .spec import FleetSpec, NodeRunProfile


class FleetJournal(CampaignJournal):
    """A campaign journal namespaced to one fleet episode.

    Job completions are recorded under ``<fleet-digest-prefix>:<job
    id>`` keys, so a journal file can be shared across episodes (and
    with run-level records) without any chance of cross-episode
    replay.  Extra fields (``tick``, ``stretch``, ``kind``) ride on
    the standard record shape; :class:`CampaignJournal`'s loader keeps
    whole records, so nothing is lost round-tripping.
    """

    def __init__(self, path: str | os.PathLike, fleet_digest: str):
        self.fleet_digest = fleet_digest
        super().__init__(path)

    def job_key(self, job_id: str) -> str:
        return f"{self.fleet_digest[:12]}:{job_id}"

    def record_job_done(
        self, job_id: str, bench: str, kind: str, tick: int, stretch: float
    ) -> None:
        """Mark one fleet job as completed (crash-safe, idempotent)."""
        key = self.job_key(job_id)
        record = {
            "status": "done",
            "digest": key,
            "bench": bench,
            "config": kind,
            "attempts": 1,
            "tick": tick,
            "stretch": round(stretch, 4),
        }
        self._append(record)
        self.completed[key] = record
        self.quarantined.pop(key, None)

    def completed_job(self, job_id: str) -> dict | None:
        """This episode's completion record for ``job_id``, if any."""
        return self.completed.get(self.job_key(job_id))


@dataclass(frozen=True)
class FleetResult:
    """The episode's fleet-wide outcome (JSON-serialisable, clockless)."""

    spec_digest: str
    ticks: int
    jobs_total: int
    ls_total: int
    ls_completed: int
    ls_within_slo: int
    slo_attainment: float
    batch_total: int
    batch_completed: int
    batch_progress: float
    batch_throughput: float
    jobs_lost: int
    jobs_rescheduled: int
    migrations: int
    placements_failed: int
    nodes_dead: int
    nodes_quarantined: int
    jobs_resumed: int

    def to_dict(self) -> dict:
        import dataclasses

        return dataclasses.asdict(self)


class FleetEpisode:
    """Drives one episode tick by tick."""

    def __init__(
        self,
        spec: FleetSpec,
        profiles: dict[str, NodeRunProfile],
        journal: FleetJournal | None = None,
        beacon_dir: str | os.PathLike | None = None,
    ):
        missing = [b for b in spec.victims if b not in profiles]
        if missing:
            raise ValueError(
                f"profiles missing for victims: {', '.join(missing)}"
            )
        self.spec = spec
        self.profiles = profiles
        self.journal = journal
        self.beacon_dir = beacon_dir
        plan = spec.node_faults or NodeFaultPlan()
        self.nodes: dict[int, FleetNode] = {
            node_id: FleetNode(
                node_id,
                profiles,
                plan.schedule(node_id, spec.ticks),
                seed=spec.seed,
                straggler_factor=plan.straggler_factor,
            )
            for node_id in range(spec.nodes)
        }
        self.controller = PlacementController(spec, journal=journal)
        #: jobs already completed in the journal before this process
        #: started — the resume seam; they are never re-executed.
        self.jobs_resumed = 0
        if journal is not None:
            for job_id, state in self.controller.jobs.items():
                record = journal.completed_job(job_id)
                if record is not None:
                    state.status = "done"
                    state.progress = state.job.service
                    state.completion_tick = int(record.get("tick", 0))
                    self.jobs_resumed += 1

    def step(self, tick: int) -> None:
        """One fleet tick: nodes advance, the controller reacts."""
        heartbeats = {
            node_id: node.tick(tick)
            for node_id, node in sorted(self.nodes.items())
        }
        self.controller.observe(tick, heartbeats, self.nodes)
        self.controller.detect(tick, self.nodes)
        self.controller.place(tick, self.nodes)
        self._emit_beacons(tick, heartbeats, done=False)

    def run(self, until_tick: int | None = None) -> FleetResult:
        """Run to the horizon (or ``until_tick``, for resume tests)."""
        end = self.spec.ticks
        if until_tick is not None:
            end = max(0, min(until_tick, end))
        for tick in range(end):
            self.step(tick)
        result = self.result(end)
        self._emit_beacons(max(0, end - 1), None, done=True)
        return result

    # -- outcome ----------------------------------------------------------

    def result(self, ticks: int | None = None) -> FleetResult:
        """Condense controller state into the fleet-wide outcome."""
        spec = self.spec
        ticks = spec.ticks if ticks is None else max(1, ticks)
        states = list(self.controller.jobs.values())
        ls = [s for s in states if s.job.kind == "ls"]
        batch = [s for s in states if s.job.kind == "batch"]
        within = [
            s
            for s in ls
            if s.status == "done"
            and self.controller._stretch(s) <= spec.slo_stretch
        ]
        batch_progress = sum(
            min(s.progress, s.job.service) for s in batch
        )
        tracked = sum(
            1 for s in states if s.status in ("waiting", "placed", "done")
        )
        views = self.controller.views.values()
        return FleetResult(
            spec_digest=spec.digest,
            ticks=ticks,
            jobs_total=len(states),
            ls_total=len(ls),
            ls_completed=sum(1 for s in ls if s.status == "done"),
            ls_within_slo=len(within),
            slo_attainment=(len(within) / len(ls)) if ls else 1.0,
            batch_total=len(batch),
            batch_completed=sum(
                1 for s in batch if s.status == "done"
            ),
            batch_progress=batch_progress,
            batch_throughput=batch_progress / ticks,
            jobs_lost=len(states) - tracked,
            jobs_rescheduled=self.controller.jobs_rescheduled,
            migrations=self.controller.migrations,
            placements_failed=self.controller.placements_failed,
            nodes_dead=sum(1 for v in views if v.declared_dead),
            nodes_quarantined=sum(1 for v in views if v.quarantined),
            jobs_resumed=self.jobs_resumed,
        )

    # -- observability ----------------------------------------------------

    def _emit_beacons(
        self,
        tick: int,
        heartbeats: dict[int, dict | None] | None,
        done: bool,
    ) -> None:
        if self.beacon_dir is None:
            return
        from ..obs.heartbeat import write_beacon

        if heartbeats:
            for node_id, payload in heartbeats.items():
                if payload is None:
                    # Dark or dead: no beacon, exactly as a real dark
                    # node would go silent — watch renders staleness.
                    continue
                write_beacon(
                    self.beacon_dir,
                    f"node-{node_id}",
                    {
                        "node": node_id,
                        "tick": tick,
                        "state": "running",
                        "jobs_running": len(payload.get("jobs") or {}),
                        "contended": 1 if payload.get("contended") else 0,
                        "straggler": 1 if payload.get("straggler") else 0,
                    },
                )
        views = self.controller.views.values()
        states = self.controller.jobs.values()
        write_beacon(
            self.beacon_dir,
            "fleet",
            {
                "tick": tick,
                "state": "done" if done else "running",
                "nodes": self.spec.nodes,
                "nodes_dead": sum(1 for v in views if v.declared_dead),
                "nodes_quarantined": sum(
                    1 for v in views if v.quarantined
                ),
                "jobs_total": len(self.controller.jobs),
                "jobs_done": sum(
                    1 for s in states if s.status == "done"
                ),
                "jobs_waiting": sum(
                    1 for s in states if s.status == "waiting"
                ),
                "migrations": self.controller.migrations,
            },
        )


def render_fleet_report(result: FleetResult) -> str:
    """The episode's human-readable SLO-vs-throughput summary."""
    lines = [
        f"fleet episode {result.spec_digest[:12]} — "
        f"{result.ticks} ticks, {result.jobs_total} jobs",
        f"LS SLO attainment: {result.slo_attainment:.0%} "
        f"({result.ls_within_slo}/{result.ls_total} within stretch; "
        f"{result.ls_completed} completed)",
        f"batch throughput: {result.batch_throughput:.3f} progress/tick "
        f"({result.batch_completed}/{result.batch_total} batch jobs "
        f"completed)",
        f"jobs lost: {result.jobs_lost} "
        f"(rescheduled: {result.jobs_rescheduled}, "
        f"migrations: {result.migrations}, "
        f"failed placements: {result.placements_failed})",
        f"nodes: {result.nodes_dead} dead, "
        f"{result.nodes_quarantined} quarantined",
    ]
    if result.jobs_resumed:
        lines.append(
            f"resumed: {result.jobs_resumed} jobs from the journal"
        )
    return "\n".join(lines) + "\n"
