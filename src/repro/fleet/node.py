"""One simulated fleet node: a paper-shaped machine with local jobs.

A node hosts at most one latency-sensitive job and one batch job — the
paper's 2-core co-location, one level up.  Per-tick progress rates come
from the calibrated :class:`~repro.fleet.spec.NodeRunProfile` (real
campaign runs), and the node's CAER runtime is abstracted to the
profile's detector trigger rate: each tick the node is co-located, it
reports contention with that probability, drawn from a stream seeded by
``(episode seed, node id)`` so episodes replay bit-identically.

Faults act exactly where they would physically:

* a **crashed** node makes no progress, emits no heartbeat, and
  refuses new assignments (the controller's dispatch fails);
* a **blacked-out** node keeps computing but emits no heartbeat — the
  controller must reason about it from silence;
* a **straggling** node heartbeats normally but progresses at the
  fault plan's ``straggler_factor``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..faults.nodes import NodeFaultSchedule
from .spec import FleetJob, NodeRunProfile


@dataclass
class _LocalJob:
    """A job as the node itself sees it."""

    job: FleetJob
    progress: float = 0.0
    done_at: int | None = field(default=None)


class FleetNode:
    """One node's local truth: jobs, progress, faults, heartbeats."""

    def __init__(
        self,
        node_id: int,
        profiles: dict[str, NodeRunProfile],
        schedule: NodeFaultSchedule,
        seed: int = 0,
        straggler_factor: float = 0.5,
    ):
        self.node_id = node_id
        self.profiles = profiles
        self.schedule = schedule
        self.straggler_factor = straggler_factor
        self._rng = random.Random(f"node:{seed}:{node_id}")
        #: active jobs, keyed by job id
        self.jobs: dict[str, _LocalJob] = {}
        #: completed job id -> (tick it finished, final progress);
        #: retained so heartbeats keep reporting completions that
        #: happened during a telemetry blackout
        self.completed: dict[str, tuple[int, float]] = {}

    # -- controller-facing RPCs -------------------------------------------

    def assign(self, job: FleetJob, tick: int, progress: float = 0.0) -> bool:
        """Place ``job`` here; ``False`` = the dispatch RPC failed.

        A crashed node cannot acknowledge, which is exactly how the
        controller discovers crashes that happened since the last
        heartbeat.  ``progress`` carries over on migration/reschedule.
        """
        if self.schedule.crashed(tick):
            return False
        if job.id in self.completed:
            # The node already ran this to completion (a reschedule
            # raced a blackout); re-acknowledge without re-running.
            return True
        self.jobs[job.id] = _LocalJob(job=job, progress=progress)
        return True

    def evict(self, job_id: str, tick: int) -> float | None:
        """Remove a job, returning its accrued progress (migration).

        An unreachable node (crashed or dark) cannot service the evict
        RPC: the stale copy keeps running in the dark and is dropped by
        reconciliation when the node next reports.
        """
        if self.schedule.crashed(tick) or self.schedule.dark(tick):
            return None
        local = self.jobs.pop(job_id, None)
        return None if local is None else local.progress

    def drop(self, job_id: str) -> None:
        """Discard a stale copy (the job completed or moved elsewhere)."""
        self.jobs.pop(job_id, None)

    # -- simulation -------------------------------------------------------

    def _ls_job(self) -> _LocalJob | None:
        for local in self.jobs.values():
            if local.job.kind == "ls":
                return local
        return None

    def _batch_job(self) -> _LocalJob | None:
        for local in self.jobs.values():
            if local.job.kind == "batch":
                return local
        return None

    def tick(self, tick: int) -> dict | None:
        """Advance one tick; the heartbeat payload, or ``None`` if dark.

        Progress accrues during a blackout (the machine keeps
        computing; only its telemetry is gone) but not after a crash.
        The contention draw is consumed every live tick regardless of
        placement, so a node's fault/contention timeline never depends
        on scheduling history.
        """
        if self.schedule.crashed(tick):
            return None
        draw = self._rng.random()
        ls = self._ls_job()
        batch = self._batch_job()
        colocated = ls is not None and batch is not None
        profile = self.profiles.get(ls.job.bench) if ls is not None else None
        contended = (
            colocated
            and profile is not None
            and draw < profile.trigger_rate
        )
        slowdown = (
            self.straggler_factor if self.schedule.slowed(tick) else 1.0
        )
        if ls is not None:
            rate = (
                profile.ls_progress
                if colocated and profile is not None
                else 1.0
            )
            self._advance(ls, rate * slowdown, tick)
        if batch is not None:
            rate = (
                profile.batch_progress
                if colocated and profile is not None
                else 1.0
            )
            self._advance(batch, rate * slowdown, tick)
        if self.schedule.dark(tick):
            return None
        return {
            "node": self.node_id,
            "tick": tick,
            "jobs": {
                job_id: local.progress
                for job_id, local in self.jobs.items()
            },
            "completed": {
                job_id: done_at
                for job_id, (done_at, _) in self.completed.items()
            },
            "contended": contended,
            "straggler": self.schedule.slowed(tick),
        }

    def _advance(self, local: _LocalJob, rate: float, tick: int) -> None:
        local.progress += rate
        if local.progress >= local.job.service:
            local.progress = local.job.service
            local.done_at = tick
            self.completed[local.job.id] = (tick, local.progress)
            del self.jobs[local.job.id]
