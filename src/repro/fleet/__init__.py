"""The fleet layer: contention-aware placement over simulated nodes.

The paper governs one 2-core machine; this package is its §7 outlook —
"a datacenter of CAER machines" — grown on top of the existing stack:

* each **node** (:mod:`repro.fleet.node`) is one paper-shaped machine
  whose behaviour is calibrated from real campaign runs (the same
  :class:`~repro.experiments.campaign.Campaign` results the figures
  use, so per-node physics is bit-identical to the single-machine
  experiments);
* the **placement controller** (:mod:`repro.fleet.controller`) admits
  latency-sensitive and batch jobs onto nodes, evicts/migrates batch
  work on sustained CAER-reported contention, and fails over around
  node faults — dead nodes reschedule their stranded jobs, dark
  telemetry is treated as contention, flapping nodes are quarantined;
* the **episode** (:mod:`repro.fleet.episode`) ties spec + nodes +
  controller + journal + beacons into one deterministic, resumable
  simulation with a fleet-wide SLO-vs-throughput report.

Node-level faults ride on :class:`~repro.faults.NodeFaultPlan`; the
chaos-frontier sweep lives in
:mod:`repro.experiments.fleetchaos`.
"""

from .controller import PlacementController
from .episode import (
    FleetEpisode,
    FleetJournal,
    FleetResult,
    render_fleet_report,
)
from .node import FleetNode
from .spec import (
    FLEET_SPEC_VERSION,
    FleetJob,
    FleetSpec,
    NodeRunProfile,
    build_profiles,
)

__all__ = [
    "FLEET_SPEC_VERSION",
    "FleetSpec",
    "FleetJob",
    "NodeRunProfile",
    "build_profiles",
    "FleetNode",
    "PlacementController",
    "FleetEpisode",
    "FleetJournal",
    "FleetResult",
    "render_fleet_report",
]
