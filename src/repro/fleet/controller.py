"""The placement controller: admission, migration, failover.

The controller sees the fleet only through heartbeats — never the
nodes' local truth — so every robustness decision is made from the
telemetry a real cluster scheduler would have:

* **admission** — one LS job and one batch job per node at most (the
  paper's 2-core co-location); LS placements take the lowest-id
  healthy node, batch placements prefer an empty node and only then
  co-locate onto a currently-quiet LS node;
* **contention response** — a node whose heartbeats report contention
  for ``sustain_ticks`` consecutive ticks gets its batch job evicted
  and rescheduled elsewhere (the fleet-level analogue of CAER's
  respond-then-release loop);
* **degraded modes** — a node silent past ``suspect_after`` ticks is
  *treated as contended* (dark telemetry is never trusted blindly);
  past ``dead_after`` it is declared dead and every job stranded on it
  is rescheduled at its last-reported progress — journal-backed, so
  nothing is ever lost;
* **flap control** — evictions and dead-node reinstatements count
  against ``flap_threshold``; a flapping node is quarantined out of
  the placement pool (and recorded in the journal like a quarantined
  run);
* **retry/backoff** — a failed dispatch (the node crashed since its
  last heartbeat) re-queues the job under the PR-4
  :class:`~repro.experiments.resilience.RetryPolicy` backoff schedule,
  re-interpreted in ticks.  The attempt counter only clamps the
  backoff — jobs are never dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..experiments.resilience import RetryPolicy
from .node import FleetNode
from .spec import FleetJob, FleetSpec

#: Placement backoff schedule, in ticks (clamped to the last entry).
PLACEMENT_BACKOFF = (1.0, 2.0, 4.0)


@dataclass
class JobState:
    """One job as the controller tracks it."""

    job: FleetJob
    status: str = "waiting"  # waiting | placed | done
    node: int | None = None
    progress: float = 0.0
    attempts: int = 0
    next_attempt_tick: int = 0
    completion_tick: int | None = None
    rescheduled: int = 0


@dataclass
class NodeView:
    """What the controller believes about one node."""

    node_id: int
    last_seen: int | None = None
    declared_dead: bool = False
    quarantined: bool = False
    contended_streak: int = 0
    evictions: int = 0
    reinstatements: int = 0
    straggler: bool = False
    contended: bool = field(default=False)

    def flap_score(self) -> int:
        return self.evictions + self.reinstatements

    def silent_ticks(self, tick: int) -> int:
        if self.last_seen is None:
            return tick + 1
        return tick - self.last_seen


class PlacementController:
    """Admits, migrates, and fails over jobs from heartbeats alone."""

    def __init__(self, spec: FleetSpec, journal=None):
        self.spec = spec
        self.journal = journal
        self.jobs: dict[str, JobState] = {
            job.id: JobState(job=job) for job in spec.jobs()
        }
        self.views: dict[int, NodeView] = {
            node_id: NodeView(node_id=node_id)
            for node_id in range(spec.nodes)
        }
        self.policy = RetryPolicy(
            max_attempts=spec.max_place_attempts,
            backoff=PLACEMENT_BACKOFF,
        )
        # fleet-wide robustness counters (the report's raw material)
        self.migrations = 0
        self.jobs_rescheduled = 0
        self.placements_failed = 0

    # -- observe: fold heartbeats into beliefs ----------------------------

    def observe(
        self,
        tick: int,
        heartbeats: dict[int, dict | None],
        nodes: dict[int, FleetNode],
    ) -> None:
        """Update node views and job states from this tick's heartbeats."""
        for node_id in sorted(heartbeats):
            payload = heartbeats[node_id]
            if payload is None:
                continue
            view = self.views[node_id]
            view.last_seen = tick
            if view.declared_dead:
                # Back from the dead: a blackout outlived ``dead_after``.
                # Reinstate the node but count the flap.
                view.declared_dead = False
                view.reinstatements += 1
                self._maybe_quarantine(view)
            view.contended = bool(payload.get("contended"))
            view.straggler = bool(payload.get("straggler"))
            if view.contended:
                view.contended_streak += 1
            else:
                view.contended_streak = 0
            self._fold_completions(tick, node_id, payload, nodes)
            self._reconcile(tick, node_id, payload, nodes)

    def _fold_completions(
        self,
        tick: int,
        node_id: int,
        payload: dict,
        nodes: dict[int, FleetNode],
    ) -> None:
        completed = payload.get("completed") or {}
        for job_id in sorted(completed):
            state = self.jobs.get(job_id)
            if state is None or state.status == "done":
                continue
            # Credit at the *report* tick, not the node-local finish
            # tick: work finished during a blackout only counts for the
            # SLO once the controller can actually see it.
            state.status = "done"
            state.progress = state.job.service
            state.completion_tick = tick
            if state.node is not None and state.node != node_id:
                # A reschedule raced the dark node to completion; drop
                # the redundant copy still running elsewhere.
                nodes[state.node].drop(job_id)
            state.node = node_id
            if self.journal is not None:
                self.journal.record_job_done(
                    job_id=job_id,
                    bench=state.job.bench,
                    kind=state.job.kind,
                    tick=tick,
                    stretch=self._stretch(state),
                )

    def _reconcile(
        self,
        tick: int,
        node_id: int,
        payload: dict,
        nodes: dict[int, FleetNode],
    ) -> None:
        reported = payload.get("jobs") or {}
        for job_id in sorted(reported):
            state = self.jobs.get(job_id)
            if state is None:
                continue
            if state.status == "placed" and state.node == node_id:
                # Fresher truth than the controller's copy.
                state.progress = max(state.progress, float(reported[job_id]))
            else:
                # Stale copy from before a reschedule: the job now
                # lives elsewhere (or finished).  Merge its progress —
                # work done in the dark is still work — and drop it.
                if state.status != "done":
                    state.progress = max(
                        state.progress, float(reported[job_id])
                    )
                nodes[node_id].drop(job_id)

    # -- detect: silence, death, sustained contention, flapping -----------

    def detect(self, tick: int, nodes: dict[int, FleetNode]) -> None:
        """Apply the failover policy to this tick's beliefs."""
        spec = self.spec
        for node_id in sorted(self.views):
            view = self.views[node_id]
            if view.declared_dead:
                continue
            silent = view.silent_ticks(tick)
            if silent > spec.dead_after:
                self._declare_dead(tick, view, nodes)
                continue
            if silent > spec.suspect_after:
                # Dark telemetry is treated as contention, never
                # trusted blindly: the streak grows in absentia.
                view.contended_streak += 1
            if view.contended_streak >= spec.sustain_ticks:
                self._evict_batch(tick, view, nodes)

    def _declare_dead(
        self, tick: int, view: NodeView, nodes: dict[int, FleetNode]
    ) -> None:
        view.declared_dead = True
        view.contended_streak = 0
        for state in self._jobs_on(view.node_id):
            state.status = "waiting"
            state.node = None
            state.rescheduled += 1
            state.next_attempt_tick = tick + 1
            self.jobs_rescheduled += 1

    def _evict_batch(
        self, tick: int, view: NodeView, nodes: dict[int, FleetNode]
    ) -> None:
        for state in self._jobs_on(view.node_id):
            if state.job.kind != "batch":
                continue
            progress = nodes[view.node_id].evict(state.job.id, tick)
            if progress is not None:
                state.progress = max(state.progress, progress)
            state.status = "waiting"
            state.node = None
            state.rescheduled += 1
            # Don't re-place onto the same contention immediately.
            state.next_attempt_tick = tick + 1
            self.migrations += 1
        view.evictions += 1
        view.contended_streak = 0
        self._maybe_quarantine(view)

    def _maybe_quarantine(self, view: NodeView) -> None:
        if view.quarantined:
            return
        if view.flap_score() < self.spec.flap_threshold:
            return
        view.quarantined = True
        if self.journal is not None:
            self.journal.record_quarantined(
                digest=f"node-{view.node_id}",
                bench=f"node-{view.node_id}",
                config="fleet",
                attempts=view.flap_score(),
                error=(
                    f"flapping node: {view.evictions} evictions, "
                    f"{view.reinstatements} reinstatements"
                ),
            )
        # A quarantined node's remaining jobs move elsewhere.
        for state in self._jobs_on(view.node_id):
            state.status = "waiting"
            state.node = None
            state.rescheduled += 1
            self.jobs_rescheduled += 1

    def _jobs_on(self, node_id: int) -> list[JobState]:
        return [
            state
            for state in self.jobs.values()
            if state.status == "placed" and state.node == node_id
        ]

    # -- place: admission with retry/backoff ------------------------------

    def place(self, tick: int, nodes: dict[int, FleetNode]) -> None:
        """Try to place every eligible waiting job."""
        for state in self._waiting(tick):
            node_id = self._pick_node(tick, state.job)
            if node_id is None:
                continue
            ok = nodes[node_id].assign(
                state.job, tick, progress=state.progress
            )
            if not ok:
                # The dispatch RPC failed: the node crashed since its
                # last heartbeat.  Back off and let silence detection
                # catch up with it.
                self.placements_failed += 1
                state.attempts += 1
                retry = min(state.attempts + 1, self.policy.max_attempts)
                delay = max(1, int(self.policy.delay_before(retry)))
                state.next_attempt_tick = tick + delay
                continue
            state.status = "placed"
            state.node = node_id
            state.attempts = 0

    def _waiting(self, tick: int) -> list[JobState]:
        ready = [
            state
            for state in self.jobs.values()
            if state.status == "waiting"
            and tick >= state.job.arrival
            and tick >= state.next_attempt_tick
        ]
        # LS first (the SLO side of the trade), then batch; stable by
        # job id so placement order is deterministic.
        ready.sort(key=lambda s: (s.job.kind != "ls", s.job.id))
        return ready

    def _pick_node(self, tick: int, job: FleetJob) -> int | None:
        placed: dict[int, dict[str, bool]] = {
            node_id: {"ls": False, "batch": False}
            for node_id in self.views
        }
        for state in self.jobs.values():
            if state.status == "placed" and state.node is not None:
                placed[state.node][state.job.kind] = True
        candidates = [
            view
            for node_id, view in sorted(self.views.items())
            if not view.declared_dead
            and not view.quarantined
            and view.silent_ticks(tick) <= self.spec.suspect_after
        ]
        if job.kind == "ls":
            for view in candidates:
                if not placed[view.node_id]["ls"]:
                    return view.node_id
            return None
        # Batch: an empty node beats co-location; co-location onto a
        # currently-contended or suspect node is never chosen.
        for view in candidates:
            slots = placed[view.node_id]
            if not slots["ls"] and not slots["batch"]:
                return view.node_id
        for view in candidates:
            slots = placed[view.node_id]
            if slots["ls"] and not slots["batch"] and (
                view.contended_streak == 0
            ):
                return view.node_id
        return None

    # -- reporting helpers -------------------------------------------------

    def _stretch(self, state: JobState) -> float:
        if state.completion_tick is None:
            return float("inf")
        elapsed = state.completion_tick - state.job.arrival + 1
        return elapsed / state.job.service
