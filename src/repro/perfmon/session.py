"""Perfmon-style monitoring sessions.

A session wraps one core's PMU.  ``probe()`` is the periodic "timer
interrupt" read: it returns the counter deltas since the previous probe
and restarts counting, charging a configurable overhead to the monitored
core — the cost the paper keeps low by design ("periodic probing has
shown to be an extremely low overhead approach", §3.2).
"""

from __future__ import annotations

from ..arch.core import Core
from ..arch.pmu import CorePMU, PMUSample
from ..errors import PerfmonError
from .events import EventSet, default_event_set

#: Cycles one PMU probe costs the monitored core.  A counter read plus
#: table write is a few hundred nanoseconds on real hardware — well
#: under 0.1% of a 1 ms period; the default models that ratio.
DEFAULT_PROBE_OVERHEAD_CYCLES = 20.0


class PerfmonSession:
    """A per-core monitoring session with read-and-restart probing."""

    def __init__(
        self,
        pmu: CorePMU,
        core: Core,
        events: EventSet | None = None,
        probe_overhead_cycles: float = DEFAULT_PROBE_OVERHEAD_CYCLES,
    ):
        if probe_overhead_cycles < 0:
            raise PerfmonError(
                f"probe overhead must be >= 0: {probe_overhead_cycles}"
            )
        self.pmu = pmu
        self.core = core
        self.events = events or default_event_set()
        self.probe_overhead_cycles = probe_overhead_cycles
        self.probes = 0
        self._open = True

    def probe(self) -> PMUSample:
        """Read-and-restart the counters; returns the period's deltas."""
        if not self._open:
            raise PerfmonError("probe() on a closed session")
        self.probes += 1
        if self.probe_overhead_cycles:
            self.core.charge_overhead(self.probe_overhead_cycles)
        return self.pmu.read()

    def peek(self) -> PMUSample:
        """Read without restarting (not used by CAER; debugging aid)."""
        if not self._open:
            raise PerfmonError("peek() on a closed session")
        return self.pmu.peek()

    def close(self) -> None:
        """Release the session; further probes raise."""
        self._open = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` was called."""
        return not self._open

    def __enter__(self) -> "PerfmonSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
