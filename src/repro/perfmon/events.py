"""Event-set descriptors for perfmon sessions.

Real PMUs have a small number of programmable counters; a session must
therefore declare which events it wants.  CAER needs exactly the events
of :data:`default_event_set`; asking for more than the hardware's
counter budget raises, mirroring Perfmon2's allocation failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.pmu import PMUEvent
from ..errors import PerfmonError

#: Programmable general-purpose counters on Nehalem.
HARDWARE_COUNTERS = 4

#: Events available without a programmable counter (fixed counters).
FIXED_EVENTS = frozenset(
    {PMUEvent.CYCLES, PMUEvent.INSTRUCTIONS_RETIRED}
)


@dataclass(frozen=True)
class EventSet:
    """An immutable selection of PMU events for one session."""

    events: tuple[PMUEvent, ...]

    def __post_init__(self) -> None:
        if not self.events:
            raise PerfmonError("an event set cannot be empty")
        if len(set(self.events)) != len(self.events):
            raise PerfmonError(f"duplicate events in set: {self.events}")
        programmable = [e for e in self.events if e not in FIXED_EVENTS]
        if len(programmable) > HARDWARE_COUNTERS:
            raise PerfmonError(
                f"{len(programmable)} programmable events requested but "
                f"the PMU has only {HARDWARE_COUNTERS} counters"
            )

    def __contains__(self, event: PMUEvent) -> bool:
        return event in self.events


def default_event_set() -> EventSet:
    """The events CAER monitors (§3.1: LLC misses, retirement rate)."""
    return EventSet(
        events=(
            PMUEvent.CYCLES,
            PMUEvent.INSTRUCTIONS_RETIRED,
            PMUEvent.LLC_MISSES,
            PMUEvent.LLC_REFERENCES,
        )
    )
