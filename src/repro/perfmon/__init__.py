"""A Perfmon2-like software layer over the simulated PMUs.

The paper builds CAER on Perfmon2 (§3.1): a per-core monitoring session
is configured with a set of events and probed periodically, each probe
reading and restarting the counters.  :class:`~repro.perfmon.session.PerfmonSession`
reproduces that API against :class:`repro.arch.pmu.CorePMU`, including
the (small but nonzero) probe overhead charged to the monitored core.
"""

from .events import EventSet, default_event_set
from .session import PerfmonSession

__all__ = ["EventSet", "default_event_set", "PerfmonSession"]
