"""Node-level fault plans: `repro.faults` lifted one level up.

:class:`~repro.faults.FaultPlan` perturbs the PMU signal path *inside*
one machine; a :class:`NodeFaultPlan` perturbs the *fleet substrate*
the placement controller governs — whole nodes crash, their telemetry
goes dark while they keep computing, or they straggle at a fraction of
their provisioned speed.  Same design contract as the signal plans:

* **Frozen, hashable value objects** carried on the fleet spec and
  therefore digest-visible — a faulty episode can never share an
  identity with a clean one.
* **Deterministic**: every node draws its fault timeline from a stream
  seeded by ``(plan.seed, node id)``, so the same plan replays the
  same crashes/blackouts/stragglers across repeats and hosts.
* **One intensity knob**: :meth:`NodeFaultPlan.scaled` maps a single
  ``intensity`` in [0, 1] to a plan whose kinds grow together, which
  is what the chaos-frontier sweep drives.

The plan is expanded ahead of time into a :class:`NodeFaultSchedule` —
a per-tick truth table — so episode execution never consumes RNG state
mid-flight and resume/replay stay bit-identical.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from ..errors import FaultPlanError

#: Canonical per-kind coefficients of :meth:`NodeFaultPlan.scaled`:
#: per-tick probabilities at intensity 1.0.  Crash dominates the sweep
#: narrative but stays rare per tick (it is permanent); blackouts and
#: stragglers are transient and proportionally more common.
NODE_SCALE_COEFFICIENTS = {
    "crash_rate": 0.02,
    "blackout_rate": 0.06,
    "straggler_rate": 0.08,
}

_RATE_FIELDS = (
    "crash_rate",
    "blackout_rate",
    "blackout_recovery",
    "straggler_rate",
    "straggler_recovery",
)


@dataclass(frozen=True)
class NodeFaultSchedule:
    """One node's pre-drawn fault timeline over an episode.

    ``crash_at`` is the tick the node dies (``None`` = survives the
    episode; a crash is permanent).  ``blackout`` and ``straggler``
    are per-tick flags for the transient, sticky states: a blacked-out
    node keeps computing but emits no heartbeat; a straggling node
    heartbeats normally but makes progress at the plan's
    ``straggler_factor``.
    """

    crash_at: int | None
    blackout: tuple[bool, ...]
    straggler: tuple[bool, ...]

    def crashed(self, tick: int) -> bool:
        return self.crash_at is not None and tick >= self.crash_at

    def dark(self, tick: int) -> bool:
        """Whether the node's telemetry is invisible at ``tick``."""
        if self.crashed(tick):
            return True
        return tick < len(self.blackout) and self.blackout[tick]

    def slowed(self, tick: int) -> bool:
        return tick < len(self.straggler) and self.straggler[tick]


@dataclass(frozen=True)
class NodeFaultPlan:
    """Seeded perturbations of the fleet's node substrate.

    * ``crash_rate`` — per-tick probability a node dies permanently
      (process gone: no heartbeat, no progress, placements fail).
    * ``blackout_rate`` / ``blackout_recovery`` — per-tick probability
      telemetry goes dark / recovers; progress continues in the dark.
    * ``straggler_rate`` / ``straggler_recovery`` — per-tick
      probability a node starts / stops running at ``straggler_factor``
      of its provisioned speed.
    * ``seed`` — root of the per-node fault streams.

    All rates live in ``[0, 1]``; ``straggler_factor`` in ``(0, 1]``.
    A plan with every rate at zero (:meth:`is_null`) schedules nothing
    and episodes under it are bit-identical to fault-free ones.
    """

    crash_rate: float = 0.0
    blackout_rate: float = 0.0
    blackout_recovery: float = 0.35
    straggler_rate: float = 0.0
    straggler_recovery: float = 0.3
    straggler_factor: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if not 0.0 < self.straggler_factor <= 1.0:
            raise FaultPlanError(
                f"straggler_factor must be in (0, 1], "
                f"got {self.straggler_factor}"
            )

    def is_null(self) -> bool:
        """Whether this plan can never schedule a fault."""
        return (
            self.crash_rate == 0.0
            and self.blackout_rate == 0.0
            and self.straggler_rate == 0.0
        )

    # -- serialization (mirrors the FaultPlan conventions) ----------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "NodeFaultPlan":
        try:
            return cls(**data)
        except TypeError as exc:
            raise FaultPlanError(
                f"bad node fault plan payload {data!r}: {exc}"
            ) from None

    @classmethod
    def scaled(cls, intensity: float, seed: int = 0) -> "NodeFaultPlan":
        """The canonical plan at ``intensity`` in [0, 1].

        Every fault kind grows linearly with the single knob (see
        :data:`NODE_SCALE_COEFFICIENTS`), which is what the fleet
        chaos-frontier sweep drives.  ``intensity=0`` yields a null
        plan.
        """
        if not 0.0 <= intensity <= 1.0:
            raise FaultPlanError(
                f"intensity must be in [0, 1], got {intensity}"
            )
        return cls(
            seed=seed,
            **{
                name: coefficient * intensity
                for name, coefficient in NODE_SCALE_COEFFICIENTS.items()
            },
        )

    def describe(self) -> str:
        """Short human label, e.g. ``nodefaults(crash=0.004,seed=0)``."""
        if self.is_null():
            return f"nodefaults(null,seed={self.seed})"
        parts = [
            f"{name.removesuffix('_rate')}={getattr(self, name):g}"
            for name in ("crash_rate", "blackout_rate", "straggler_rate")
            if getattr(self, name)
        ]
        return f"nodefaults({','.join(parts)},seed={self.seed})"

    # -- expansion into a per-node timeline -------------------------------

    def schedule(self, node_id: int, ticks: int) -> NodeFaultSchedule:
        """Draw ``node_id``'s fault timeline for a ``ticks``-long episode.

        The stream is seeded by ``(plan.seed, node_id)`` only, so the
        same node replays the same timeline regardless of fleet size or
        which other nodes exist — string seeding makes the draw stable
        across platforms and Python builds.
        """
        if ticks < 0:
            raise FaultPlanError(f"ticks must be >= 0, got {ticks}")
        if self.is_null():
            return NodeFaultSchedule(
                crash_at=None,
                blackout=(False,) * ticks,
                straggler=(False,) * ticks,
            )
        rng = random.Random(f"nodefaults:{self.seed}:{node_id}")
        crash_at: int | None = None
        dark = False
        slow = False
        blackout: list[bool] = []
        straggler: list[bool] = []
        for tick in range(ticks):
            if crash_at is None and rng.random() < self.crash_rate:
                crash_at = tick
            if dark:
                if rng.random() < self.blackout_recovery:
                    dark = False
            elif rng.random() < self.blackout_rate:
                dark = True
            if slow:
                if rng.random() < self.straggler_recovery:
                    slow = False
            elif rng.random() < self.straggler_rate:
                slow = True
            blackout.append(dark)
            straggler.append(slow)
        return NodeFaultSchedule(
            crash_at=crash_at,
            blackout=tuple(blackout),
            straggler=tuple(straggler),
        )
