"""Deterministic application of a :class:`~repro.faults.FaultPlan`.

One :class:`FaultInjector` serves a whole run; it hands out one
:class:`FaultChannel` per monitored process.  A channel owns the
process's fault RNG stream — seeded from ``(plan.seed, crc32(name))``
so the stream is identical in every worker process regardless of
Python's per-process hash randomisation — plus the small amount of
state the fault kinds need (the drop carry, the stuck latch, the
delayed sample).

The perturbation pipeline is applied in a fixed order every probe
(carry-in, stuck, drop, jitter, noise, saturate, delay), and the draws
depend only on the plan and the stream — never on the sample values —
so the fault sequence of a run is a pure function of the plan.

Every injected fault is emitted as a typed
:class:`~repro.obs.FaultEvent` through the run's tracer and counted in
its metrics registry (``faults.injected`` plus a per-kind counter).
Observation stays passive: attaching or detaching a tracer never
changes which faults fire.
"""

from __future__ import annotations

import zlib

from ..arch.pmu import PMUSample
from ..obs import NULL_TRACER, FaultEvent, MetricsRegistry, Tracer
from .plan import FaultPlan

#: Per-period probability a stuck counter recovers (fixed, so the mean
#: stuck episode is 1/RECOVERY periods regardless of the plan).
STUCK_RECOVERY = 0.25

_INT_FIELDS = (
    "llc_misses", "llc_references", "l2_misses", "l1_misses",
    "back_invalidations", "lines_stolen",
)
_SATURATING_FIELDS = (
    "llc_misses", "llc_references", "l2_misses", "l1_misses",
)
_ALL_FIELDS = ("cycles", "instructions") + _INT_FIELDS


def _add(a: PMUSample, b: PMUSample) -> PMUSample:
    """Field-wise sum (counter deltas are additive across periods)."""
    return PMUSample(
        **{
            name: getattr(a, name) + getattr(b, name)
            for name in _ALL_FIELDS
        }
    )


def _scale(sample: PMUSample, factor: float) -> PMUSample:
    """Scale every field, keeping the integer counters integral."""
    values = {}
    for name in _ALL_FIELDS:
        value = getattr(sample, name) * factor
        values[name] = (
            max(0, int(round(value))) if name in _INT_FIELDS
            else max(0.0, value)
        )
    return PMUSample(**values)


def _per_counter(sample: PMUSample, factors) -> PMUSample:
    """Scale each field by its own factor (multiplicative noise)."""
    values = {}
    for name, factor in zip(_ALL_FIELDS, factors):
        value = getattr(sample, name) * float(factor)
        values[name] = (
            max(0, int(round(value))) if name in _INT_FIELDS
            else max(0.0, value)
        )
    return PMUSample(**values)


def _saturate(sample: PMUSample, cap: int) -> PMUSample:
    """Peg the cache-event counters at the saturation ceiling."""
    values = {name: getattr(sample, name) for name in _ALL_FIELDS}
    for name in _SATURATING_FIELDS:
        values[name] = cap
    return PMUSample(**values)


class FaultChannel:
    """The fault pipeline of one monitored process."""

    def __init__(self, injector: "FaultInjector", name: str):
        import numpy as np

        self.injector = injector
        self.name = name
        # crc32, not hash(): the seed must not vary across processes.
        self._rng = np.random.default_rng(
            [injector.plan.seed, zlib.crc32(name.encode("utf-8"))]
        )
        self._carry: PMUSample | None = None
        self._delayed: PMUSample | None = None
        self._stuck = False
        self._last = PMUSample.zero()

    def perturb(self, period: int, true_sample: PMUSample) -> PMUSample:
        """What monitoring observes for ``true_sample`` this period."""
        out = self._pipeline(period, true_sample)
        self._last = out
        return out

    def _pipeline(self, period: int, sample: PMUSample) -> PMUSample:
        plan = self.injector.plan
        rng = self._rng
        if self._carry is not None:
            # A previously dropped read's deltas arrive with this one.
            sample = _add(sample, self._carry)
            self._carry = None
        if self._stuck:
            if rng.random() < STUCK_RECOVERY:
                self._stuck = False
            else:
                self._emit(period, "stuck", 1.0)
                return self._last
        if plan.stuck_rate and rng.random() < plan.stuck_rate:
            self._stuck = True
            self._emit(period, "stuck", 1.0)
            return self._last
        if plan.drop_rate and rng.random() < plan.drop_rate:
            self._carry = sample
            self._emit(period, "drop", 1.0)
            return PMUSample.zero()
        if plan.jitter:
            factor = 1.0 + rng.uniform(-plan.jitter, plan.jitter)
            sample = _scale(sample, factor)
            self._emit(period, "jitter", factor)
        if plan.noise:
            factors = rng.normal(1.0, plan.noise, size=len(_ALL_FIELDS))
            sample = _per_counter(sample, factors)
            self._emit(period, "noise", plan.noise)
        if plan.saturate_rate and rng.random() < plan.saturate_rate:
            sample = _saturate(sample, plan.saturation_cap)
            self._emit(period, "saturate", float(plan.saturation_cap))
        if plan.delay_rate and rng.random() < plan.delay_rate:
            self._delayed = (
                sample if self._delayed is None
                else _add(self._delayed, sample)
            )
            self._emit(period, "delay", 1.0)
            return PMUSample.zero()
        if self._delayed is not None:
            sample = _add(sample, self._delayed)
            self._delayed = None
        return sample

    def _emit(self, period: int, fault: str, magnitude: float) -> None:
        self.injector.record(period, self.name, fault, magnitude)


class FaultInjector:
    """Per-run fault state: one channel per process, shared observers."""

    def __init__(
        self,
        plan: FaultPlan,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.plan = plan
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self._channels: dict[str, FaultChannel] = {}

    def channel(self, name: str) -> FaultChannel:
        """The (lazily created) fault channel of one process."""
        chan = self._channels.get(name)
        if chan is None:
            chan = FaultChannel(self, name)
            self._channels[name] = chan
        return chan

    def observe(
        self, period: int, name: str, true_sample: PMUSample
    ) -> PMUSample:
        """Perturb one process's sample for one period."""
        return self.channel(name).perturb(period, true_sample)

    def observe_all(
        self, period: int, samples: dict[str, PMUSample]
    ) -> dict[str, PMUSample]:
        """Perturb a whole period's samples (insertion order preserved)."""
        return {
            name: self.observe(period, name, sample)
            for name, sample in samples.items()
        }

    def record(
        self, period: int, process: str, fault: str, magnitude: float
    ) -> None:
        """Publish one injected fault to the tracer and metrics."""
        if self.tracer.enabled:
            self.tracer.emit(FaultEvent(
                period=period,
                process=process,
                fault=fault,
                magnitude=magnitude,
            ))
        if self.metrics is not None:
            self.metrics.counter("faults.injected").inc()
            self.metrics.counter(f"faults.{fault}").inc()
