"""The declarative fault plan.

The paper's whole signal path rests on periodic Perfmon2 counter reads
("1ms has shown to provide both high accuracy and low overhead", §4);
a :class:`FaultPlan` describes how that path may misbehave — samples
that never arrive, probe windows that wobble, counters that read noisy,
stick, saturate, or deliver late.  The plan is a frozen, hashable value
object carried on :class:`~repro.runspec.RunSpec`, so a faulty run is a
first-class, cacheable experiment: the plan is part of the canonical
JSON form and therefore of the content digest.

Faults are *deterministic*: every perturbation is drawn from a stream
seeded by ``(plan.seed, process name)``, so the same plan replays the
same fault sequence across repeats, worker processes, and hosts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..errors import FaultPlanError

#: Default ceiling a saturated counter pegs at (in per-period events).
DEFAULT_SATURATION_CAP = 4096

#: Canonical per-kind coefficients of :meth:`FaultPlan.scaled`: a single
#: intensity knob in [0, 1] maps to a plan whose kinds grow together.
SCALE_COEFFICIENTS = {
    "drop_rate": 0.15,
    "jitter": 0.25,
    "noise": 0.35,
    "stuck_rate": 0.05,
    "saturate_rate": 0.02,
    "delay_rate": 0.10,
}

_RATE_FIELDS = ("drop_rate", "stuck_rate", "saturate_rate", "delay_rate")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded perturbations of the PMU sampling path.

    * ``drop_rate`` — probability a period's sample is lost entirely;
      its deltas accumulate into the next delivered sample (the counter
      kept counting, only the read was missed).
    * ``jitter`` — half-width of the multiplicative probe-window wobble:
      every delivered sample is scaled by ``1 ± U(0, jitter)``.
    * ``noise`` — per-counter multiplicative Gaussian noise sigma.
    * ``stuck_rate`` — per-period probability the counters freeze at
      their last delivered reading (a sticky state with a fixed
      recovery probability; the true deltas of stuck periods are lost).
    * ``saturate_rate`` — probability the cache-event counters peg at
      ``saturation_cap`` for the period (overflowed hardware counter).
    * ``delay_rate`` — probability delivery slips one period: the
      sample arrives folded into the next one, a zero read now.
    * ``seed`` — root of the per-process fault streams.

    All rates live in ``[0, 1]``; ``jitter`` in ``[0, 1)`` so a sample
    can never be scaled negative.  A plan with every knob at zero
    (:meth:`is_null`) injects nothing and is bit-identical to running
    without a plan — but still moves the spec digest, keeping faulty
    and fault-free cache entries distinct by construction.
    """

    drop_rate: float = 0.0
    jitter: float = 0.0
    noise: float = 0.0
    stuck_rate: float = 0.0
    saturate_rate: float = 0.0
    saturation_cap: int = DEFAULT_SATURATION_CAP
    delay_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if not 0.0 <= self.jitter < 1.0:
            raise FaultPlanError(
                f"jitter must be in [0, 1), got {self.jitter}"
            )
        if self.noise < 0.0:
            raise FaultPlanError(
                f"noise must be >= 0, got {self.noise}"
            )
        if self.saturation_cap < 1:
            raise FaultPlanError(
                f"saturation_cap must be >= 1, got {self.saturation_cap}"
            )

    def is_null(self) -> bool:
        """Whether this plan can never inject anything."""
        return (
            self.drop_rate == 0.0
            and self.jitter == 0.0
            and self.noise == 0.0
            and self.stuck_rate == 0.0
            and self.saturate_rate == 0.0
            and self.delay_rate == 0.0
        )

    # -- serialization (mirrors the RunSpec conventions) ------------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        try:
            return cls(**data)
        except TypeError as exc:
            raise FaultPlanError(
                f"bad fault plan payload {data!r}: {exc}"
            ) from None

    # -- the sweep's one-knob parameterisation ----------------------------

    @classmethod
    def scaled(cls, intensity: float, seed: int = 0) -> "FaultPlan":
        """The canonical plan at ``intensity`` in [0, 1].

        Every fault kind grows linearly with the single knob (see
        :data:`SCALE_COEFFICIENTS`), which is what the ``faults``
        experiment driver sweeps.  ``intensity=0`` yields a null plan.
        """
        if not 0.0 <= intensity <= 1.0:
            raise FaultPlanError(
                f"intensity must be in [0, 1], got {intensity}"
            )
        return cls(
            seed=seed,
            **{
                name: coefficient * intensity
                for name, coefficient in SCALE_COEFFICIENTS.items()
            },
        )

    def describe(self) -> str:
        """Short human label, e.g. ``faults(drop=0.15,noise=0.35,seed=0)``."""
        if self.is_null():
            return f"faults(null,seed={self.seed})"
        parts = [
            f"{name.removesuffix('_rate')}={getattr(self, name):g}"
            for name in (
                "drop_rate", "jitter", "noise", "stuck_rate",
                "saturate_rate", "delay_rate",
            )
            if getattr(self, name)
        ]
        return f"faults({','.join(parts)},seed={self.seed})"
