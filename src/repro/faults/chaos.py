"""``REPRO_CHAOS``: deliberate infrastructure failure for tests.

Signal faults (:mod:`repro.faults.plan`) corrupt what the detectors
see; chaos mode breaks the *executor* instead — worker crashes, hangs,
and interruptions — so the resilience machinery (retry, per-run
timeout, quarantine, checkpoint/resume) can be exercised end to end
without any real flakiness.

The environment variable is ``kind:count[:victim]``:

* ``kind`` — ``crash`` (raise :class:`~repro.errors.ChaosError` in the
  worker), ``hang`` (sleep :data:`HANG_SECONDS`, tripping a per-run
  timeout), ``interrupt`` (raise :exc:`KeyboardInterrupt`, the
  deterministic stand-in for Ctrl-C mid-campaign), or ``die``
  (``os._exit`` the worker process outright — no exception, no
  cleanup — exercising dead-worker detection and replacement; in the
  main process, where nothing supervises us, it degrades to a crash);
* ``count`` — sabotage attempts 1..count of each matching run, so
  ``crash:1`` fails once and then succeeds on retry while ``crash:99``
  fails persistently (the quarantine path);
* ``victim`` — optional benchmark name; when present only runs of that
  victim are sabotaged.

Worker processes inherit the variable through fork, exactly like
``REPRO_TRACE_DIR``.  Chaos is strictly test-only: with the variable
unset, :func:`maybe_inject` is a single dict lookup.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ChaosError, ConfigError

if TYPE_CHECKING:
    from ..runspec import RunSpec

#: The arming environment variable.
CHAOS_ENV = "REPRO_CHAOS"

#: How long a chaos ``hang`` sleeps — long enough to trip any sane
#: per-run timeout, short enough that a leaked worker drains quickly.
HANG_SECONDS = 3.0

#: Exit status a chaos ``die`` terminates the worker with; tests
#: recognise it in dead-worker failure reports.
_DIE_EXIT_CODE = 86

_KINDS = ("crash", "hang", "interrupt", "die")


@dataclass(frozen=True)
class ChaosSpec:
    """A parsed ``REPRO_CHAOS`` directive."""

    kind: str
    count: int
    victim: str | None = None

    @classmethod
    def from_env(cls) -> "ChaosSpec | None":
        """Parse the environment variable (None when unarmed)."""
        raw = os.environ.get(CHAOS_ENV)
        if not raw:
            return None
        parts = raw.split(":")
        kind = parts[0]
        if kind not in _KINDS:
            raise ConfigError(
                f"{CHAOS_ENV} kind must be one of {_KINDS}, got {kind!r}"
            )
        try:
            count = int(parts[1]) if len(parts) > 1 and parts[1] else 1
        except ValueError:
            raise ConfigError(
                f"{CHAOS_ENV} count must be an integer, got {parts[1]!r}"
            ) from None
        if count < 1:
            raise ConfigError(
                f"{CHAOS_ENV} count must be >= 1, got {count}"
            )
        victim = parts[2] if len(parts) > 2 and parts[2] else None
        return cls(kind=kind, count=count, victim=victim)

    def applies(self, spec: "RunSpec", attempt: int) -> bool:
        """Whether this directive sabotages ``spec``'s ``attempt``."""
        if self.victim is not None and self.victim != spec.victim:
            return False
        return attempt <= self.count


def maybe_inject(spec: "RunSpec", attempt: int) -> None:
    """Sabotage the current run attempt if chaos mode says so.

    Called by the resilient executor's worker unit before the real
    execution; runs in the worker process (or inline when serial).
    """
    chaos = ChaosSpec.from_env()
    if chaos is None or not chaos.applies(spec, attempt):
        return
    if chaos.kind == "crash":
        raise ChaosError(
            f"chaos: injected crash on attempt {attempt} of "
            f"{spec.describe()}"
        )
    if chaos.kind == "hang":
        time.sleep(HANG_SECONDS)
        return
    if chaos.kind == "die":
        import multiprocessing

        if multiprocessing.parent_process() is not None:
            # A stand-in for the kernel's OOM kill: the worker process
            # vanishes mid-run with no exception and no goodbye.
            os._exit(_DIE_EXIT_CODE)
        # Executing in the main process (a serial round): exiting here
        # would kill the campaign itself, which no real worker death
        # can do.  Degrade to a crash so the retry ladder still turns.
        raise ChaosError(
            f"chaos: die requested in-process on attempt {attempt} of "
            f"{spec.describe()} (no worker to kill; degraded to crash)"
        )
    raise KeyboardInterrupt(
        f"chaos: injected interrupt on attempt {attempt} of "
        f"{spec.describe()}"
    )
