"""The faulty perfmon session.

:class:`FaultyPerfmonSession` sits between :class:`~repro.perfmon.
session.PerfmonSession` and whatever consumes its probes (the engines,
and through them the CAER runtime): the wrapped session still performs
the real read-and-restart — overhead charged to the core as always —
but what monitoring *observes* is the fault channel's perturbation of
the true reading.  The true sample is kept on :attr:`true_sample` so
the engine can record physical ground truth while the detectors see
the corrupted signal; that split is exactly the experiment the
``faults`` sweep runs (how gracefully do the policies degrade when the
signal path lies?).
"""

from __future__ import annotations

from ..arch.pmu import PMUSample
from ..perfmon.session import PerfmonSession
from .injector import FaultChannel


class FaultyPerfmonSession:
    """A drop-in :class:`PerfmonSession` with a lying ``probe()``."""

    def __init__(self, inner: PerfmonSession, channel: FaultChannel):
        self.inner = inner
        self.channel = channel
        #: the unperturbed reading of the most recent probe
        self.true_sample: PMUSample | None = None

    @property
    def probe_overhead_cycles(self) -> float:
        return self.inner.probe_overhead_cycles

    @property
    def probes(self) -> int:
        return self.inner.probes

    def probe(self) -> PMUSample:
        """Read-and-restart, then perturb what the reader sees."""
        true = self.inner.probe()
        self.true_sample = true
        # probes was just incremented; the 0-based period index is -1.
        return self.channel.perturb(self.inner.probes - 1, true)

    def peek(self) -> PMUSample:
        """Unperturbed peek (a debugging aid, like the inner one)."""
        return self.inner.peek()

    def close(self) -> None:
        self.inner.close()

    @property
    def closed(self) -> bool:
        return self.inner.closed

    def __enter__(self) -> "FaultyPerfmonSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
