"""Deterministic fault injection for the PMU signal path.

Two arms, one package:

* **Signal faults** — :class:`FaultPlan` (a frozen, digest-visible
  description of PMU perturbations carried on
  :class:`~repro.runspec.RunSpec`), applied by :class:`FaultInjector` /
  :class:`FaultChannel` through the :class:`FaultyPerfmonSession`
  wrapper, with every injection emitted as a typed
  :class:`~repro.obs.FaultEvent`.  The engines keep recording the
  *true* samples (physical ground truth, and the solo baselines); only
  what monitoring — and therefore CAER — observes is perturbed.
* **Chaos mode** — :mod:`repro.faults.chaos`, the ``REPRO_CHAOS``
  test-only saboteur of the executor itself (worker crashes, hangs,
  interrupts) used to exercise retry/quarantine/resume.

A third arm lifts the first one level up: **node faults**
(:mod:`repro.faults.nodes`) describe whole-node failures — crashes,
telemetry blackouts, stragglers — for the fleet layer
(:mod:`repro.fleet`), with the same frozen/seeded/digest-visible
contract as :class:`FaultPlan`.

See ``docs/robustness.md`` for the fault taxonomy and semantics.
"""

from .chaos import CHAOS_ENV, HANG_SECONDS, ChaosSpec, maybe_inject
from .injector import STUCK_RECOVERY, FaultChannel, FaultInjector
from .nodes import (
    NODE_SCALE_COEFFICIENTS,
    NodeFaultPlan,
    NodeFaultSchedule,
)
from .plan import (
    DEFAULT_SATURATION_CAP,
    SCALE_COEFFICIENTS,
    FaultPlan,
)
from .session import FaultyPerfmonSession

__all__ = [
    "FaultPlan",
    "DEFAULT_SATURATION_CAP",
    "SCALE_COEFFICIENTS",
    "NodeFaultPlan",
    "NodeFaultSchedule",
    "NODE_SCALE_COEFFICIENTS",
    "FaultInjector",
    "FaultChannel",
    "STUCK_RECOVERY",
    "FaultyPerfmonSession",
    "ChaosSpec",
    "maybe_inject",
    "CHAOS_ENV",
    "HANG_SECONDS",
]
