"""Declarative run specifications and pluggable execution backends.

The package splits *what to run* from *how to run it*:

* :mod:`repro.runspec.spec` — :class:`RunSpec`, a frozen, hashable
  description of one run (victim, contenders, machine, CAER policy,
  seed, length, backend id) with a canonical JSON form and a
  content-addressed SHA-256 digest that doubles as the campaign cache
  key;
* :mod:`repro.runspec.backends` — the :class:`ExecutionBackend`
  protocol and registry (``"sim"`` → trace-driven engine,
  ``"statistical"`` → closed-form engine), plus :func:`execute_run`,
  the single spec-in/outcome-out entry point every experiment driver
  fans out over.

Because both backends construct their processes through the shared
helpers in :mod:`repro.sim.scenario`, the same spec is bit-identical to
the equivalent hand-built scenario, and the same spec on two backends
is a pure engine comparison (:mod:`repro.experiments.crossval`).
"""

from .backends import (
    ExecutionBackend,
    RunOutcome,
    SimBackend,
    StatisticalBackend,
    backend_names,
    derive_telemetry,
    execute,
    execute_run,
    get_backend,
    register_backend,
)
from .spec import (
    BATCH_BENCHMARK,
    COMPATIBLE_VERSIONS,
    CONFIGS,
    SPEC_VERSION,
    ContenderSpec,
    RunSpec,
    paper_run_spec,
    resolve_caer_config,
)

__all__ = [
    "RunSpec",
    "ContenderSpec",
    "SPEC_VERSION",
    "COMPATIBLE_VERSIONS",
    "BATCH_BENCHMARK",
    "CONFIGS",
    "paper_run_spec",
    "resolve_caer_config",
    "ExecutionBackend",
    "SimBackend",
    "StatisticalBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "execute",
    "execute_run",
    "derive_telemetry",
    "RunOutcome",
]
