"""Pluggable execution backends for declarative run specs.

An :class:`ExecutionBackend` turns a :class:`~repro.runspec.RunSpec`
into a :class:`~repro.sim.results.RunResult`.  Two ship with the
library, registered under the ids a spec's ``backend`` field names:

* ``"sim"`` — the trace-driven :class:`repro.sim.engine.SimulationEngine`,
  simulating every memory access;
* ``"statistical"`` — the closed-form
  :class:`repro.statistical.engine.StatisticalEngine`, advancing whole
  probe periods analytically.

Both build their process lists through the shared constructors in
:mod:`repro.sim.scenario` (:func:`~repro.sim.scenario.latency_process`
and :func:`~repro.sim.scenario.batch_process`), so a spec executes with
exactly the placement, naming, seeding, and launch order a hand-built
scenario would use — the sim backend is bit-identical to
``run_solo``/``run_colocated`` on the same coordinates.

:func:`execute_run` is the one entry point the experiment drivers fan
out over: resolve the backend, execute, and condense the result into a
picklable :class:`RunOutcome` carrying the spec digest, wall-clock
cost, and the run's telemetry snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol

from ..caer.runtime import caer_factory
from ..errors import ConfigError, SchedulingError
from ..obs import MetricsRegistry, RunSpecEvent, Tracer, activate_profiling
from ..sim.engine import SimulationEngine
from ..sim.process import SimProcess
from ..sim.results import RunResult
from ..sim.scenario import batch_process, latency_process
from ..workloads import benchmark
from .spec import RunSpec


class ExecutionBackend(Protocol):
    """Anything that can execute a :class:`RunSpec`.

    Implementations must be stateless across calls (the executor may
    invoke them from several worker processes) and must build their
    processes through :mod:`repro.sim.scenario`'s constructors so that
    identical specs produce identical process lists on every backend.
    """

    def execute(
        self,
        spec: RunSpec,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> RunResult:
        """Run ``spec`` to completion and return the result record."""
        ...


def _spec_processes(spec: RunSpec) -> list[SimProcess]:
    """Materialise the spec's process list (shared by every backend)."""
    machine = spec.machine
    count = len(spec.contenders)
    if count + 1 > machine.num_cores:
        raise SchedulingError(
            f"{count} contenders + 1 victim need more cores than "
            f"the machine's {machine.num_cores}"
        )
    lines = machine.l3.capacity_lines
    victim = benchmark(spec.victim, lines, length=spec.length)
    # A solo victim launches at period 0 (run_solo's convention); a
    # co-located one is staggered after the batch (§6.1).
    stagger = spec.launch_stagger if spec.contenders else 0
    processes = [
        latency_process(victim, seed=spec.seed, launch_period=stagger)
    ]
    for index, contender in enumerate(spec.contenders):
        workload = benchmark(contender.bench, lines, length=spec.length)
        processes.append(
            batch_process(
                workload,
                index,
                count,
                seed=spec.seed,
                relaunch=contender.relaunch,
                launch_period=contender.launch_period,
            )
        )
    return processes


class SimBackend:
    """The trace-driven engine behind the ``"sim"`` backend id."""

    name = "sim"

    def execute(
        self,
        spec: RunSpec,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> RunResult:
        from ..arch.chip import MulticoreChip

        chip = MulticoreChip(spec.machine, seed=spec.seed)
        engine = SimulationEngine(
            chip,
            _spec_processes(spec),
            slices_per_period=spec.slices_per_period,
            tracer=tracer,
            metrics=metrics,
            faults=spec.faults,
        )
        if spec.caer is not None:
            engine.period_hooks.append(caer_factory(spec.caer)(engine))
        return engine.run()


class StatisticalBackend:
    """The closed-form engine behind the ``"statistical"`` backend id.

    The statistical engine has no access-level slicing, so
    ``slices_per_period`` is accepted but inert; it stays in the digest
    regardless, keeping one spec ↔ one cache entry unambiguous.
    """

    name = "statistical"

    def execute(
        self,
        spec: RunSpec,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> RunResult:
        from ..statistical.engine import StatisticalEngine

        engine = StatisticalEngine(
            spec.machine,
            _spec_processes(spec),
            tracer=tracer,
            metrics=metrics,
            faults=spec.faults,
        )
        if spec.caer is not None:
            engine.period_hooks.append(caer_factory(spec.caer)(engine))
        return engine.run()


#: The backend registry: spec ``backend`` id -> backend instance.
_BACKENDS: dict[str, ExecutionBackend] = {}


def register_backend(
    name: str, backend: ExecutionBackend, replace: bool = False
) -> None:
    """Register ``backend`` under ``name`` (refusing silent overwrites)."""
    if not name:
        raise ConfigError("backend id must be non-empty")
    if name in _BACKENDS and not replace:
        raise ConfigError(
            f"backend {name!r} is already registered "
            f"(pass replace=True to override)"
        )
    _BACKENDS[name] = backend


def get_backend(name: str) -> ExecutionBackend:
    """Look up a backend by id, with the known ids in the error."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise ConfigError(
            f"unknown backend {name!r} (known backends: {known})"
        ) from None


def backend_names() -> tuple[str, ...]:
    """The registered backend ids, sorted."""
    return tuple(sorted(_BACKENDS))


register_backend(SimBackend.name, SimBackend())
register_backend(StatisticalBackend.name, StatisticalBackend())


def execute(
    spec: RunSpec,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> RunResult:
    """Execute ``spec`` on the backend its ``backend`` field names.

    Emits a :class:`~repro.obs.RunSpecEvent` carrying the spec's digest
    before the run starts, so any resulting trace is self-describing.
    """
    backend = get_backend(spec.backend)
    if tracer is not None and tracer.enabled:
        tracer.emit(
            RunSpecEvent(
                period=0,
                digest=spec.digest,
                backend=spec.backend,
                victim=spec.victim,
                contenders=len(spec.contenders),
            )
        )
    return backend.execute(spec, tracer=tracer, metrics=metrics)


def derive_telemetry(metrics: MetricsRegistry) -> dict:
    """Snapshot a run's registry plus the derived headline scalars."""
    snapshot = metrics.snapshot()

    def _counter(name: str) -> float:
        entry = snapshot.get(name)
        return entry["value"] if entry else 0.0

    caer_periods = _counter("caer.periods")
    positives = _counter("caer.verdicts_positive")
    verdicts = positives + _counter("caer.verdicts_negative")
    paused = _counter("caer.batch_paused_periods")
    derived: dict = {
        #: fraction of issued verdicts asserting contention
        "detector_trigger_rate": (
            positives / verdicts if verdicts else 0.0
        ),
        #: fraction of CAER-governed periods the batch side actually ran
        "batch_run_fraction": (
            1.0 - paused / caer_periods if caer_periods else 1.0
        ),
        "verdicts": verdicts,
    }
    return {"metrics": snapshot, "derived": derived}


@dataclass
class RunOutcome:
    """The condensed, picklable product of executing one spec.

    The same quantities :class:`repro.experiments.campaign.RunSummary`
    caches, plus the run identity (``digest``, ``backend``) so callers
    can join an outcome back to the spec — and cache entry — that
    produced it.  ``wall_seconds`` and ``telemetry`` are excluded from
    equality: parallel and serial executions of the same spec must
    compare identical.
    """

    digest: str
    backend: str
    victim: str
    config: str
    completion_periods: int
    total_periods: int
    ls_total_llc_misses: int
    utilization_gained: float
    miss_series: list[int] = field(default_factory=list)
    instruction_series: list[float] = field(default_factory=list)
    wall_seconds: float = field(default=0.0, compare=False)
    telemetry: dict | None = field(default=None, compare=False)


def execute_run(
    spec: RunSpec,
    tracer: Tracer | None = None,
    keep_series: bool = True,
) -> RunOutcome:
    """Execute ``spec`` and condense the result into a :class:`RunOutcome`.

    The unit of work the parallel executor fans out: module-level,
    driven only by its picklable arguments, touching no shared state.
    A fresh :class:`MetricsRegistry` is attached per run; its snapshot
    (plus derived scalars and the spec identity) rides back on the
    outcome's ``telemetry``.  Span profiling is armed around the run
    (unless ``REPRO_PROFILE_SPANS=0``), so the wall-clock histograms —
    engine periods, vector-kernel batches — ride back in the same
    snapshot; they are excluded from outcome equality like every other
    telemetry field.
    """
    from ..caer.metrics import utilization_gained

    started = time.perf_counter()
    metrics = MetricsRegistry()
    with activate_profiling(metrics):
        result = execute(spec, tracer=tracer, metrics=metrics)
    ls = result.latency_sensitive()
    gained = (
        utilization_gained(result) if result.batch_processes() else 0.0
    )
    telemetry = derive_telemetry(metrics)
    telemetry["spec_digest"] = spec.digest
    telemetry["backend"] = spec.backend
    return RunOutcome(
        digest=spec.digest,
        backend=spec.backend,
        victim=spec.victim,
        config=spec.config_tag,
        completion_periods=ls.completion_periods,
        total_periods=result.total_periods,
        ls_total_llc_misses=ls.total_llc_misses(),
        utilization_gained=gained,
        miss_series=ls.llc_miss_series() if keep_series else [],
        instruction_series=(
            [round(x, 1) for x in ls.instruction_series()]
            if keep_series
            else []
        ),
        wall_seconds=round(time.perf_counter() - started, 3),
        telemetry=telemetry,
    )
