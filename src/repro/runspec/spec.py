"""The declarative run specification.

The paper's experimental unit (§6.1) is always the same shape: one
latency-sensitive victim, a group of relaunching batch contenders, a
machine, an optional CAER policy, a seed, and a run length.  Every
experiment driver used to rebuild that shape from positional tuple
fields; :class:`RunSpec` writes it down once as a frozen, hashable
value object with

* a **canonical JSON form** (:meth:`RunSpec.to_json`) — sorted keys,
  no incidental whitespace, an explicit version tag — that round-trips
  through :meth:`RunSpec.from_json`, and
* a **content-addressed digest** (:attr:`RunSpec.digest`) — the SHA-256
  of the canonical form — used as the campaign cache key, stamped on
  trace events, and carried in run telemetry.

Because the digest hashes *every* field (machine geometry included,
via :meth:`repro.config.MachineConfig.to_dict`; the full CAER policy
via :meth:`repro.caer.runtime.CaerConfig.to_dict`), any knob that can
change a result is in the cache key by construction.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field

from ..caer.runtime import CaerConfig
from ..config import MachineConfig
from ..errors import ConfigError, ExperimentError
from ..faults import FaultPlan
from ..sim.scenario import DEFAULT_LAUNCH_STAGGER

#: Version tag of the canonical JSON form.  Bump on incompatible
#: payload changes; :meth:`RunSpec.from_dict` rejects versions outside
#: :data:`COMPATIBLE_VERSIONS`.  (2: optional ``faults`` plan.
#: 3: CAER plugin-parameter mappings.)
SPEC_VERSION = 3

#: Payload versions :meth:`RunSpec.from_dict` still accepts.  Version 1
#: predates the fault plan; its payloads simply have no ``faults`` key
#: and deserialise with ``faults=None``.  Version 2 predates the CAER
#: plugin registries; its ``caer`` payloads lack the
#: ``detector_params``/``response_params`` keys and deserialise with
#: empty mappings.
COMPATIBLE_VERSIONS = (1, 2, 3)

#: The contender used throughout the paper's experiments (§6.1).
BATCH_BENCHMARK = "470.lbm"

#: The co-location configuration tags of the paper's evaluation.
CONFIGS = ("raw", "shutter", "rule", "random")


def resolve_caer_config(config: str) -> CaerConfig | None:
    """Map a config tag to a CAER setup.

    The paper's tags (:data:`CONFIGS`) resolve to their exact §6
    setups.  Beyond those, any detector in the
    :mod:`repro.caer.registry` is addressable as ``"<detector>"`` or
    ``"<detector>+<response>"`` (response defaulting to ``soft-lock``),
    so registered plugins reach the CLI and experiment drivers without
    edits here.  Unknown tags raise listing every accepted choice.
    """
    if config == "raw":
        return None
    if config == "shutter":
        return CaerConfig.shutter()
    if config == "rule":
        return CaerConfig.rule_based()
    if config == "random":
        return CaerConfig.random_baseline()
    from ..caer import registry

    detector, _, response = config.partition("+")
    if detector in registry.detector_names():
        response = response or "soft-lock"
        if response not in registry.response_names():
            raise ExperimentError(
                f"unknown response {response!r} in config {config!r} "
                f"(registered responses: "
                f"{', '.join(registry.response_names())})"
            )
        return CaerConfig(detector=detector, response=response)
    choices = ", ".join(
        dict.fromkeys(CONFIGS + registry.detector_names())
    )
    raise ExperimentError(
        f"unknown co-location config {config!r} "
        f"(accepted: {choices}, optionally '<detector>+<response>')"
    )


@dataclass(frozen=True)
class ContenderSpec:
    """One batch contender: which benchmark, and its launch behaviour.

    ``relaunch`` reproduces §6.1's "restarted whenever it finishes"
    batch semantics; ``launch_period`` delays the contender's first
    launch (0 = launched before the victim, as the paper scripts it).
    """

    bench: str
    relaunch: bool = True
    launch_period: int = 0

    def __post_init__(self) -> None:
        if not self.bench:
            raise ConfigError("contender bench name must be non-empty")
        if self.launch_period < 0:
            raise ConfigError(
                f"launch_period must be >= 0, got {self.launch_period}"
            )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ContenderSpec":
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(
                f"bad contender payload {data!r}: {exc}"
            ) from None


@dataclass(frozen=True)
class RunSpec:
    """A complete, declarative description of one simulated run.

    Frozen and hashable: usable as a dict key, picklable across the
    executor's process pool, and equal exactly when every
    result-affecting knob is equal.  ``backend`` names the execution
    engine in the :mod:`repro.runspec.backends` registry (``"sim"`` is
    the trace-driven engine, ``"statistical"`` the closed-form twin);
    it participates in the digest so cached results from different
    engines can never be confused.  ``faults``, when present, is the
    :class:`~repro.faults.FaultPlan` the engines apply to the PMU
    signal path; it too is digest-visible (even a null plan), so
    faulty and clean runs can never share a cache entry.
    """

    victim: str
    contenders: tuple[ContenderSpec, ...] = ()
    machine: MachineConfig = field(
        default_factory=MachineConfig.scaled_nehalem
    )
    caer: CaerConfig | None = None
    seed: int = 0
    length: float = 0.2
    slices_per_period: int = 8
    launch_stagger: int = DEFAULT_LAUNCH_STAGGER
    backend: str = "sim"
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not self.victim:
            raise ConfigError("victim bench name must be non-empty")
        if not isinstance(self.contenders, tuple):
            # Accept any iterable for convenience; store a tuple so the
            # spec stays hashable.
            object.__setattr__(
                self, "contenders", tuple(self.contenders)
            )
        if self.caer is not None and not self.contenders:
            raise ConfigError(
                "a CAER policy needs at least one batch contender"
            )
        if self.length <= 0:
            raise ConfigError(f"length must be > 0, got {self.length}")
        if self.slices_per_period < 1:
            raise ConfigError(
                f"slices_per_period must be >= 1, "
                f"got {self.slices_per_period}"
            )
        if self.launch_stagger < 0:
            raise ConfigError(
                f"launch_stagger must be >= 0, got {self.launch_stagger}"
            )
        if not self.backend:
            raise ConfigError("backend id must be non-empty")

    # -- canonical serialization -----------------------------------------

    def to_dict(self) -> dict:
        """Complete JSON-serialisable payload, version tag included."""
        return {
            "version": SPEC_VERSION,
            "victim": self.victim,
            "contenders": [c.to_dict() for c in self.contenders],
            "machine": self.machine.to_dict(),
            "caer": None if self.caer is None else self.caer.to_dict(),
            "seed": self.seed,
            "length": self.length,
            "slices_per_period": self.slices_per_period,
            "launch_stagger": self.launch_stagger,
            "backend": self.backend,
            "faults": (
                None if self.faults is None else self.faults.to_dict()
            ),
        }

    def to_json(self) -> str:
        """The canonical form: sorted keys, minimal separators."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output (validating)."""
        payload = dict(data)
        version = payload.pop("version", SPEC_VERSION)
        if version not in COMPATIBLE_VERSIONS:
            raise ConfigError(
                f"unsupported spec version {version!r} "
                f"(this library speaks {COMPATIBLE_VERSIONS})"
            )
        try:
            payload["contenders"] = tuple(
                ContenderSpec.from_dict(c)
                for c in payload.get("contenders", ())
            )
            payload["machine"] = MachineConfig.from_dict(
                payload["machine"]
            )
            caer = payload.get("caer")
            payload["caer"] = (
                None if caer is None else CaerConfig.from_dict(caer)
            )
            faults = payload.get("faults")
            payload["faults"] = (
                None if faults is None else FaultPlan.from_dict(faults)
            )
            return cls(**payload)
        except (KeyError, TypeError) as exc:
            raise ConfigError(f"bad run spec payload: {exc!r}") from None

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from its JSON form."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"run spec is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise ConfigError(
                f"run spec must be a JSON object, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    # -- identity ---------------------------------------------------------

    @property
    def digest(self) -> str:
        """SHA-256 content digest of the canonical JSON form."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    @property
    def config_tag(self) -> str:
        """Short human label: ``solo``, a paper tag, or the CAER label.

        Purely cosmetic — never part of the cache key — so two drivers
        describing the same run with different words still collide on
        the digest.
        """
        if not self.contenders:
            return "solo"
        if self.caer is None:
            return "raw"
        for tag in CONFIGS:
            if resolve_caer_config(tag) == self.caer:
                return tag
        return self.caer.label

    def describe(self) -> str:
        """Failure/progress identity, e.g. ``(429.mcf, rule)``."""
        tag = self.config_tag
        if len(self.contenders) > 1:
            tag = f"{tag} x{len(self.contenders)}"
        if self.faults is not None:
            tag = f"{tag}+faults"
        return f"({self.victim}, {tag})"

    def with_backend(self, backend: str) -> "RunSpec":
        """The same physical run description on another engine."""
        return dataclasses.replace(self, backend=backend)

    def with_faults(self, faults: FaultPlan | None) -> "RunSpec":
        """The same run description under a (possibly null) fault plan."""
        return dataclasses.replace(self, faults=faults)


def paper_run_spec(
    bench: str,
    config: str,
    machine: MachineConfig,
    seed: int = 0,
    length: float = 0.2,
    slices_per_period: int = 8,
    backend: str = "sim",
    contender: str = BATCH_BENCHMARK,
) -> RunSpec:
    """Build the §6.1 spec for a (benchmark, config-tag) pair.

    ``config`` is ``"solo"`` (the benchmark alone) or one of
    :data:`CONFIGS` (co-located with ``contender`` under no runtime /
    shutter / rule-based / random).  This is the single translation
    point between the campaign's tag vocabulary and declarative specs.
    """
    if config == "solo":
        contenders: tuple[ContenderSpec, ...] = ()
        caer = None
    else:
        contenders = (ContenderSpec(contender),)
        caer = resolve_caer_config(config)
    return RunSpec(
        victim=bench,
        contenders=contenders,
        machine=machine,
        caer=caer,
        seed=seed,
        length=length,
        slices_per_period=slices_per_period,
        backend=backend,
    )
