"""Canonical experiment scenarios.

These helpers build the setups the paper evaluates (§6.1): a benchmark
running *alone* on the chip, and a latency-sensitive benchmark
*co-located* with a relaunching batch contender on a neighbouring core,
optionally under a CAER runtime.  The batch is launched first and the
latency-sensitive application "shortly after", exactly as the paper
scripts its SPEC runs.

The process-construction conventions (core placement, batch naming,
seed derivation, launch order) live in :func:`latency_process` and
:func:`batch_process`; the ``run_*`` entry points and the pluggable
execution backends in :mod:`repro.runspec.backends` both build their
process lists through them, so a run described by a declarative
:class:`~repro.runspec.RunSpec` is constructed bit-identically to one
assembled by hand here.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..arch.chip import MulticoreChip
from ..config import MachineConfig
from ..errors import SchedulingError
from ..obs import MetricsRegistry, Tracer
from ..workloads.base import WorkloadSpec
from .engine import PeriodHook, SimulationEngine
from .process import AppClass, SimProcess
from .results import RunResult

#: Periods between batch launch and latency-sensitive launch.
DEFAULT_LAUNCH_STAGGER = 3

#: Seed offset between the victim's RNG stream and each batch stream.
BATCH_SEED_STRIDE = 7_919


def latency_process(
    spec: WorkloadSpec,
    seed: int = 0,
    launch_period: int = 0,
) -> SimProcess:
    """The latency-sensitive victim on core 0 (the paper's placement)."""
    return SimProcess(
        spec,
        core_id=0,
        app_class=AppClass.LATENCY_SENSITIVE,
        seed=seed,
        launch_period=launch_period,
    )


def batch_process(
    spec: WorkloadSpec,
    index: int,
    count: int,
    seed: int = 0,
    name: str | None = None,
    relaunch: bool = True,
    launch_period: int = 0,
) -> SimProcess:
    """Batch contender ``index`` of ``count``, on core ``1 + index``.

    A single contender is named ``<spec>:batch`` (the paper's two-app
    prototype); members of a larger group get ``<spec>:batch<i>``.
    Each contender draws from its own RNG stream, offset from the
    victim's seed by a fixed stride.
    """
    if count == 1:
        default_name = f"{spec.name}:batch"
    else:
        default_name = f"{spec.name}:batch{index}"
    return SimProcess(
        spec,
        core_id=1 + index,
        app_class=AppClass.BATCH,
        name=name or default_name,
        seed=seed + BATCH_SEED_STRIDE * (index + 1),
        launch_period=launch_period,
        relaunch=relaunch,
    )


def colocation_processes(
    ls_spec: WorkloadSpec,
    batch_specs: Sequence[WorkloadSpec],
    seed: int = 0,
    launch_stagger: int = DEFAULT_LAUNCH_STAGGER,
    batch_names: Sequence[str | None] | None = None,
    relaunch: bool = True,
    num_cores: int | None = None,
) -> list[SimProcess]:
    """The full §6.1 process list: victim plus its contender group.

    Raises if ``num_cores`` is given and cannot host every process.
    The victim is staggered ``launch_stagger`` periods after the batch.
    """
    count = len(batch_specs)
    if num_cores is not None and count + 1 > num_cores:
        raise SchedulingError(
            f"{count} batch apps + 1 latency-sensitive app "
            f"need more cores than the chip's {num_cores}"
        )
    processes = [
        latency_process(ls_spec, seed=seed, launch_period=launch_stagger)
    ]
    for i, spec in enumerate(batch_specs):
        name = batch_names[i] if batch_names else None
        processes.append(
            batch_process(
                spec, i, count, seed=seed, name=name, relaunch=relaunch
            )
        )
    return processes


def run_solo(
    spec: WorkloadSpec,
    machine: MachineConfig | None = None,
    seed: int = 0,
    slices_per_period: int = 8,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> RunResult:
    """Run one workload alone on the chip to completion."""
    chip = MulticoreChip(machine, seed=seed)
    engine = SimulationEngine(
        chip, [latency_process(spec, seed=seed)],
        slices_per_period=slices_per_period,
        tracer=tracer, metrics=metrics,
    )
    return engine.run()


def run_colocated(
    ls_spec: WorkloadSpec,
    batch_spec: WorkloadSpec,
    machine: MachineConfig | None = None,
    caer_factory: Callable[[SimulationEngine], PeriodHook] | None = None,
    seed: int = 0,
    slices_per_period: int = 8,
    launch_stagger: int = DEFAULT_LAUNCH_STAGGER,
    batch_name: str | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> RunResult:
    """Co-locate a latency-sensitive app with a relaunching batch app.

    The run stops when the latency-sensitive application completes; the
    batch contender is relaunched whenever it finishes early (§6.1).
    ``caer_factory``, when given, receives the engine and returns a
    period hook — this is how a :class:`repro.caer.runtime.CaerRuntime`
    is attached; ``None`` reproduces the paper's raw "co-location"
    configuration with no runtime intervention.
    """
    chip = MulticoreChip(machine, seed=seed)
    processes = colocation_processes(
        ls_spec, [batch_spec], seed=seed, launch_stagger=launch_stagger,
        batch_names=[batch_name],
    )
    engine = SimulationEngine(
        chip, processes, slices_per_period=slices_per_period,
        tracer=tracer, metrics=metrics,
    )
    if caer_factory is not None:
        engine.period_hooks.append(caer_factory(engine))
    return engine.run()


def run_multi_colocated(
    ls_spec: WorkloadSpec,
    batch_specs: list[WorkloadSpec],
    machine: MachineConfig | None = None,
    caer_factory: Callable[[SimulationEngine], PeriodHook] | None = None,
    seed: int = 0,
    slices_per_period: int = 8,
    launch_stagger: int = DEFAULT_LAUNCH_STAGGER,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> RunResult:
    """The paper's Figure 4 *architecture* scenario: one latency-
    sensitive application plus several relaunching batch applications,
    each on its own core, all batch layers obeying the shared reaction
    directives.

    The prototype evaluated in the paper hosts one batch neighbour;
    this is the generalisation its design section describes.  Raises if
    the machine has fewer than ``1 + len(batch_specs)`` cores.
    """
    chip = MulticoreChip(machine, seed=seed)
    processes = colocation_processes(
        ls_spec, batch_specs, seed=seed, launch_stagger=launch_stagger,
        num_cores=chip.num_cores,
    )
    engine = SimulationEngine(
        chip, processes, slices_per_period=slices_per_period,
        tracer=tracer, metrics=metrics,
    )
    if caer_factory is not None:
        engine.period_hooks.append(caer_factory(engine))
    return engine.run()
