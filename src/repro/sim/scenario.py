"""Canonical experiment scenarios.

These helpers build the setups the paper evaluates (§6.1): a benchmark
running *alone* on the chip, and a latency-sensitive benchmark
*co-located* with a relaunching batch contender on a neighbouring core,
optionally under a CAER runtime.  The batch is launched first and the
latency-sensitive application "shortly after", exactly as the paper
scripts its SPEC runs.
"""

from __future__ import annotations

from typing import Callable

from ..arch.chip import MulticoreChip
from ..config import MachineConfig
from ..errors import SchedulingError
from ..obs import MetricsRegistry, Tracer
from ..workloads.base import WorkloadSpec
from .engine import PeriodHook, SimulationEngine
from .process import AppClass, SimProcess
from .results import RunResult

#: Periods between batch launch and latency-sensitive launch.
DEFAULT_LAUNCH_STAGGER = 3


def run_solo(
    spec: WorkloadSpec,
    machine: MachineConfig | None = None,
    seed: int = 0,
    slices_per_period: int = 8,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> RunResult:
    """Run one workload alone on the chip to completion."""
    chip = MulticoreChip(machine, seed=seed)
    proc = SimProcess(
        spec,
        core_id=0,
        app_class=AppClass.LATENCY_SENSITIVE,
        seed=seed,
    )
    engine = SimulationEngine(
        chip, [proc], slices_per_period=slices_per_period,
        tracer=tracer, metrics=metrics,
    )
    return engine.run()


def run_colocated(
    ls_spec: WorkloadSpec,
    batch_spec: WorkloadSpec,
    machine: MachineConfig | None = None,
    caer_factory: Callable[[SimulationEngine], PeriodHook] | None = None,
    seed: int = 0,
    slices_per_period: int = 8,
    launch_stagger: int = DEFAULT_LAUNCH_STAGGER,
    batch_name: str | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> RunResult:
    """Co-locate a latency-sensitive app with a relaunching batch app.

    The run stops when the latency-sensitive application completes; the
    batch contender is relaunched whenever it finishes early (§6.1).
    ``caer_factory``, when given, receives the engine and returns a
    period hook — this is how a :class:`repro.caer.runtime.CaerRuntime`
    is attached; ``None`` reproduces the paper's raw "co-location"
    configuration with no runtime intervention.
    """
    chip = MulticoreChip(machine, seed=seed)
    batch = SimProcess(
        batch_spec,
        core_id=1,
        app_class=AppClass.BATCH,
        name=batch_name or f"{batch_spec.name}:batch",
        seed=seed + 7_919,
        launch_period=0,
        relaunch=True,
    )
    ls = SimProcess(
        ls_spec,
        core_id=0,
        app_class=AppClass.LATENCY_SENSITIVE,
        seed=seed,
        launch_period=launch_stagger,
    )
    engine = SimulationEngine(
        chip, [ls, batch], slices_per_period=slices_per_period,
        tracer=tracer, metrics=metrics,
    )
    if caer_factory is not None:
        engine.period_hooks.append(caer_factory(engine))
    return engine.run()


def run_multi_colocated(
    ls_spec: WorkloadSpec,
    batch_specs: list[WorkloadSpec],
    machine: MachineConfig | None = None,
    caer_factory: Callable[[SimulationEngine], PeriodHook] | None = None,
    seed: int = 0,
    slices_per_period: int = 8,
    launch_stagger: int = DEFAULT_LAUNCH_STAGGER,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> RunResult:
    """The paper's Figure 4 *architecture* scenario: one latency-
    sensitive application plus several relaunching batch applications,
    each on its own core, all batch layers obeying the shared reaction
    directives.

    The prototype evaluated in the paper hosts one batch neighbour;
    this is the generalisation its design section describes.  Raises if
    the machine has fewer than ``1 + len(batch_specs)`` cores.
    """
    chip = MulticoreChip(machine, seed=seed)
    if len(batch_specs) + 1 > chip.num_cores:
        raise SchedulingError(
            f"{len(batch_specs)} batch apps + 1 latency-sensitive app "
            f"need more cores than the chip's {chip.num_cores}"
        )
    processes = [
        SimProcess(
            ls_spec,
            core_id=0,
            app_class=AppClass.LATENCY_SENSITIVE,
            seed=seed,
            launch_period=launch_stagger,
        )
    ]
    for i, spec in enumerate(batch_specs):
        processes.append(
            SimProcess(
                spec,
                core_id=1 + i,
                app_class=AppClass.BATCH,
                name=f"{spec.name}:batch{i}",
                seed=seed + 7_919 * (i + 1),
                launch_period=0,
                relaunch=True,
            )
        )
    engine = SimulationEngine(
        chip, processes, slices_per_period=slices_per_period,
        tracer=tracer, metrics=metrics,
    )
    if caer_factory is not None:
        engine.period_hooks.append(caer_factory(engine))
    return engine.run()
