"""Run-result export: CSV and JSON serialisation of per-period records.

The paper's prototype "logs the decisions it makes and wall clock
execution time" (§6.1) for offline analysis; this module is that
logging path for the simulated runtime.  Exports are plain text so they
can be diffed, plotted, or fed to external tooling.
"""

from __future__ import annotations

import csv
import io
import json

from ..errors import SimulationError
from .results import ProcessResult, RunResult

#: Columns of the per-period CSV, in order.
PERIOD_COLUMNS = (
    "period",
    "process",
    "state",
    "speed",
    "cycles",
    "instructions",
    "llc_misses",
    "llc_references",
    "ipc",
)


def periods_to_csv(result: RunResult) -> str:
    """One CSV row per (period, process) pair."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(PERIOD_COLUMNS)
    for record in result.processes.values():
        for period, (state, sample, speed) in enumerate(
            zip(record.states, record.samples, record.speeds)
        ):
            writer.writerow(
                [
                    period,
                    record.name,
                    state.value,
                    speed,
                    round(sample.cycles, 1),
                    round(sample.instructions, 1),
                    sample.llc_misses,
                    sample.llc_references,
                    round(sample.ipc, 4),
                ]
            )
    return out.getvalue()


def decisions_to_csv(result: RunResult) -> str:
    """The CAER decision log as CSV (empty-log runs raise)."""
    if not result.caer_log:
        raise SimulationError("run has no CAER decision log")
    columns = list(result.caer_log[0])
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(columns)
    for record in result.caer_log:
        writer.writerow([record.get(c) for c in columns])
    return out.getvalue()


def _process_summary(record: ProcessResult) -> dict:
    summary = {
        "name": record.name,
        "class": record.app_class.value,
        "core": record.core_id,
        "launch_period": record.launch_period,
        "completions": record.completions,
        "instructions_retired": record.instructions_retired,
        "total_llc_misses": record.total_llc_misses(),
    }
    if record.first_completion_period is not None:
        summary["completion_periods"] = record.completion_periods
    return summary


def run_to_json(result: RunResult, include_series: bool = False) -> str:
    """A JSON summary of the run (optionally with full series)."""
    data = {
        "machine": result.machine_name,
        "period_cycles": result.period_cycles,
        "total_periods": result.total_periods,
        "processes": [
            _process_summary(r) for r in result.processes.values()
        ],
        "caer_decisions": len(result.caer_log),
    }
    if include_series:
        data["series"] = {
            record.name: {
                "llc_misses": record.llc_miss_series(),
                "instructions": [
                    round(x, 1) for x in record.instruction_series()
                ],
                "states": [s.value for s in record.states],
            }
            for record in result.processes.values()
        }
    return json.dumps(data, indent=2)
