"""Simulated processes.

A :class:`SimProcess` binds a workload to a core and carries the
scheduling state CAER manipulates: the paper's runtime never touches the
latency-sensitive application, but pauses and resumes *batch* processes
("red-light/green-light", "soft locking").  Pausing is modelled exactly
as the prototype does it — the process simply does not execute during
paused periods; its cache state stays in place and decays only through
the neighbours' evictions.
"""

from __future__ import annotations

from enum import Enum

from ..errors import SchedulingError
from ..workloads.base import RuntimePhase, WorkloadInstance, WorkloadSpec


class AppClass(str, Enum):
    """The paper's two application categories (§1)."""

    LATENCY_SENSITIVE = "latency-sensitive"
    BATCH = "batch"


class ProcessState(str, Enum):
    """Lifecycle of a simulated process."""

    WAITING = "waiting"  # not yet launched
    RUNNING = "running"
    PAUSED = "paused"  # throttled by a CAER directive
    FINISHED = "finished"


class SimProcess:
    """One application instance scheduled on one core."""

    def __init__(
        self,
        spec: WorkloadSpec,
        core_id: int,
        app_class: AppClass = AppClass.LATENCY_SENSITIVE,
        name: str | None = None,
        seed: int = 0,
        launch_period: int = 0,
        relaunch: bool = False,
    ):
        if core_id < 0:
            raise SchedulingError(f"invalid core id: {core_id}")
        if launch_period < 0:
            raise SchedulingError(
                f"launch_period must be >= 0: {launch_period}"
            )
        self.spec = spec
        self.core_id = core_id
        self.app_class = app_class
        self.name = name or spec.name
        self.seed = seed
        self.launch_period = launch_period
        self.relaunch = relaunch
        # Give each process a disjoint slice of the line-address space so
        # co-located processes never share data (the paper's workloads
        # do not share; contention is purely capacity/bandwidth).
        self._base = (core_id + 1) << 34
        self.workload = spec.instantiate(seed=seed, base=self._base)
        self.state = ProcessState.WAITING
        #: execution-speed multiplier in (0, 1]: the DVFS-style throttle
        #: (§7's related-work response) — 1.0 is full frequency
        self.speed_factor = 1.0
        #: completed runs (the batch app is relaunched on completion)
        self.completions = 0
        self.first_completion_period: int | None = None
        self.periods_running = 0
        self.periods_paused = 0

    # -- execution interface consumed by Core.run -----------------------

    @property
    def finished(self) -> bool:
        """Whether the current workload instance ran to completion."""
        return self.workload.finished

    def current_phase(self) -> RuntimePhase:
        """Delegate to the live workload instance."""
        return self.workload.current_phase()

    def accesses_left_in_phase(self) -> int:
        """Delegate to the live workload instance."""
        return self.workload.accesses_left_in_phase()

    def account(self, accesses: int) -> None:
        """Delegate to the live workload instance."""
        self.workload.account(accesses)

    # -- lifecycle -------------------------------------------------------

    def launch(self) -> None:
        """Move from WAITING to RUNNING (engine calls at launch_period)."""
        if self.state is not ProcessState.WAITING:
            raise SchedulingError(
                f"cannot launch {self.name!r} from state {self.state}"
            )
        self.state = ProcessState.RUNNING

    def note_completion(self, period: int) -> None:
        """Record a completed run; restart the workload if relaunching."""
        self.completions += 1
        if self.first_completion_period is None:
            self.first_completion_period = period
        if self.relaunch:
            self.workload = self.spec.instantiate(
                seed=self.seed + self.completions, base=self._base
            )
        else:
            self.state = ProcessState.FINISHED

    def set_paused(self, paused: bool) -> None:
        """Apply a CAER throttle directive (no-op once finished)."""
        if self.state is ProcessState.FINISHED:
            return
        if paused and self.state is ProcessState.RUNNING:
            self.state = ProcessState.PAUSED
        elif not paused and self.state is ProcessState.PAUSED:
            self.state = ProcessState.RUNNING

    def set_speed(self, factor: float) -> None:
        """Apply a frequency-scaling directive (DVFS-style throttle).

        ``factor`` is the fraction of the core's cycle budget the
        process may use each period; 1.0 restores full speed.
        """
        if not 0.0 < factor <= 1.0:
            raise SchedulingError(
                f"speed factor must be in (0, 1]: {factor}"
            )
        self.speed_factor = factor

    @property
    def runnable(self) -> bool:
        """Whether the engine should execute this process right now."""
        return self.state is ProcessState.RUNNING

    def __repr__(self) -> str:
        return (
            f"SimProcess({self.name!r}, core={self.core_id}, "
            f"class={self.app_class.value}, state={self.state.value})"
        )
