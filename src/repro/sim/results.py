"""Run results: everything the metrics and figure harnesses consume.

A :class:`RunResult` is a pure-data record of one simulation: per
process, the per-period PMU samples and scheduling states, plus launch
and completion bookkeeping.  All of the paper's metrics — execution-time
penalty, utilization (Eq. 1), interference eliminated, detection
accuracy (Eq. 2) — are *derived* from these records by
:mod:`repro.caer.metrics`, never computed inside the engine, so a result
can be re-analysed without re-simulating.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.pmu import PMUSample
from ..errors import SimulationError
from .process import AppClass, ProcessState


@dataclass
class ProcessResult:
    """Per-period history of one process."""

    name: str
    app_class: AppClass
    core_id: int
    launch_period: int
    #: scheduling state the process held during each period
    states: list[ProcessState] = field(default_factory=list)
    #: PMU deltas measured over each period
    samples: list[PMUSample] = field(default_factory=list)
    #: DVFS speed factor in force during each period (1.0 = full)
    speeds: list[float] = field(default_factory=list)
    completions: int = 0
    first_completion_period: int | None = None
    instructions_retired: float = 0.0

    def record(self, state: ProcessState, sample: PMUSample,
               speed: float = 1.0) -> None:
        """Append one period's observation."""
        self.states.append(state)
        self.samples.append(sample)
        self.speeds.append(speed)

    # -- series accessors ------------------------------------------------

    def llc_miss_series(self) -> list[int]:
        """LLC misses per period (Figure 3's upper curves)."""
        return [s.llc_misses for s in self.samples]

    def instruction_series(self) -> list[float]:
        """Instructions retired per period (Figure 3's lower curves)."""
        return [s.instructions for s in self.samples]

    def total_llc_misses(self) -> int:
        """Whole-run LLC misses (Figure 2's bars)."""
        return sum(s.llc_misses for s in self.samples)

    def periods_in_state(self, state: ProcessState,
                         window: tuple[int, int] | None = None) -> int:
        """Count periods spent in ``state`` (optionally within a window).

        ``window`` is a half-open period range ``(start, stop)``.
        """
        states = self.states
        if window is not None:
            start, stop = window
            states = states[start:stop]
        return sum(1 for s in states if s is state)

    @property
    def completion_periods(self) -> int:
        """Periods from launch to first completion.

        This is the paper's "wall clock execution time" of a benchmark;
        raises if the process never completed.
        """
        if self.first_completion_period is None:
            raise SimulationError(
                f"process {self.name!r} never ran to completion"
            )
        return self.first_completion_period - self.launch_period + 1


@dataclass
class RunResult:
    """Complete record of one simulation run."""

    machine_name: str
    period_cycles: int
    total_periods: int = 0
    processes: dict[str, ProcessResult] = field(default_factory=dict)
    #: per-period CAER decision log (empty when CAER was not attached)
    caer_log: list[dict] = field(default_factory=list)

    def process(self, name: str) -> ProcessResult:
        """Result record of one process by name."""
        try:
            return self.processes[name]
        except KeyError:
            raise SimulationError(
                f"no process {name!r} in run "
                f"(have: {', '.join(self.processes)})"
            ) from None

    def by_class(self, app_class: AppClass) -> list[ProcessResult]:
        """All process records of one application class."""
        return [
            p for p in self.processes.values() if p.app_class is app_class
        ]

    def latency_sensitive(self) -> ProcessResult:
        """The single latency-sensitive process of a paper-style run."""
        candidates = self.by_class(AppClass.LATENCY_SENSITIVE)
        if len(candidates) != 1:
            raise SimulationError(
                f"expected exactly one latency-sensitive process, "
                f"found {len(candidates)}"
            )
        return candidates[0]

    def batch_processes(self) -> list[ProcessResult]:
        """All batch process records."""
        return self.by_class(AppClass.BATCH)
