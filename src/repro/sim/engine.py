"""The quantum-driven simulation engine.

One engine step is one CAER probe period (§3.2's 1 ms quantum):

1. processes whose ``launch_period`` arrived are launched;
2. the period is executed in ``slices_per_period`` sub-slices, each
   runnable process getting an equal cycle budget per slice, with the
   service order rotated every slice so no core systematically wins the
   shared-L3 race;
3. processes that ran to completion are recorded (and immediately
   relaunched if they are relaunching batch apps, as in §6.1);
4. the "timer interrupt" fires: every process's perfmon session is
   probed and the per-period samples handed to the period hooks — the
   CAER runtime lives here and may pause/resume batch processes, which
   takes effect from the next period.

The run ends when every non-relaunching process has completed (or
``max_periods`` elapses, which is reported as an error unless the caller
opted out).
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from ..arch.cache import (
    bulk_kernel_enabled,
    fast_lane_enabled,
    vector_kernel_enabled,
)
from ..arch.chip import MulticoreChip
from ..arch.pmu import PMUSample
from ..errors import SchedulingError, SimulationError
from ..faults import FaultInjector, FaultPlan, FaultyPerfmonSession
from ..obs import NULL_TRACER, MetricsRegistry, PhaseEvent, PMUSampleEvent, Tracer
from ..obs.profiling import PROFILER
from ..perfmon.session import PerfmonSession
from .clock import SimClock
from .process import ProcessState, SimProcess
from .results import ProcessResult, RunResult


class PeriodHook(Protocol):
    """Callback invoked at every period boundary.

    ``samples`` maps process name to that period's PMU deltas; the hook
    may call :meth:`SimulationEngine.set_paused` to throttle batch
    processes from the next period on.
    """

    def __call__(
        self,
        engine: "SimulationEngine",
        period: int,
        samples: dict[str, PMUSample],
    ) -> None: ...


class SimulationEngine:
    """Drives a chip and a set of processes period by period."""

    def __init__(
        self,
        chip: MulticoreChip,
        processes: Iterable[SimProcess],
        period_hooks: Iterable[PeriodHook] = (),
        slices_per_period: int = 8,
        max_periods: int = 200_000,
        probe_overhead_cycles: float | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults: FaultPlan | None = None,
    ):
        # Observability is strictly passive: the tracer and registry
        # receive period-boundary events/observations and must never
        # influence the simulation (enforced by the trace-transparency
        # property tests).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        if self.metrics is not None:
            # Record which execution tier served this run (generic /
            # fast lane / bulk kernel / vector) so perf profiles are
            # attributable.  Telemetry only — never part of RunResult,
            # which must hash identically across all four tiers.
            fast = fast_lane_enabled()
            bulk = fast and bulk_kernel_enabled()
            self.metrics.gauge("sim.fast_lane").set(1.0 if fast else 0.0)
            self.metrics.gauge("sim.bulk_kernel").set(1.0 if bulk else 0.0)
            self.metrics.gauge("sim.vector_kernel").set(
                1.0 if (bulk and vector_kernel_enabled()) else 0.0
            )
        self.chip = chip
        self.processes: dict[str, SimProcess] = {}
        used_cores: set[int] = set()
        for proc in processes:
            if proc.name in self.processes:
                raise SchedulingError(f"duplicate process name {proc.name!r}")
            if proc.core_id in used_cores:
                raise SchedulingError(
                    f"core {proc.core_id} already has a process"
                )
            if proc.core_id >= chip.num_cores:
                raise SchedulingError(
                    f"process {proc.name!r} wants core {proc.core_id} but "
                    f"the chip has {chip.num_cores} cores"
                )
            used_cores.add(proc.core_id)
            self.processes[proc.name] = proc
        if not self.processes:
            raise SchedulingError("no processes to run")
        if slices_per_period < 1:
            raise SimulationError(
                f"slices_per_period must be >= 1: {slices_per_period}"
            )
        self.period_hooks = list(period_hooks)
        self.slices_per_period = slices_per_period
        self.max_periods = max_periods
        self.clock = SimClock(chip.machine.period_cycles)
        session_kwargs = {}
        if probe_overhead_cycles is not None:
            session_kwargs["probe_overhead_cycles"] = probe_overhead_cycles
        self.sessions: dict[str, PerfmonSession | FaultyPerfmonSession] = {
            name: PerfmonSession(
                chip.pmu(proc.core_id), chip.core(proc.core_id),
                **session_kwargs,
            )
            for name, proc in self.processes.items()
        }
        # A non-null fault plan interposes the faulty-session wrapper:
        # probes still charge their overhead and the physical record
        # keeps the true samples, but everything downstream of probe()
        # (the period hooks, so CAER) observes the perturbed signal.
        self.fault_injector: FaultInjector | None = None
        if faults is not None and not faults.is_null():
            self.fault_injector = FaultInjector(
                faults, tracer=self.tracer, metrics=self.metrics
            )
            self.sessions = {
                name: FaultyPerfmonSession(
                    session, self.fault_injector.channel(name)
                )
                for name, session in self.sessions.items()
            }
        self._pending_pause: dict[str, bool] = {}
        self._pending_speed: dict[str, float] = {}
        self._pending_quota: dict[str, float | None] = {}
        self.result = RunResult(
            machine_name=chip.machine.name,
            period_cycles=chip.machine.period_cycles,
        )
        for name, proc in self.processes.items():
            self.result.processes[name] = ProcessResult(
                name=name,
                app_class=proc.app_class,
                core_id=proc.core_id,
                launch_period=proc.launch_period,
            )

    # -- control interface exposed to hooks ------------------------------

    def set_paused(self, name: str, paused: bool) -> None:
        """Request a throttle state change, effective next period."""
        if name not in self.processes:
            raise SchedulingError(f"no process named {name!r}")
        self._pending_pause[name] = paused

    def set_speed(self, name: str, factor: float) -> None:
        """Request a frequency-scaling change, effective next period."""
        if name not in self.processes:
            raise SchedulingError(f"no process named {name!r}")
        self._pending_speed[name] = factor

    def set_l3_quota(self, name: str, fraction: float | None) -> None:
        """Request an L3 occupancy cap, effective next period."""
        if name not in self.processes:
            raise SchedulingError(f"no process named {name!r}")
        self._pending_quota[name] = fraction

    def process(self, name: str) -> SimProcess:
        """Look up a live process by name."""
        try:
            return self.processes[name]
        except KeyError:
            raise SchedulingError(f"no process named {name!r}") from None

    def log_decision(self, record: dict) -> None:
        """Append a CAER decision record to the run log."""
        self.result.caer_log.append(record)

    # -- main loop --------------------------------------------------------

    def run(self, stop_when: Callable[["SimulationEngine"], bool]
            | None = None) -> RunResult:
        """Run to completion and return the result record.

        ``stop_when`` overrides the default termination test ("every
        non-relaunching process finished").
        """
        done = stop_when or _all_primary_finished
        while True:
            if done(self):
                break
            if self.clock.period >= self.max_periods:
                raise SimulationError(
                    f"run exceeded max_periods={self.max_periods}; "
                    "workloads may be mis-sized for this machine"
                )
            self._step_period()
        self.result.total_periods = self.clock.period
        self._finalise()
        return self.result

    def _step_period(self) -> None:
        period = self.clock.period
        self._apply_launches(period)
        states_at_start = {
            name: proc.state for name, proc in self.processes.items()
        }
        # Wall-clock span profiling (metrics-only; trace events stay
        # free of host time).  Disabled, this is one attribute read.
        if PROFILER.enabled:
            with PROFILER.span("profile.engine_period_seconds"):
                self._execute_slices(period)
        else:
            self._execute_slices(period)
        self.chip.memory.end_period(self.chip.machine.period_cycles)
        self._probe_and_record(period, states_at_start)
        self._apply_pending_pauses()
        self.clock.advance_period()

    def _apply_launches(self, period: int) -> None:
        for proc in self.processes.values():
            if proc.state is ProcessState.WAITING and \
                    proc.launch_period <= period:
                proc.launch()
                if self.tracer.enabled:
                    self.tracer.emit(PhaseEvent(
                        period=period, scope="process",
                        subject=proc.name, phase="launched",
                    ))

    def _execute_slices(self, period: int) -> None:
        # The periodic PMU probe consumes core cycles (charged by the
        # perfmon session); the work budget shrinks accordingly.
        period_cycles = self.chip.machine.period_cycles
        budgets = {
            name: max(
                0.0,
                period_cycles - self.sessions[name].probe_overhead_cycles,
            )
            / self.slices_per_period
            for name in self.processes
        }
        names = list(self.processes)
        for s in range(self.slices_per_period):
            slice_start = self.clock.cycle_at(
                period, s / self.slices_per_period
            )
            # Rotate service order so shared-resource priority is fair.
            order = names[s % len(names):] + names[:s % len(names)]
            for name in order:
                proc = self.processes[name]
                if proc.finished and proc.state is not ProcessState.FINISHED:
                    proc.note_completion(period)
                if not proc.runnable:
                    continue
                core = self.chip.core(proc.core_id)
                core.run(
                    proc,
                    budgets[name] * proc.speed_factor,
                    start_cycle=slice_start,
                )
                if proc.finished:
                    proc.note_completion(period)

    def _probe_and_record(
        self, period: int, states_at_start: dict[str, ProcessState]
    ) -> None:
        samples: dict[str, PMUSample] = {}
        faulty = self.fault_injector is not None
        for name, proc in self.processes.items():
            session = self.sessions[name]
            # ``sample`` is what monitoring observes; the physical
            # record always keeps the true reading (identical unless a
            # fault plan interposed the faulty-session wrapper).
            sample = session.probe()
            true = session.true_sample if faulty else sample
            samples[name] = sample
            record = self.result.processes[name]
            record.record(states_at_start[name], true,
                          speed=proc.speed_factor)
            if proc.state is ProcessState.RUNNING:
                proc.periods_running += 1
            elif proc.state is ProcessState.PAUSED:
                proc.periods_paused += 1
            if self.tracer.enabled:
                self.tracer.emit(PMUSampleEvent(
                    period=period,
                    process=name,
                    state=states_at_start[name].name.lower(),
                    cycles=sample.cycles,
                    instructions=sample.instructions,
                    llc_misses=sample.llc_misses,
                    llc_references=sample.llc_references,
                ))
                if proc.state is ProcessState.FINISHED and \
                        states_at_start[name] is not ProcessState.FINISHED:
                    self.tracer.emit(PhaseEvent(
                        period=period, scope="process",
                        subject=name, phase="completed",
                    ))
            if self.metrics is not None:
                # The histogram profiles physical behaviour, so it gets
                # the true reading; the trace above is the signal-path
                # view and keeps the observed one.
                self.metrics.histogram(
                    f"sim.llc_misses_per_period.{name}"
                ).observe(true.llc_misses)
        if self.metrics is not None:
            self.metrics.counter("sim.periods").inc()
        for hook in self.period_hooks:
            hook(self, period, samples)

    def _apply_pending_pauses(self) -> None:
        for name, paused in self._pending_pause.items():
            self.processes[name].set_paused(paused)
        self._pending_pause.clear()
        for name, factor in self._pending_speed.items():
            self.processes[name].set_speed(factor)
        self._pending_speed.clear()
        for name, fraction in self._pending_quota.items():
            core = self.processes[name].core_id
            self.chip.hierarchy.set_l3_quota(core, fraction)
        self._pending_quota.clear()

    def _finalise(self) -> None:
        for name, proc in self.processes.items():
            record = self.result.processes[name]
            record.completions = proc.completions
            record.first_completion_period = proc.first_completion_period
            record.instructions_retired = (
                proc.workload.instructions_retired
                + proc.completions * proc.spec.total_instructions
                if proc.relaunch
                else proc.workload.instructions_retired
            )


def _all_primary_finished(engine: SimulationEngine) -> bool:
    """Default stop test: every non-relaunching process completed."""
    primaries = [p for p in engine.processes.values() if not p.relaunch]
    if not primaries:
        raise SimulationError(
            "all processes relaunch forever; pass an explicit stop_when"
        )
    return all(p.state is ProcessState.FINISHED for p in primaries)
