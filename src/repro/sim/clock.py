"""Simulation time bookkeeping.

Time has two granularities: *cycles* (the core/cache/memory models) and
*periods* (the CAER probe quantum, ``MachineConfig.period_cycles`` long).
:class:`SimClock` keeps both in step.
"""

from __future__ import annotations

from ..errors import SimulationError


class SimClock:
    """Monotonic period/cycle clock for one simulation run."""

    def __init__(self, period_cycles: int):
        if period_cycles <= 0:
            raise SimulationError(
                f"period_cycles must be positive: {period_cycles}"
            )
        self.period_cycles = period_cycles
        self.period = 0

    @property
    def cycle(self) -> float:
        """Cycle count at the start of the current period."""
        return float(self.period) * self.period_cycles

    def advance_period(self) -> int:
        """Move to the next period; returns the new period index."""
        self.period += 1
        return self.period

    def cycle_at(self, period: int, fraction: float = 0.0) -> float:
        """Absolute cycle of a point ``fraction`` through ``period``."""
        if not 0.0 <= fraction <= 1.0:
            raise SimulationError(f"fraction out of range: {fraction}")
        return (period + fraction) * self.period_cycles

    def __repr__(self) -> str:
        return f"SimClock(period={self.period}, cycle={self.cycle:.0f})"
