"""Quantum-driven execution engine.

The engine advances the chip one CAER probe period at a time; within a
period, runnable processes are interleaved at sub-period *slice*
granularity so their accesses contend fairly in the shared L3.  At every
period boundary the engine plays the role of the paper's 1 ms timer
interrupt: it probes each core's PMU through a perfmon session and hands
the samples to registered period hooks — the CAER runtime is such a
hook, and reacts by pausing/resuming batch processes.
"""

from .clock import SimClock
from .engine import SimulationEngine
from .process import AppClass, ProcessState, SimProcess
from .results import ProcessResult, RunResult
from .scenario import run_colocated, run_multi_colocated, run_solo

__all__ = [
    "SimClock",
    "SimulationEngine",
    "AppClass",
    "ProcessState",
    "SimProcess",
    "ProcessResult",
    "RunResult",
    "run_solo",
    "run_colocated",
    "run_multi_colocated",
]
