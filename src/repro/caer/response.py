"""Contention responses (§5).

After a verdict the runtime enters a response state — *c-positive* when
contention was asserted, *c-negative* otherwise — and throttles (or
releases) the batch applications:

* :class:`RedLightGreenLight` holds the verdict for a fixed number of
  periods (red = batch paused, green = batch running).  The adaptive
  variant the paper sketches lengthens the hold while consecutive
  verdicts agree, and snaps back to the base length on a flip.
* :class:`SoftLock` parks the batch for as long as the
  latency-sensitive side keeps missing heavily, releasing it the moment
  the pressure subsides; a c-negative verdict ends immediately so
  detection resumes at the next period.
* :class:`FrequencyScaling` implements the direction §7 highlights as
  promising (Herdrich et al.): instead of stopping the batch outright,
  run its core at a reduced frequency while contention holds — gentler
  on throughput, still relieving cache/bandwidth pressure.

A response reports ``done`` when control should return to the detection
phase (Figure 5's respond → detect transition).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from ..errors import ConfigError, DetectorError
from .detector import Observation


@dataclass(frozen=True)
class ResponseStep:
    """Response output for one period.

    ``speed`` is the DVFS-style frequency fraction applied to the batch
    cores; the pause-based responses leave it at full speed.
    """

    pause_batch: bool
    done: bool
    speed: float = 1.0
    #: L3 occupancy cap for the batch cores (None = uncapped)
    l3_quota: float | None = None


class ResponsePolicy(ABC):
    """Base class of the paper's throttling responses."""

    name: str = "abstract"

    @abstractmethod
    def begin(self, contending: bool) -> None:
        """Enter the c-positive (True) or c-negative (False) state."""

    @abstractmethod
    def step(self, obs: Observation) -> ResponseStep:
        """Advance one period inside the response state."""


class RedLightGreenLight(ResponsePolicy):
    """Hold the verdict for ``length`` periods (§5's first response)."""

    name = "red-light-green-light"

    def __init__(
        self,
        length: int = 10,
        adaptive: bool = False,
        max_length: int = 80,
    ):
        if length < 1:
            raise ConfigError(f"length must be >= 1: {length}")
        if max_length < length:
            raise ConfigError(
                f"max_length ({max_length}) must be >= length ({length})"
            )
        self.base_length = length
        self.adaptive = adaptive
        self.max_length = max_length
        self._current_length = length
        self._remaining = 0
        self._verdict: bool | None = None
        self._previous_verdict: bool | None = None

    def begin(self, contending: bool) -> None:
        """Arm the hold; adaptively lengthen on repeated verdicts."""
        if self.adaptive and self._previous_verdict is contending:
            self._current_length = min(
                self._current_length * 2, self.max_length
            )
        else:
            self._current_length = self.base_length
        self._previous_verdict = contending
        self._verdict = contending
        self._remaining = self._current_length

    def step(self, obs: Observation) -> ResponseStep:
        """Red while contending, green otherwise, for the armed length."""
        if self._verdict is None or self._remaining <= 0:
            raise DetectorError("step() on a response that was not begun")
        self._remaining -= 1
        return ResponseStep(
            pause_batch=self._verdict, done=self._remaining == 0
        )

    @property
    def current_length(self) -> int:
        """The hold length currently armed (grows in adaptive mode)."""
        return self._current_length

    def __repr__(self) -> str:
        return (
            f"RedLightGreenLight(length={self.base_length}, "
            f"adaptive={self.adaptive})"
        )


class SoftLock(ResponsePolicy):
    """Park the batch until the neighbour's cache pressure subsides.

    ``release_thresh`` is the same "heavy usage" threshold the
    rule-based detector uses: the lock is held while the
    latency-sensitive side's windowed LLC-miss average stays above it
    (§5: "the batch application is allowed to fully resume execution
    when the pressure on the cache subsides").  ``max_hold`` bounds the
    lock so a permanently-hot neighbour cannot starve the batch forever:
    after ``max_hold`` paused periods the response ends and detection
    re-evaluates.  The paper does not specify a bound; the default was
    chosen so that rule-based utilization for always-hot neighbours
    lands in the band the paper reports for its most sensitive
    benchmarks.
    """

    name = "soft-lock"

    def __init__(self, release_thresh: float, max_hold: int = 25):
        if release_thresh < 0:
            raise ConfigError(
                f"release_thresh must be >= 0: {release_thresh}"
            )
        if max_hold < 1:
            raise ConfigError(f"max_hold must be >= 1: {max_hold}")
        self.release_thresh = release_thresh
        self.max_hold = max_hold
        self._locked = False
        self._held = 0
        self._begun = False

    def begin(self, contending: bool) -> None:
        """Lock on c-positive; pass through on c-negative."""
        self._locked = contending
        self._held = 0
        self._begun = True

    def step(self, obs: Observation) -> ResponseStep:
        """Hold the lock while the neighbour stays above the threshold."""
        if not self._begun:
            raise DetectorError("step() on a response that was not begun")
        if not self._locked:
            # c-negative: let the batch run and hand control straight
            # back to detection.
            self._begun = False
            return ResponseStep(pause_batch=False, done=True)
        self._held += 1
        release = (
            obs.neighbor_mean < self.release_thresh
            or self._held >= self.max_hold
        )
        if release:
            self._locked = False
            self._begun = False
            return ResponseStep(pause_batch=False, done=True)
        return ResponseStep(pause_batch=True, done=False)

    @property
    def locked(self) -> bool:
        """Whether the lock is currently held."""
        return self._locked

    def __repr__(self) -> str:
        return (
            f"SoftLock(release_thresh={self.release_thresh}, "
            f"max_hold={self.max_hold})"
        )


class FrequencyScaling(ResponsePolicy):
    """DVFS-style response: slow the batch core instead of pausing it.

    On a c-positive verdict the batch cores run at ``scale`` of their
    frequency for ``length`` periods; on c-negative they run at full
    speed for ``length`` periods.  The paper's §7 cites per-core DVFS
    (Herdrich et al., ICS'09) as a promising alternative to execution
    throttling — this policy lets the ablation benches quantify the
    trade-off on this substrate.
    """

    name = "frequency-scaling"

    def __init__(self, scale: float = 0.25, length: int = 10):
        if not 0.0 < scale <= 1.0:
            raise ConfigError(f"scale must be in (0, 1]: {scale}")
        if length < 1:
            raise ConfigError(f"length must be >= 1: {length}")
        self.scale = scale
        self.length = length
        self._remaining = 0
        self._verdict: bool | None = None

    def begin(self, contending: bool) -> None:
        """Arm the scaled (or full-speed) hold."""
        self._verdict = contending
        self._remaining = self.length

    def step(self, obs: Observation) -> ResponseStep:
        """Run the batch at reduced or full frequency."""
        if self._verdict is None or self._remaining <= 0:
            raise DetectorError("step() on a response that was not begun")
        self._remaining -= 1
        speed = self.scale if self._verdict else 1.0
        return ResponseStep(
            pause_batch=False,
            done=self._remaining == 0,
            speed=speed,
        )

    def __repr__(self) -> str:
        return (
            f"FrequencyScaling(scale={self.scale}, length={self.length})"
        )


class CachePartition(ResponsePolicy):
    """Hardware-style response: cap the batch side's L3 occupancy.

    The paper's related work (§7) surveys cache-partitioning/QoS
    proposals and notes commodity chips cannot support them; the
    simulated L3 can (:meth:`repro.arch.hierarchy.CacheHierarchy.set_l3_quota`),
    so this policy quantifies what CAER's software-only throttling gives
    up against that hypothetical hardware: on a c-positive verdict the
    batch keeps *running* but may only hold ``quota`` of the L3 for
    ``length`` periods; on c-negative the cap is lifted.

    Note the limits of the mechanism: it protects the victim's cache
    occupancy but not the shared memory channel, so bandwidth-bound
    interference passes straight through it.
    """

    name = "cache-partition"

    def __init__(self, quota: float = 0.25, length: int = 10):
        if not 0.0 < quota <= 1.0:
            raise ConfigError(f"quota must be in (0, 1]: {quota}")
        if length < 1:
            raise ConfigError(f"length must be >= 1: {length}")
        self.quota = quota
        self.length = length
        self._remaining = 0
        self._verdict: bool | None = None

    def begin(self, contending: bool) -> None:
        """Arm the capped (or uncapped) hold."""
        self._verdict = contending
        self._remaining = self.length

    def step(self, obs: Observation) -> ResponseStep:
        """Run the batch under (or free of) the occupancy cap."""
        if self._verdict is None or self._remaining <= 0:
            raise DetectorError("step() on a response that was not begun")
        self._remaining -= 1
        return ResponseStep(
            pause_batch=False,
            done=self._remaining == 0,
            l3_quota=self.quota if self._verdict else None,
        )

    def __repr__(self) -> str:
        return f"CachePartition(quota={self.quota}, length={self.length})"
