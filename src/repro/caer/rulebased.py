"""The Rule-Based detection heuristic (§4.2, Algorithm 2).

This heuristic tests the paper's hypothesis directly: contention exists
when *both* sides are missing heavily in the shared last-level cache.
Each period it compares the windowed average LLC misses of the
latency-sensitive side and of the batch side against ``usage_thresh``
(the paper uses 1500 misses per 1 ms period); contention is asserted
only when both are above it.

Unlike Burst-Shutter this produces a verdict every period, and is paired
with the soft-lock response (§5), which keeps the batch parked until the
latency-sensitive side's pressure subsides.
"""

from __future__ import annotations

from ..errors import ConfigError
from .detector import ContentionDetector, DetectorStep, Observation

#: The paper's threshold on the reference machine: 1500 misses / 1 ms.
#: Use :func:`repro.config.default_usage_threshold` to convert it to a
#: scaled machine's period length.
REFERENCE_USAGE_THRESH = 1500.0


class RuleBasedDetector(ContentionDetector):
    """Algorithm 2: both sides above the usage threshold => contending."""

    name = "rule-based"

    def __init__(self, usage_thresh: float):
        if usage_thresh < 0:
            raise ConfigError(f"usage_thresh must be >= 0: {usage_thresh}")
        self.usage_thresh = usage_thresh
        self.trace_threshold = usage_thresh
        self.verdicts: list[bool] = []

    def step(self, obs: Observation) -> DetectorStep:
        """Verdict from this period's windowed averages."""
        contending = True
        if obs.own_mean < self.usage_thresh:
            contending = False
        if obs.neighbor_mean < self.usage_thresh:
            contending = False
        self.verdicts.append(contending)
        return DetectorStep(pause_self=False, assertion=contending)

    def reset(self) -> None:
        """Stateless between periods; nothing to reset."""

    def __repr__(self) -> str:
        return f"RuleBasedDetector(usage_thresh={self.usage_thresh})"
