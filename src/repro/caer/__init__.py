"""CAER: the Contention Aware Execution Runtime (the paper's contribution).

The runtime watches per-period PMU samples of every hosted application
through a shared communication table (§3.2), detects shared-cache
contention online with one of two heuristics — Burst-Shutter
(Algorithm 1) or Rule-Based (Algorithm 2) — and responds by throttling
the batch applications (red-light/green-light or soft-locking, §5).
A random detector (§6.4) serves as the accuracy baseline.

Detectors and responses are *plugins*: :mod:`repro.caer.registry`
holds open registries keyed by the names ``CaerConfig`` uses, and
ships a zoo beyond the paper's pair — a learned GMM fence, a
non-parametric CDF/quantile tail detector, and a proactive detector
driven by the :mod:`repro.analytic` co-location model.  Register your
own with :func:`register_detector` / :func:`register_response`.

Typical use::

    from repro.caer import CaerConfig, caer_factory
    from repro.sim import run_colocated

    config = CaerConfig.rule_based()
    result = run_colocated(ls_spec, batch_spec,
                           caer_factory=caer_factory(config))
"""

from .analysis import (
    AccuracyReport,
    DecisionSummary,
    DetectionAccuracy,
    PeriodConfusion,
    score_detection_events,
    score_verdicts,
    summarise_decisions,
)
from .cdf_detector import CdfQuantileDetector
from .detector import ContentionDetector, DetectorStep, Observation
from .gmm_detector import GmmFenceDetector, fit_two_gaussians
from .metrics import (
    accuracy_vs_random,
    effective_utilization_gained,
    interference_eliminated,
    slowdown,
    utilization,
    utilization_gained,
)
from .proactive import AnalyticProactiveDetector, predicted_miss_fence
from .profile_detector import ProfileDetector
from .random_detector import RandomDetector
from .registry import (
    build_detector,
    build_response,
    detector_names,
    register_detector,
    register_response,
    response_names,
)
from .response import (
    CachePartition,
    FrequencyScaling,
    RedLightGreenLight,
    ResponsePolicy,
    SoftLock,
)
from .rulebased import RuleBasedDetector
from .runtime import CaerConfig, CaerRuntime, caer_factory
from .shutter import BurstShutterDetector
from .table import CommunicationTable
from .window import SampleWindow

__all__ = [
    "ContentionDetector",
    "DetectorStep",
    "Observation",
    "BurstShutterDetector",
    "RuleBasedDetector",
    "RandomDetector",
    "ProfileDetector",
    "GmmFenceDetector",
    "CdfQuantileDetector",
    "AnalyticProactiveDetector",
    "fit_two_gaussians",
    "predicted_miss_fence",
    "register_detector",
    "register_response",
    "detector_names",
    "response_names",
    "build_detector",
    "build_response",
    "ResponsePolicy",
    "RedLightGreenLight",
    "SoftLock",
    "FrequencyScaling",
    "CachePartition",
    "CaerConfig",
    "CaerRuntime",
    "caer_factory",
    "CommunicationTable",
    "SampleWindow",
    "utilization",
    "utilization_gained",
    "effective_utilization_gained",
    "slowdown",
    "interference_eliminated",
    "accuracy_vs_random",
    "AccuracyReport",
    "DecisionSummary",
    "DetectionAccuracy",
    "PeriodConfusion",
    "score_detection_events",
    "score_verdicts",
    "summarise_decisions",
]
