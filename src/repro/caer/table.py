"""The shared-memory communication table (§3.2, Figure 4).

Every CAER virtual layer — the lightweight CAER-M monitors under
latency-sensitive applications and the main engines under batch
applications — publishes its per-period PMU samples into this table and
reads its neighbours' rows from it.  Reaction directives are recorded
here too, and "all batch processes must adhere to the reaction
directives".

In the real prototype this is a shared-memory segment; here it is an
ordinary object shared by the runtime layers of one simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.pmu import PMUSample
from ..errors import ConfigError
from ..sim.process import AppClass
from .window import SampleWindow

DEFAULT_WINDOW_SIZE = 20


@dataclass
class TableRow:
    """One application's published state."""

    name: str
    app_class: AppClass
    llc_misses: SampleWindow
    instructions: SampleWindow
    last_sample: PMUSample | None = None
    samples_published: int = 0


@dataclass
class Directives:
    """The reaction directives all batch layers must follow."""

    pause_batch: bool = False
    #: DVFS-style frequency fraction for the batch cores (1.0 = full)
    batch_speed: float = 1.0
    #: why the current directive holds, for the decision log
    reason: str = "init"


class CommunicationTable:
    """Shared rows of per-application sample windows plus directives."""

    def __init__(self, window_size: int = DEFAULT_WINDOW_SIZE):
        if window_size < 1:
            raise ConfigError(f"window_size must be >= 1: {window_size}")
        self.window_size = window_size
        self.rows: dict[str, TableRow] = {}
        self.directives = Directives()

    def register(self, name: str, app_class: AppClass) -> TableRow:
        """Add an application's row (idempotent per name)."""
        if name in self.rows:
            raise ConfigError(f"application {name!r} already registered")
        row = TableRow(
            name=name,
            app_class=app_class,
            llc_misses=SampleWindow(self.window_size),
            instructions=SampleWindow(self.window_size),
        )
        self.rows[name] = row
        return row

    def publish(self, name: str, sample: PMUSample) -> None:
        """Record one period's sample for ``name``."""
        row = self.row(name)
        row.llc_misses.push(float(sample.llc_misses))
        row.instructions.push(sample.instructions)
        row.last_sample = sample
        row.samples_published += 1

    def row(self, name: str) -> TableRow:
        """Look up an application's row."""
        try:
            return self.rows[name]
        except KeyError:
            raise ConfigError(
                f"application {name!r} not registered "
                f"(have: {', '.join(self.rows)})"
            ) from None

    def rows_by_class(self, app_class: AppClass) -> list[TableRow]:
        """All rows of one application class."""
        return [r for r in self.rows.values() if r.app_class is app_class]

    def latency_sensitive_misses(self) -> float:
        """Combined LLC misses of latency-sensitive apps, last period.

        The paper's prototype has a single latency-sensitive neighbour;
        with several, their miss counts add because they press on the
        same shared cache.
        """
        return sum(
            r.llc_misses.last()
            for r in self.rows_by_class(AppClass.LATENCY_SENSITIVE)
        )

    def latency_sensitive_mean(self) -> float:
        """Combined windowed mean of latency-sensitive LLC misses."""
        return sum(
            r.llc_misses.mean()
            for r in self.rows_by_class(AppClass.LATENCY_SENSITIVE)
        )

    def batch_misses(self) -> float:
        """Combined LLC misses of batch apps, last period."""
        return sum(
            r.llc_misses.last() for r in self.rows_by_class(AppClass.BATCH)
        )

    def batch_mean(self) -> float:
        """Combined windowed mean of batch LLC misses."""
        return sum(
            r.llc_misses.mean() for r in self.rows_by_class(AppClass.BATCH)
        )
