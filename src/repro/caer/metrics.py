"""The paper's evaluation metrics.

All metrics are derived from :class:`repro.sim.results.RunResult`
records:

* **slowdown / cross-core interference penalty** — the ratio of the
  latency-sensitive application's completion time co-located vs. alone
  (Figures 1 and 6);
* **utilization** — Equation 1: the average over cores of the fraction
  of time spent running rather than idle, measured over the
  latency-sensitive application's lifetime;
* **utilization gained** — the extra utilization co-location recovers
  relative to running the latency-sensitive application alone
  (Figure 7): with one batch neighbour this is exactly the fraction of
  periods the batch was allowed to run;
* **interference eliminated** — the share of the raw co-location
  penalty a CAER configuration removes (Figure 8);
* **accuracy vs. random** — Equation 2: ``A = U_h / U_r - 1``
  (Figures 9 and 10).
"""

from __future__ import annotations

from ..errors import ExperimentError
from ..sim.process import ProcessState
from ..sim.results import RunResult


def slowdown(colocated: RunResult, solo: RunResult) -> float:
    """Execution-time ratio of the latency-sensitive app: co-located/alone.

    A value of 1.36 is the paper's "36% slowdown" for mcf next to lbm.
    """
    ls_colo = colocated.latency_sensitive()
    ls_solo = solo.latency_sensitive()
    return ls_colo.completion_periods / ls_solo.completion_periods


def penalty(colocated: RunResult, solo: RunResult) -> float:
    """Cross-core interference penalty: ``slowdown - 1``."""
    return slowdown(colocated, solo) - 1.0


def _ls_window(result: RunResult) -> tuple[int, int]:
    """The latency-sensitive app's active period range [launch, done)."""
    ls = result.latency_sensitive()
    if ls.first_completion_period is None:
        raise ExperimentError(
            f"latency-sensitive app {ls.name!r} did not complete"
        )
    return ls.launch_period, ls.first_completion_period + 1


def utilization(result: RunResult, num_cores: int = 2) -> float:
    """Equation 1 over the latency-sensitive app's lifetime.

    ``num_cores`` defaults to 2 — the prototype's co-location pair; the
    other cores of the quad-core chip are idle in every configuration
    and would only shift all results by a constant.
    """
    start, stop = _ls_window(result)
    window_periods = stop - start
    if window_periods <= 0:
        raise ExperimentError("empty latency-sensitive window")
    running_fractions = []
    for record in result.processes.values():
        running = record.periods_in_state(
            ProcessState.RUNNING, window=(start, stop)
        )
        running_fractions.append(running / window_periods)
    # Cores beyond the managed processes are idle for the whole window.
    idle_cores = num_cores - len(running_fractions)
    if idle_cores < 0:
        raise ExperimentError(
            f"num_cores={num_cores} but {len(running_fractions)} "
            "processes were scheduled"
        )
    running_fractions.extend([0.0] * idle_cores)
    return sum(running_fractions) / num_cores


def utilization_gained(result: RunResult) -> float:
    """Fraction of the LS lifetime the batch side executed (Figure 7).

    0.0 reproduces "disallow co-location" (the batch never ran); 1.0 is
    raw co-location (the batch ran every period).  With one batch
    process this equals ``2*U - 1`` for the pairwise Equation 1
    utilization ``U``.
    """
    start, stop = _ls_window(result)
    window_periods = stop - start
    batch = result.batch_processes()
    if not batch:
        return 0.0
    gained = [
        record.periods_in_state(ProcessState.RUNNING, window=(start, stop))
        / window_periods
        for record in batch
    ]
    return sum(gained) / len(gained)


def interference_eliminated(
    raw_penalty: float, managed_penalty: float
) -> float:
    """Share of the co-location penalty removed by CAER (Figure 8).

    Clamped below at 0 (a heuristic cannot "eliminate" negative
    interference); raises when there was no raw penalty to eliminate.
    """
    if raw_penalty <= 0:
        raise ExperimentError(
            f"no positive raw penalty to eliminate: {raw_penalty}"
        )
    return max(0.0, (raw_penalty - managed_penalty) / raw_penalty)


def accuracy_vs_random(
    utilization_heuristic: float, utilization_random: float
) -> float:
    """Equation 2: ``A = U_h / U_r - 1``.

    Positive for a sensitive neighbour means the heuristic *failed* to
    sacrifice utilization (false negatives); negative for an insensitive
    neighbour means it sacrificed needlessly (false positives) — see
    §6.4's reading of Figures 9 and 10.
    """
    if utilization_random <= 0:
        raise ExperimentError(
            f"random-baseline utilization must be positive: "
            f"{utilization_random}"
        )
    return utilization_heuristic / utilization_random - 1.0


def effective_utilization_gained(result: RunResult) -> float:
    """Speed-weighted batch utilization over the LS lifetime.

    Like :func:`utilization_gained`, but a period executed at a DVFS
    speed factor of ``f`` contributes ``f`` rather than 1 — the honest
    throughput measure for the frequency-scaling response, identical to
    :func:`utilization_gained` for the pause-based responses.
    """
    start, stop = _ls_window(result)
    window_periods = stop - start
    batch = result.batch_processes()
    if not batch:
        return 0.0
    gained = []
    for record in batch:
        credit = sum(
            speed
            for state, speed in zip(
                record.states[start:stop], record.speeds[start:stop]
            )
            if state is ProcessState.RUNNING
        )
        gained.append(credit / window_periods)
    return sum(gained) / len(gained)
