"""An offline-profile "oracle" detector.

CAER's heuristics work with zero prior knowledge.  The related work's
co-scheduling line (Jiang et al., Fedorova et al.) instead assumes
*offline profiles*; this detector implements that upper bound so the
evaluation can ask how much headroom the online heuristics leave:

given the victim's solo LLC-miss baseline (misses per period, measured
in a profiling run), assert contention exactly when the observed
windowed average deviates from that baseline by more than a tolerance.
It is an oracle in the sense of knowing the victim's uncontended
behaviour — knowledge the online heuristics must infer by perturbing
the system.
"""

from __future__ import annotations

from ..errors import ConfigError
from .detector import ContentionDetector, DetectorStep, Observation

DEFAULT_TOLERANCE = 0.25


class ProfileDetector(ContentionDetector):
    """Compare the neighbour's misses against an offline solo baseline.

    ``baseline_misses`` is the victim's solo misses-per-period (mean is
    fine; a phase-faithful profile only sharpens it).  Contention is
    asserted when the observed windowed mean deviates from the baseline
    by more than ``tolerance`` (relative) — in either direction, since
    on this substrate interference can both raise the victim's miss
    ratio and slow its issue rate (see DESIGN.md on the two-sided
    shutter).
    """

    name = "offline-profile"

    def __init__(
        self,
        baseline_misses: float,
        tolerance: float = DEFAULT_TOLERANCE,
        noise_floor: float = 0.0,
    ):
        if baseline_misses < 0:
            raise ConfigError(
                f"baseline_misses must be >= 0: {baseline_misses}"
            )
        if tolerance <= 0:
            raise ConfigError(f"tolerance must be > 0: {tolerance}")
        if noise_floor < 0:
            raise ConfigError(f"noise_floor must be >= 0: {noise_floor}")
        self.baseline_misses = baseline_misses
        self.trace_threshold = baseline_misses
        self.tolerance = tolerance
        self.noise_floor = noise_floor
        self.verdicts: list[bool] = []

    def step(self, obs: Observation) -> DetectorStep:
        """Verdict from the deviation of the windowed neighbour mean.

        Deviations below the absolute ``noise_floor`` never count: for
        a near-zero baseline every fluctuation is huge in relative
        terms but irrelevant in effect.
        """
        deviation = abs(obs.neighbor_mean - self.baseline_misses)
        if deviation <= self.noise_floor:
            contending = False
        elif self.baseline_misses == 0:
            contending = True
        else:
            contending = (
                deviation / self.baseline_misses > self.tolerance
            )
        self.verdicts.append(contending)
        return DetectorStep(pause_self=False, assertion=contending)

    def reset(self) -> None:
        """Stateless between periods; nothing to reset."""

    def __repr__(self) -> str:
        return (
            f"ProfileDetector(baseline={self.baseline_misses}, "
            f"tolerance={self.tolerance}, floor={self.noise_floor})"
        )
