"""The random baseline heuristic (§6.4).

To quantify detection *accuracy* the paper compares each heuristic
against a baseline that "reports contention with probability P and no
contention with probability 1 - P" (P = 0.5), paired with a
red-light/green-light response of length 1.  A real heuristic should
sacrifice *more* utilization than random for contention-sensitive
neighbours and *less* for insensitive ones; any inversion indicates
false negatives/positives (Figures 9 and 10).
"""

from __future__ import annotations

import random

from ..errors import ConfigError
from .detector import ContentionDetector, DetectorStep, Observation


class RandomDetector(ContentionDetector):
    """Asserts contention with fixed probability each period."""

    name = "random"

    def __init__(self, probability: float = 0.5, seed: int = 0):
        if not 0.0 <= probability <= 1.0:
            raise ConfigError(
                f"probability must be in [0, 1]: {probability}"
            )
        self.probability = probability
        self.trace_threshold = probability
        self._rng = random.Random(seed)
        self.verdicts: list[bool] = []

    def step(self, obs: Observation) -> DetectorStep:
        """Flip the coin; the observation is deliberately ignored."""
        contending = self._rng.random() < self.probability
        self.verdicts.append(contending)
        return DetectorStep(pause_self=False, assertion=contending)

    def reset(self) -> None:
        """Stateless between periods; nothing to reset."""

    def __repr__(self) -> str:
        return f"RandomDetector(p={self.probability})"
