"""A proactive detection heuristic driven by the analytic model.

Every heuristic in the paper is *reactive*: it waits for the misses to
spike and then throttles.  The :mod:`repro.analytic` layer already
knows how to predict where the spike will land — the victim's
stack-distance profile gives a miss-rate curve, and the shared-cache
fixed point predicts its per-period miss rate both alone and co-located
with a contender.  This detector wires that model into the runtime:

* :func:`predicted_miss_fence` places a fence **halfway between the
  predicted solo and predicted co-located miss rates** of the victim —
  an offline-model analogue of the profile oracle's baseline, obtained
  without a profiling *run*;
* online, the detector keeps a short window of the neighbour's
  windowed miss averages, fits a least-squares trend, and extrapolates
  ``horizon`` periods ahead;
* contention is asserted when the **projected** value crosses the
  fence — i.e. while the miss curve is still climbing toward the
  predicted contended level, before it arrives — so the response
  triggers ahead of the spike the reactive heuristics wait for.

The model evaluation (pattern profiling plus the occupancy/queue fixed
point) runs once at construction and is memoised per (victim,
contender, machine), so sweeps re-using the same coordinates pay it
once per process.
"""

from __future__ import annotations

from collections import deque

from ..config import MachineConfig
from ..errors import ConfigError
from .detector import ContentionDetector, DetectorStep, Observation

#: Memo of :func:`predicted_miss_fence` results keyed by
#: (victim, contender, machine) — the model is deterministic, so the
#: fence is a pure function of those coordinates.
_FENCE_MEMO: dict[tuple[str, str, MachineConfig], float] = {}


def predicted_miss_fence(
    victim: str,
    machine: MachineConfig,
    contender: str = "470.lbm",
) -> float:
    """Model-predicted misses/period fence for ``victim`` vs. ``contender``.

    Evaluates the analytic co-location model (MRC + shared-occupancy +
    memory-queue fixed point) for the victim's dominant phase alone and
    next to the contender, converts both cost/miss-rate pairs to
    misses per probe period, and returns their midpoint: above it the
    victim is observably closer to its predicted *contended* behaviour
    than to its predicted solo behaviour.
    """
    key = (victim, contender, machine)
    cached = _FENCE_MEMO.get(key)
    if cached is not None:
        return cached
    from ..analytic.predictor import (
        predict_colocation,
        predict_solo,
        profile_phase,
        _dominant_phase,
    )
    from ..workloads import benchmark

    lines = machine.l3.capacity_lines
    victim_spec = benchmark(victim, lines)
    contender_spec = benchmark(contender, lines)
    profile = profile_phase(_dominant_phase(victim_spec))
    solo_cost = predict_solo(victim_spec, machine)
    prediction = predict_colocation(victim_spec, contender_spec, machine)
    # misses/period = (accesses/period) * miss rate; accesses/period is
    # the period's cycle budget over the per-access cost.
    solo_rate = profile.mrc.miss_rate(lines)
    colo_rate = profile.mrc.miss_rate(
        prediction.victim_occupancy_fraction * lines
    )
    solo_misses = machine.period_cycles * solo_rate / solo_cost
    colo_misses = (
        machine.period_cycles * colo_rate / prediction.victim_colo_cost
    )
    fence = (solo_misses + colo_misses) / 2.0
    _FENCE_MEMO[key] = fence
    return fence


class AnalyticProactiveDetector(ContentionDetector):
    """Extrapolate the miss trend; assert before it crosses the fence."""

    name = "proactive-analytic"

    def __init__(
        self,
        fence: float,
        horizon: int = 4,
        window: int = 8,
        noise_floor: float = 0.0,
    ):
        if fence < 0:
            raise ConfigError(f"fence must be >= 0: {fence}")
        if horizon < 0:
            raise ConfigError(f"horizon must be >= 0: {horizon}")
        if window < 2:
            raise ConfigError(f"window must be >= 2: {window}")
        if noise_floor < 0:
            raise ConfigError(f"noise_floor must be >= 0: {noise_floor}")
        self.fence = fence
        self.horizon = horizon
        self.window = window
        self.noise_floor = noise_floor
        self.trace_threshold = fence
        self._recent: deque[float] = deque(maxlen=window)
        self.verdicts: list[bool] = []

    def project(self) -> float:
        """Least-squares trend of the window, ``horizon`` periods ahead."""
        points = list(self._recent)
        n = len(points)
        if n < 2:
            return points[-1] if points else 0.0
        # Closed-form simple linear regression over x = 0..n-1.
        x_mean = (n - 1) / 2.0
        y_mean = sum(points) / n
        denom = sum((i - x_mean) ** 2 for i in range(n))
        slope = (
            sum(
                (i - x_mean) * (y - y_mean)
                for i, y in enumerate(points)
            )
            / denom
        )
        return points[-1] + slope * self.horizon

    def step(self, obs: Observation) -> DetectorStep:
        """Verdict from the projected (not the observed) miss level."""
        self._recent.append(obs.neighbor_mean)
        if len(self._recent) < 2:
            return DetectorStep(pause_self=False)
        projected = self.project()
        contending = (
            projected > self.fence and projected > self.noise_floor
        )
        self.verdicts.append(contending)
        return DetectorStep(pause_self=False, assertion=contending)

    def reset(self) -> None:
        """Keep the trend window; the fence is static."""

    def __repr__(self) -> str:
        return (
            f"AnalyticProactiveDetector(fence={self.fence:.1f}, "
            f"horizon={self.horizon}, window={self.window})"
        )
