"""Decision-log analysis.

The prototype "logs the decisions it makes" (§6.1); this module turns a
run's decision log into the quantities an operator (or the paper's §6.4
accuracy discussion) wants: how much time the runtime spent in each
Figure 5 state, how often each verdict was asserted, how the batch side
was throttled, and — given a ground-truth interval of known contention —
false-positive/negative rates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from ..errors import ExperimentError
from ..obs import DetectionEvent
from ..sim.results import RunResult
from .detector import Observation
from .profile_detector import DEFAULT_TOLERANCE, ProfileDetector


@dataclass(frozen=True)
class DecisionSummary:
    """Aggregate view of one run's CAER decision log."""

    periods: int
    #: periods spent per Figure 5 state label
    state_counts: dict[str, int]
    #: c-positive / c-negative verdict counts
    positives: int
    negatives: int
    #: fraction of periods the batch side was paused
    pause_fraction: float
    #: mean DVFS speed over non-paused periods (1.0 without DVFS)
    mean_running_speed: float

    @property
    def verdicts(self) -> int:
        """Total verdicts issued."""
        return self.positives + self.negatives

    @property
    def positive_rate(self) -> float:
        """Fraction of verdicts asserting contention."""
        return self.positives / self.verdicts if self.verdicts else 0.0

    def render(self) -> str:
        """Short human-readable report."""
        lines = [
            f"decision log: {self.periods} periods, "
            f"{self.verdicts} verdicts "
            f"({self.positive_rate:.0%} c-positive)",
            f"batch paused {self.pause_fraction:.0%} of periods, "
            f"mean running speed {self.mean_running_speed:.2f}",
        ]
        states = ", ".join(
            f"{state}={count}"
            for state, count in sorted(self.state_counts.items())
        )
        lines.append(f"states: {states}")
        return "\n".join(lines)


def summarise_decisions(result: RunResult) -> DecisionSummary:
    """Aggregate a run's CAER decision log."""
    log = result.caer_log
    if not log:
        raise ExperimentError("run has no CAER decision log")
    states = Counter(record["state"] for record in log)
    positives = sum(1 for r in log if r.get("assertion") is True)
    negatives = sum(1 for r in log if r.get("assertion") is False)
    paused = sum(1 for r in log if r["pause"])
    running = [r for r in log if not r["pause"]]
    mean_speed = (
        sum(r.get("speed", 1.0) for r in running) / len(running)
        if running
        else 1.0
    )
    return DecisionSummary(
        periods=len(log),
        state_counts=dict(states),
        positives=positives,
        negatives=negatives,
        pause_fraction=paused / len(log),
        mean_running_speed=mean_speed,
    )


@dataclass(frozen=True)
class AccuracyReport:
    """Verdicts scored against a ground-truth contention interval."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when no positives were asserted."""
        asserted = self.true_positives + self.false_positives
        return self.true_positives / asserted if asserted else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there was nothing to detect."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def accuracy(self) -> float:
        """Correct verdicts over all verdicts."""
        total = (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )
        correct = self.true_positives + self.true_negatives
        return correct / total if total else 1.0


def score_verdicts(
    result: RunResult,
    contended_periods: set[int] | range,
) -> AccuracyReport:
    """Score every verdict against a known contention interval.

    ``contended_periods`` are the periods during which contention truly
    existed (e.g. the lifetime of a heavy contender in a controlled
    experiment).  Verdict-free periods are ignored — only actual
    assertions are scored, matching §6.4's definition of false
    positives/negatives.
    """
    log = result.caer_log
    if not log:
        raise ExperimentError("run has no CAER decision log")
    contended = set(contended_periods)
    tp = fp = tn = fn = 0
    for record in log:
        assertion = record.get("assertion")
        if assertion is None:
            continue
        truly = record["period"] in contended
        if assertion and truly:
            tp += 1
        elif assertion and not truly:
            fp += 1
        elif not assertion and not truly:
            tn += 1
        else:
            fn += 1
    return AccuracyReport(
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
    )


@dataclass(frozen=True)
class PeriodConfusion:
    """One scored period: the online verdict vs. the oracle's."""

    period: int
    verdict: bool
    oracle: bool

    @property
    def label(self) -> str:
        """The confusion-matrix cell: 'tp', 'fp', 'tn', or 'fn'."""
        if self.verdict and self.oracle:
            return "tp"
        if self.verdict and not self.oracle:
            return "fp"
        if not self.verdict and not self.oracle:
            return "tn"
        return "fn"


@dataclass(frozen=True)
class DetectionAccuracy:
    """Per-period confusion of a decision trace against the oracle."""

    report: AccuracyReport
    periods: list[PeriodConfusion]

    def counts(self) -> dict[str, int]:
        """Confusion cell counts keyed by 'tp'/'fp'/'tn'/'fn'."""
        return dict(Counter(p.label for p in self.periods))


def score_detection_events(
    events: Iterable[DetectionEvent | dict],
    baseline_misses: float,
    tolerance: float = DEFAULT_TOLERANCE,
    noise_floor: float = 0.0,
) -> DetectionAccuracy:
    """Score a ``DetectionEvent`` trace against the profile oracle.

    This is the trace-side counterpart of :func:`score_verdicts` and of
    Figures 9/10's accuracy metric (Eq. 2): the ground truth is the
    offline-profile detector — the related work's upper bound, which
    knows the victim's solo LLC-miss ``baseline_misses`` — replayed
    over the *same observations* the online heuristic saw, so every
    scored period compares two verdicts about identical evidence.

    ``events`` may be :class:`~repro.obs.DetectionEvent` instances (a
    ring-buffer sink's ``by_kind("detection")``) or the payload dicts
    of a JSONL trace (:func:`repro.obs.read_jsonl`); other event kinds
    are skipped, as are periods where the heuristic issued no verdict
    (matching §6.4: only actual assertions are scored).
    """
    oracle = ProfileDetector(
        baseline_misses, tolerance=tolerance, noise_floor=noise_floor
    )
    periods: list[PeriodConfusion] = []
    seen_detection = False
    for event in events:
        if isinstance(event, dict):
            if event.get("kind") != DetectionEvent.kind:
                continue
            data = event
        else:
            if event.kind != DetectionEvent.kind:
                continue
            data = event.to_dict()
        seen_detection = True
        verdict = data["verdict"]
        if verdict is None:
            continue
        truth = oracle.step(Observation(
            own_misses=data["own_misses"],
            neighbor_misses=data["neighbor_misses"],
            own_mean=data["own_mean"],
            neighbor_mean=data["neighbor_mean"],
            period=data["period"],
        )).assertion
        periods.append(PeriodConfusion(
            period=data["period"], verdict=verdict, oracle=bool(truth)
        ))
    if not seen_detection:
        raise ExperimentError(
            "trace contains no detection events — was the run traced "
            "with a CAER runtime attached?"
        )
    counts = Counter(p.label for p in periods)
    return DetectionAccuracy(
        report=AccuracyReport(
            true_positives=counts.get("tp", 0),
            false_positives=counts.get("fp", 0),
            true_negatives=counts.get("tn", 0),
            false_negatives=counts.get("fn", 0),
        ),
        periods=periods,
    )
