"""Decision-log analysis.

The prototype "logs the decisions it makes" (§6.1); this module turns a
run's decision log into the quantities an operator (or the paper's §6.4
accuracy discussion) wants: how much time the runtime spent in each
Figure 5 state, how often each verdict was asserted, how the batch side
was throttled, and — given a ground-truth interval of known contention —
false-positive/negative rates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..errors import ExperimentError
from ..sim.results import RunResult


@dataclass(frozen=True)
class DecisionSummary:
    """Aggregate view of one run's CAER decision log."""

    periods: int
    #: periods spent per Figure 5 state label
    state_counts: dict[str, int]
    #: c-positive / c-negative verdict counts
    positives: int
    negatives: int
    #: fraction of periods the batch side was paused
    pause_fraction: float
    #: mean DVFS speed over non-paused periods (1.0 without DVFS)
    mean_running_speed: float

    @property
    def verdicts(self) -> int:
        """Total verdicts issued."""
        return self.positives + self.negatives

    @property
    def positive_rate(self) -> float:
        """Fraction of verdicts asserting contention."""
        return self.positives / self.verdicts if self.verdicts else 0.0

    def render(self) -> str:
        """Short human-readable report."""
        lines = [
            f"decision log: {self.periods} periods, "
            f"{self.verdicts} verdicts "
            f"({self.positive_rate:.0%} c-positive)",
            f"batch paused {self.pause_fraction:.0%} of periods, "
            f"mean running speed {self.mean_running_speed:.2f}",
        ]
        states = ", ".join(
            f"{state}={count}"
            for state, count in sorted(self.state_counts.items())
        )
        lines.append(f"states: {states}")
        return "\n".join(lines)


def summarise_decisions(result: RunResult) -> DecisionSummary:
    """Aggregate a run's CAER decision log."""
    log = result.caer_log
    if not log:
        raise ExperimentError("run has no CAER decision log")
    states = Counter(record["state"] for record in log)
    positives = sum(1 for r in log if r.get("assertion") is True)
    negatives = sum(1 for r in log if r.get("assertion") is False)
    paused = sum(1 for r in log if r["pause"])
    running = [r for r in log if not r["pause"]]
    mean_speed = (
        sum(r.get("speed", 1.0) for r in running) / len(running)
        if running
        else 1.0
    )
    return DecisionSummary(
        periods=len(log),
        state_counts=dict(states),
        positives=positives,
        negatives=negatives,
        pause_fraction=paused / len(log),
        mean_running_speed=mean_speed,
    )


@dataclass(frozen=True)
class AccuracyReport:
    """Verdicts scored against a ground-truth contention interval."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when no positives were asserted."""
        asserted = self.true_positives + self.false_positives
        return self.true_positives / asserted if asserted else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there was nothing to detect."""
        actual = self.true_positives + self.false_negatives
        return self.true_positives / actual if actual else 1.0

    @property
    def accuracy(self) -> float:
        """Correct verdicts over all verdicts."""
        total = (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )
        correct = self.true_positives + self.true_negatives
        return correct / total if total else 1.0


def score_verdicts(
    result: RunResult,
    contended_periods: set[int] | range,
) -> AccuracyReport:
    """Score every verdict against a known contention interval.

    ``contended_periods`` are the periods during which contention truly
    existed (e.g. the lifetime of a heavy contender in a controlled
    experiment).  Verdict-free periods are ignored — only actual
    assertions are scored, matching §6.4's definition of false
    positives/negatives.
    """
    log = result.caer_log
    if not log:
        raise ExperimentError("run has no CAER decision log")
    contended = set(contended_periods)
    tp = fp = tn = fn = 0
    for record in log:
        assertion = record.get("assertion")
        if assertion is None:
            continue
        truly = record["period"] in contended
        if assertion and truly:
            tp += 1
        elif assertion and not truly:
            fp += 1
        elif not assertion and not truly:
            tn += 1
        else:
            fn += 1
    return AccuracyReport(
        true_positives=tp,
        false_positives=fp,
        true_negatives=tn,
        false_negatives=fn,
    )
