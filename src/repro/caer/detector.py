"""Contention-detector interface.

A detector is driven once per probe period with an :class:`Observation`
built from the communication table, and returns a :class:`DetectorStep`:
whether the batch side should pause *during the detection process
itself* (the Burst-Shutter heuristic halts the batch to measure a steady
baseline), and — on the periods where the heuristic reaches a verdict —
a contention assertion that the runtime feeds to the response policy
(Figure 5's detect → respond transition).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class Observation:
    """What one period's table state looks like to the batch-side engine.

    ``own_*`` aggregates the batch applications' LLC misses,
    ``neighbor_*`` the latency-sensitive applications'.  ``last`` values
    are this period's counts, ``mean`` values are windowed averages.
    """

    own_misses: float
    neighbor_misses: float
    own_mean: float
    neighbor_mean: float
    period: int


@dataclass(frozen=True)
class DetectorStep:
    """Detector output for one period.

    ``pause_self`` is the Algorithm 1 signal of the same name: "whether
    to pause execution for the next period" as part of the measurement
    itself.  ``assertion`` is ``True``/``False`` when the heuristic
    reached a contention verdict this period, ``None`` while it is still
    gathering evidence.
    """

    pause_self: bool
    assertion: bool | None = None


class ContentionDetector(ABC):
    """Base class of the paper's detection heuristics."""

    #: short identifier used in logs and reports
    name: str = "abstract"

    #: the heuristic's decision threshold, surfaced in trace events
    #: (``None`` when the heuristic has no single scalar threshold)
    trace_threshold: float | None = None

    @abstractmethod
    def step(self, obs: Observation) -> DetectorStep:
        """Advance one period; possibly produce a verdict."""

    @abstractmethod
    def reset(self) -> None:
        """Restart the detection cycle (called when a response ends)."""
