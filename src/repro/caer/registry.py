"""Open registries for contention detectors and response policies.

The paper ships exactly two detection heuristics and two responses;
growing the system used to mean editing ``CaerConfig``'s if/elif
chains in :mod:`repro.caer.runtime`.  This module replaces those
chains with two registries mirroring the execution-backend registry of
:mod:`repro.runspec.backends`:

* a **detector factory** takes ``(CaerConfig, MachineConfig)`` and
  returns a ready :class:`~repro.caer.detector.ContentionDetector`;
* a **response factory** takes the same pair and returns a
  :class:`~repro.caer.response.ResponsePolicy`.

``CaerConfig.detector``/``CaerConfig.response`` name entries here, so
a registered plugin is immediately reachable from run specs, the
campaign, the shootout driver, and the CLI — no runtime-core edits.
Free-form knobs travel on the config's open ``detector_params`` /
``response_params`` mappings (digest-visible like every other field);
factories read them through :meth:`CaerConfig.detector_param` /
:meth:`CaerConfig.response_param`.

Registration refuses silent overwrites (pass ``replace=True`` to
shadow a built-in) and lookups of unknown names raise
:class:`~repro.errors.ConfigError` listing the registered choices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..config import MachineConfig, default_usage_threshold
from ..errors import ConfigError
from .cdf_detector import CdfQuantileDetector
from .detector import ContentionDetector
from .gmm_detector import GmmFenceDetector
from .proactive import AnalyticProactiveDetector, predicted_miss_fence
from .profile_detector import ProfileDetector
from .random_detector import RandomDetector
from .response import (
    CachePartition,
    FrequencyScaling,
    RedLightGreenLight,
    ResponsePolicy,
    SoftLock,
)
from .rulebased import RuleBasedDetector
from .shutter import BurstShutterDetector

if TYPE_CHECKING:
    from .runtime import CaerConfig

#: A detector factory: ``(config, machine) -> detector``.
DetectorFactory = Callable[["CaerConfig", MachineConfig], ContentionDetector]

#: A response factory: ``(config, machine) -> response policy``.
ResponseFactory = Callable[["CaerConfig", MachineConfig], ResponsePolicy]

_DETECTORS: dict[str, DetectorFactory] = {}
_RESPONSES: dict[str, ResponseFactory] = {}


def _register(
    table: dict, kind: str, name: str, factory: Callable, replace: bool
) -> None:
    if not name:
        raise ConfigError(f"{kind} name must be non-empty")
    if name in table and not replace:
        raise ConfigError(
            f"{kind} {name!r} is already registered "
            f"(pass replace=True to override)"
        )
    table[name] = factory


def register_detector(
    name: str, factory: DetectorFactory, replace: bool = False
) -> None:
    """Register a detector factory under ``name``.

    ``factory(config, machine)`` must return a fresh
    :class:`ContentionDetector` every call (runtimes are per-run).
    """
    _register(_DETECTORS, "detector", name, factory, replace)


def register_response(
    name: str, factory: ResponseFactory, replace: bool = False
) -> None:
    """Register a response-policy factory under ``name``."""
    _register(_RESPONSES, "response", name, factory, replace)


def detector_names() -> tuple[str, ...]:
    """The registered detector names, sorted."""
    return tuple(sorted(_DETECTORS))


def response_names() -> tuple[str, ...]:
    """The registered response names, sorted."""
    return tuple(sorted(_RESPONSES))


def build_detector(
    config: "CaerConfig", machine: MachineConfig
) -> ContentionDetector:
    """Instantiate the detector ``config.detector`` names."""
    try:
        factory = _DETECTORS[config.detector]
    except KeyError:
        known = ", ".join(detector_names())
        raise ConfigError(
            f"unknown detector {config.detector!r} "
            f"(registered detectors: {known})"
        ) from None
    return factory(config, machine)


def build_response(
    config: "CaerConfig", machine: MachineConfig
) -> ResponsePolicy:
    """Instantiate the response policy ``config.response`` names."""
    try:
        factory = _RESPONSES[config.response]
    except KeyError:
        known = ", ".join(response_names())
        raise ConfigError(
            f"unknown response {config.response!r} "
            f"(registered responses: {known})"
        ) from None
    return factory(config, machine)


# -- built-in detectors ---------------------------------------------------


def _resolve_thresh(config: "CaerConfig", machine: MachineConfig) -> float:
    if config.usage_thresh is not None:
        return config.usage_thresh
    return default_usage_threshold(machine)


def _shutter_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ContentionDetector:
    noise = config.noise_thresh
    if noise is None:
        # Moves smaller than the "heavy usage" threshold are
        # indistinguishable from noise at this machine's scale.
        noise = default_usage_threshold(machine)
    from .shutter import DEFAULT_DISPERSION, DEFAULT_SPIKE_CAP

    return BurstShutterDetector(
        switch_point=config.switch_point,
        end_point=config.end_point,
        impact_factor=config.impact_factor,
        noise_thresh=noise,
        mode=config.shutter_mode,
        # Fault-hardening knobs ride on the open parameter mapping so
        # the paper's exact §6 setup (all defaults) stays bit-identical.
        fault_filter=bool(config.detector_param("fault_filter", False)),
        debounce=int(config.detector_param("debounce", 1)),
        spike_cap=float(
            config.detector_param("spike_cap", DEFAULT_SPIKE_CAP)
        ),
        dispersion=float(
            config.detector_param("dispersion", DEFAULT_DISPERSION)
        ),
    )


def _rule_based_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ContentionDetector:
    return RuleBasedDetector(_resolve_thresh(config, machine))


def _random_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ContentionDetector:
    return RandomDetector(config.probability, seed=config.seed)


def _profile_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ContentionDetector:
    if config.baseline_misses is None:
        raise ConfigError(
            "the profile detector needs baseline_misses from a "
            "solo profiling run"
        )
    return ProfileDetector(
        config.baseline_misses,
        tolerance=config.profile_tolerance,
        noise_floor=default_usage_threshold(machine),
    )


def _gmm_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ContentionDetector:
    return GmmFenceDetector(
        train_periods=int(config.detector_param("train_periods", 32)),
        fence_sigma=float(config.detector_param("fence_sigma", 2.0)),
        refit_every=int(config.detector_param("refit_every", 0)),
        # The learned fence is floored at the usage threshold: a fence
        # below the response's release point turns every post-release
        # probe into a false positive.
        noise_floor=_resolve_thresh(config, machine),
    )


def _cdf_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ContentionDetector:
    return CdfQuantileDetector(
        window=int(config.detector_param("window", 64)),
        quantile=float(config.detector_param("quantile", 0.85)),
        min_samples=int(config.detector_param("min_samples", 12)),
        noise_floor=default_usage_threshold(machine),
    )


def _proactive_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ContentionDetector:
    victim = config.detector_param("victim")
    if victim is not None:
        fence = predicted_miss_fence(
            str(victim),
            machine,
            contender=str(config.detector_param("contender", "470.lbm")),
        )
    else:
        fence = float(
            config.detector_param(
                "fence", default_usage_threshold(machine)
            )
        )
    return AnalyticProactiveDetector(
        fence,
        horizon=int(config.detector_param("horizon", 4)),
        window=int(config.detector_param("window", 8)),
        noise_floor=default_usage_threshold(machine),
    )


# -- built-in responses ---------------------------------------------------


def _rlgl_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ResponsePolicy:
    return RedLightGreenLight(
        length=config.response_length,
        adaptive=config.adaptive,
        max_length=config.max_response_length,
    )


def _soft_lock_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ResponsePolicy:
    return SoftLock(
        _resolve_thresh(config, machine),
        max_hold=config.soft_lock_max_hold,
    )


def _dvfs_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ResponsePolicy:
    return FrequencyScaling(
        scale=config.dvfs_scale, length=config.response_length
    )


def _partition_factory(
    config: "CaerConfig", machine: MachineConfig
) -> ResponsePolicy:
    return CachePartition(
        quota=config.partition_quota,
        length=config.response_length,
    )


register_detector("shutter", _shutter_factory)
register_detector("rule-based", _rule_based_factory)
register_detector("random", _random_factory)
register_detector("profile", _profile_factory)
register_detector("gmm-fence", _gmm_factory)
register_detector("cdf-quantile", _cdf_factory)
register_detector("proactive-analytic", _proactive_factory)

register_response("rlgl", _rlgl_factory)
register_response("soft-lock", _soft_lock_factory)
register_response("dvfs", _dvfs_factory)
register_response("partition", _partition_factory)
