"""The CAER runtime: monitors, the main engine, and its period loop.

This module ties the pieces of Figure 4 together.  In the paper, a thin
CAER-M layer under each latency-sensitive application publishes PMU
samples into the shared communication table, while the main CAER engine
under the batch applications reads the table, runs the detection
heuristic, and writes reaction directives that *all* batch layers obey.

Here the whole runtime is one period hook attached to the simulation
engine (the engine's period boundary is the paper's 1 ms timer
interrupt).  Each period it:

1. publishes every application's PMU sample into the table (the CAER-M
   role);
2. builds an :class:`~repro.caer.detector.Observation` aggregating the
   batch side and the latency-sensitive side;
3. advances the detect/respond state machine of Figure 5;
4. applies the resulting pause/run directive to every batch process and
   appends a record to the run's decision log.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from ..arch.pmu import PMUSample
from ..config import MachineConfig
from ..errors import ConfigError
from ..obs import (
    NULL_TRACER,
    DetectionEvent,
    MetricsRegistry,
    PhaseEvent,
    ResponseEvent,
    Tracer,
)
from ..sim.engine import SimulationEngine
from ..sim.process import AppClass
from . import registry
from .detector import ContentionDetector, Observation
from .response import ResponsePolicy
from .table import DEFAULT_WINDOW_SIZE, CommunicationTable

#: JSON-scalar types allowed as plugin-parameter values: anything else
#: would break the config's hashability or its canonical JSON form.
_PARAM_SCALARS = (str, int, float, bool, type(None))


def _freeze_params(field_name: str, value: object) -> tuple:
    """Normalise a plugin-parameter mapping to a sorted tuple of pairs.

    Accepts a dict (the natural way to write one) or any iterable of
    ``(key, value)`` pairs (the frozen form), validating that keys are
    strings and values JSON scalars so the config stays hashable and
    its canonical form digestible.
    """
    if isinstance(value, dict):
        items = list(value.items())
    else:
        try:
            items = [(k, v) for k, v in value]  # type: ignore[misc]
        except (TypeError, ValueError):
            raise ConfigError(
                f"{field_name} must be a mapping or iterable of "
                f"(key, value) pairs, got {value!r}"
            ) from None
    for key, val in items:
        if not isinstance(key, str) or not key:
            raise ConfigError(
                f"{field_name} keys must be non-empty strings, "
                f"got {key!r}"
            )
        if not isinstance(val, _PARAM_SCALARS):
            raise ConfigError(
                f"{field_name}[{key!r}] must be a JSON scalar "
                f"(str/int/float/bool/None), got {type(val).__name__}"
            )
    return tuple(sorted(items))


@dataclass(frozen=True)
class CaerConfig:
    """Declarative CAER configuration.

    Use the classmethods for the paper's three evaluated setups; the
    individual knobs are exposed for the tuning-space ablations.  A
    ``usage_thresh`` of ``None`` resolves to the paper's 1500
    misses/ms converted to the target machine's period length.

    ``detector``/``response`` name entries in the
    :mod:`repro.caer.registry` plugin registries; the paper's knobs
    stay first-class fields, while registered plugins read their
    free-form knobs from the open ``detector_params`` /
    ``response_params`` mappings (stored canonically as sorted
    key/value pairs so the config stays hashable; both participate in
    the run-spec digest like every other field).
    """

    detector: str = "rule-based"
    response: str = "soft-lock"
    window_size: int = DEFAULT_WINDOW_SIZE
    # burst-shutter knobs (Algorithm 1)
    switch_point: int = 5
    end_point: int = 10
    impact_factor: float = 0.05
    noise_thresh: float | None = None
    shutter_mode: str = "two-sided"
    # rule-based / soft-lock knobs (Algorithm 2, §5)
    usage_thresh: float | None = None
    soft_lock_max_hold: int = 25
    # red-light/green-light knobs (§5)
    response_length: int = 10
    adaptive: bool = False
    max_response_length: int = 80
    # frequency-scaling knobs (§7's DVFS alternative)
    dvfs_scale: float = 0.25
    # cache-partition knobs (§7's hardware-QoS alternative)
    partition_quota: float = 0.25
    # random baseline knobs (§6.4)
    probability: float = 0.5
    seed: int = 0
    # offline-profile oracle knobs (related-work comparator)
    baseline_misses: float | None = None
    profile_tolerance: float = 0.25
    # open plugin-parameter mappings (registry detectors/responses)
    detector_params: tuple = ()
    response_params: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "detector_params",
            _freeze_params("detector_params", self.detector_params),
        )
        object.__setattr__(
            self,
            "response_params",
            _freeze_params("response_params", self.response_params),
        )

    @classmethod
    def shutter(cls, **overrides: object) -> "CaerConfig":
        """The paper's Burst-Shutter setup: RLGL response, length 10."""
        defaults = dict(
            detector="shutter", response="rlgl", response_length=10
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def rule_based(cls, **overrides: object) -> "CaerConfig":
        """The paper's Rule-Based setup: soft-lock response."""
        defaults = dict(detector="rule-based", response="soft-lock")
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def dvfs(cls, **overrides: object) -> "CaerConfig":
        """§7's alternative response: shutter detection + core DVFS."""
        defaults = dict(
            detector="shutter", response="dvfs", response_length=10
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def profile_oracle(
        cls, baseline_misses: float, **overrides: object
    ) -> "CaerConfig":
        """The offline-profile comparator: oracle detection + soft lock."""
        defaults = dict(
            detector="profile",
            response="soft-lock",
            baseline_misses=baseline_misses,
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def partition(cls, **overrides: object) -> "CaerConfig":
        """§7's hardware alternative: shutter detection + L3 quota."""
        defaults = dict(
            detector="shutter", response="partition",
            response_length=10,
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def random_baseline(cls, **overrides: object) -> "CaerConfig":
        """The §6.4 accuracy baseline: P=0.5, RLGL length 1."""
        defaults = dict(
            detector="random", response="rlgl", response_length=1
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-serialisable form (all knobs, even defaults).

        Every field rides along so a run spec's content digest covers
        the whole policy by construction — adding a knob to this config
        automatically widens every cache key that embeds it.  The
        plugin-parameter mappings serialise as JSON objects (their
        in-memory form is the hashable sorted-pair tuple).
        """
        data = dataclasses.asdict(self)
        data["detector_params"] = dict(self.detector_params)
        data["response_params"] = dict(self.response_params)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CaerConfig":
        """Rebuild a config from :meth:`to_dict` output (validating).

        Accepts spec-version-2 payloads, which predate the plugin
        registries: their ``caer`` objects simply lack the
        ``detector_params``/``response_params`` keys and deserialise
        with empty mappings.
        """
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(
                f"bad CAER config payload: {exc}"
            ) from None

    # -- component construction ------------------------------------------

    def build_detector(self, machine: MachineConfig) -> ContentionDetector:
        """Instantiate the configured detection heuristic.

        Resolution goes through :func:`repro.caer.registry.build_detector`,
        so any registered plugin is constructible here; unknown names
        raise :class:`ConfigError` listing the registered choices.
        """
        return registry.build_detector(self, machine)

    def build_response(self, machine: MachineConfig) -> ResponsePolicy:
        """Instantiate the configured response policy (via the registry)."""
        return registry.build_response(self, machine)

    def detector_param(self, key: str, default: object = None) -> object:
        """Fetch one free-form detector knob (factories' accessor)."""
        return dict(self.detector_params).get(key, default)

    def response_param(self, key: str, default: object = None) -> object:
        """Fetch one free-form response knob (factories' accessor)."""
        return dict(self.response_params).get(key, default)

    @property
    def label(self) -> str:
        """Short human-readable identifier for reports."""
        return f"caer({self.detector}+{self.response})"


class CaerRuntime:
    """The period hook implementing the CAER control loop.

    ``tracer``/``metrics`` default to the engine's, so wiring a tracer
    into the simulation engine is enough to capture the full decision
    trace; pass explicit instances to route CAER telemetry separately.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        config: CaerConfig,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        machine = engine.chip.machine
        self.config = config
        #: registry name the detector was resolved under — emitted in
        #: trace events so timeline/stats tooling keys on the config's
        #: vocabulary even for plugins whose class name differs.
        self.detector_name = config.detector
        self.tracer = (
            tracer if tracer is not None
            else getattr(engine, "tracer", NULL_TRACER)
        )
        self.metrics = (
            metrics if metrics is not None
            else getattr(engine, "metrics", None)
        )
        self.detector = config.build_detector(machine)
        self.response = config.build_response(machine)
        self.table = CommunicationTable(window_size=config.window_size)
        self.ls_names: list[str] = []
        self.batch_names: list[str] = []
        for name, proc in engine.processes.items():
            self.table.register(name, proc.app_class)
            if proc.app_class is AppClass.LATENCY_SENSITIVE:
                self.ls_names.append(name)
            else:
                self.batch_names.append(name)
        if not self.batch_names:
            raise ConfigError("CAER needs at least one batch application")
        if not self.ls_names:
            raise ConfigError(
                "CAER needs at least one latency-sensitive application"
            )
        self._state = "detect"
        #: the assertion the active response is acting on (trace only)
        self._response_verdict: bool | None = None

    def __call__(
        self,
        engine: SimulationEngine,
        period: int,
        samples: dict[str, PMUSample],
    ) -> None:
        """One timer tick: publish, observe, decide, direct."""
        for name, sample in samples.items():
            self.table.publish(name, sample)
        obs = Observation(
            own_misses=self.table.batch_misses(),
            neighbor_misses=self.table.latency_sensitive_misses(),
            own_mean=self.table.batch_mean(),
            neighbor_mean=self.table.latency_sensitive_mean(),
            period=period,
        )
        assertion: bool | None = None
        speed = 1.0
        quota: float | None = None
        state_before = self._state
        rstep = None
        response_verdict: bool | None = None
        pause_self = False
        if self._state == "respond":
            rstep = self.response.step(obs)
            response_verdict = self._response_verdict
            pause = rstep.pause_batch
            speed = rstep.speed
            quota = rstep.l3_quota
            reason = "respond"
            if rstep.done:
                self._state = "detect"
                self.detector.reset()
        else:
            dstep = self.detector.step(obs)
            pause = dstep.pause_self
            pause_self = dstep.pause_self
            reason = "detect"
            assertion = dstep.assertion
            if assertion is not None:
                # Enter the response state immediately so its first
                # directive governs the very next period.
                self.response.begin(assertion)
                rstep = self.response.step(obs)
                response_verdict = assertion
                self._response_verdict = assertion
                pause = rstep.pause_batch
                speed = rstep.speed
                quota = rstep.l3_quota
                reason = "c-positive" if assertion else "c-negative"
                self._state = "detect" if rstep.done else "respond"
        if self.metrics is not None:
            self.metrics.counter("caer.periods").inc()
            if assertion is True:
                self.metrics.counter("caer.verdicts_positive").inc()
            elif assertion is False:
                self.metrics.counter("caer.verdicts_negative").inc()
            if pause:
                self.metrics.counter("caer.batch_paused_periods").inc()
        if self.tracer.enabled:
            self.tracer.emit(DetectionEvent(
                period=period,
                detector=self.detector_name,
                state=reason,
                own_misses=obs.own_misses,
                neighbor_misses=obs.neighbor_misses,
                own_mean=obs.own_mean,
                neighbor_mean=obs.neighbor_mean,
                threshold=self.detector.trace_threshold,
                pause_self=pause_self,
                verdict=assertion,
            ))
            if rstep is not None:
                self.tracer.emit(ResponseEvent(
                    period=period,
                    response=self.response.name,
                    verdict=bool(response_verdict),
                    pause_batch=rstep.pause_batch,
                    speed=rstep.speed,
                    l3_quota=rstep.l3_quota,
                    done=rstep.done,
                ))
            if self._state != state_before:
                self.tracer.emit(PhaseEvent(
                    period=period, scope="caer",
                    subject=self.detector_name, phase=self._state,
                ))
        self.table.directives.pause_batch = pause
        self.table.directives.batch_speed = speed
        self.table.directives.reason = reason
        for name in self.batch_names:
            engine.set_paused(name, pause)
            engine.set_speed(name, speed)
            engine.set_l3_quota(name, quota)
        engine.log_decision(
            {
                "period": period,
                "state": reason,
                "pause": pause,
                "speed": speed,
                "l3_quota": quota,
                "assertion": assertion,
                "own_misses": obs.own_misses,
                "neighbor_misses": obs.neighbor_misses,
                "own_mean": obs.own_mean,
                "neighbor_mean": obs.neighbor_mean,
            }
        )


def caer_factory(
    config: CaerConfig,
) -> Callable[[SimulationEngine], CaerRuntime]:
    """Adapter for :func:`repro.sim.scenario.run_colocated`.

    Returns a factory that, given the engine, attaches a fully-wired
    :class:`CaerRuntime` as its period hook.
    """
    return lambda engine: CaerRuntime(engine, config)
