"""The CAER runtime: monitors, the main engine, and its period loop.

This module ties the pieces of Figure 4 together.  In the paper, a thin
CAER-M layer under each latency-sensitive application publishes PMU
samples into the shared communication table, while the main CAER engine
under the batch applications reads the table, runs the detection
heuristic, and writes reaction directives that *all* batch layers obey.

Here the whole runtime is one period hook attached to the simulation
engine (the engine's period boundary is the paper's 1 ms timer
interrupt).  Each period it:

1. publishes every application's PMU sample into the table (the CAER-M
   role);
2. builds an :class:`~repro.caer.detector.Observation` aggregating the
   batch side and the latency-sensitive side;
3. advances the detect/respond state machine of Figure 5;
4. applies the resulting pause/run directive to every batch process and
   appends a record to the run's decision log.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from ..arch.pmu import PMUSample
from ..config import MachineConfig, default_usage_threshold
from ..errors import ConfigError
from ..obs import (
    NULL_TRACER,
    DetectionEvent,
    MetricsRegistry,
    PhaseEvent,
    ResponseEvent,
    Tracer,
)
from ..sim.engine import SimulationEngine
from ..sim.process import AppClass
from .detector import ContentionDetector, Observation
from .profile_detector import ProfileDetector
from .random_detector import RandomDetector
from .response import (
    CachePartition,
    FrequencyScaling,
    RedLightGreenLight,
    ResponsePolicy,
    SoftLock,
)
from .rulebased import RuleBasedDetector
from .shutter import BurstShutterDetector
from .table import DEFAULT_WINDOW_SIZE, CommunicationTable


@dataclass(frozen=True)
class CaerConfig:
    """Declarative CAER configuration.

    Use the classmethods for the paper's three evaluated setups; the
    individual knobs are exposed for the tuning-space ablations.  A
    ``usage_thresh`` of ``None`` resolves to the paper's 1500
    misses/ms converted to the target machine's period length.
    """

    detector: str = "rule-based"
    response: str = "soft-lock"
    window_size: int = DEFAULT_WINDOW_SIZE
    # burst-shutter knobs (Algorithm 1)
    switch_point: int = 5
    end_point: int = 10
    impact_factor: float = 0.05
    noise_thresh: float | None = None
    shutter_mode: str = "two-sided"
    # rule-based / soft-lock knobs (Algorithm 2, §5)
    usage_thresh: float | None = None
    soft_lock_max_hold: int = 25
    # red-light/green-light knobs (§5)
    response_length: int = 10
    adaptive: bool = False
    max_response_length: int = 80
    # frequency-scaling knobs (§7's DVFS alternative)
    dvfs_scale: float = 0.25
    # cache-partition knobs (§7's hardware-QoS alternative)
    partition_quota: float = 0.25
    # random baseline knobs (§6.4)
    probability: float = 0.5
    seed: int = 0
    # offline-profile oracle knobs (related-work comparator)
    baseline_misses: float | None = None
    profile_tolerance: float = 0.25

    @classmethod
    def shutter(cls, **overrides: object) -> "CaerConfig":
        """The paper's Burst-Shutter setup: RLGL response, length 10."""
        defaults = dict(
            detector="shutter", response="rlgl", response_length=10
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def rule_based(cls, **overrides: object) -> "CaerConfig":
        """The paper's Rule-Based setup: soft-lock response."""
        defaults = dict(detector="rule-based", response="soft-lock")
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def dvfs(cls, **overrides: object) -> "CaerConfig":
        """§7's alternative response: shutter detection + core DVFS."""
        defaults = dict(
            detector="shutter", response="dvfs", response_length=10
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def profile_oracle(
        cls, baseline_misses: float, **overrides: object
    ) -> "CaerConfig":
        """The offline-profile comparator: oracle detection + soft lock."""
        defaults = dict(
            detector="profile",
            response="soft-lock",
            baseline_misses=baseline_misses,
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def partition(cls, **overrides: object) -> "CaerConfig":
        """§7's hardware alternative: shutter detection + L3 quota."""
        defaults = dict(
            detector="shutter", response="partition",
            response_length=10,
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    @classmethod
    def random_baseline(cls, **overrides: object) -> "CaerConfig":
        """The §6.4 accuracy baseline: P=0.5, RLGL length 1."""
        defaults = dict(
            detector="random", response="rlgl", response_length=1
        )
        defaults.update(overrides)
        return cls(**defaults)  # type: ignore[arg-type]

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """Canonical JSON-serialisable form (all knobs, even defaults).

        Every field rides along so a run spec's content digest covers
        the whole policy by construction — adding a knob to this config
        automatically widens every cache key that embeds it.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CaerConfig":
        """Rebuild a config from :meth:`to_dict` output (validating)."""
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigError(
                f"bad CAER config payload: {exc}"
            ) from None

    # -- component construction ------------------------------------------

    def build_detector(self, machine: MachineConfig) -> ContentionDetector:
        """Instantiate the configured detection heuristic."""
        if self.detector == "shutter":
            noise = self.noise_thresh
            if noise is None:
                # Moves smaller than the "heavy usage" threshold are
                # indistinguishable from noise at this machine's scale.
                noise = default_usage_threshold(machine)
            return BurstShutterDetector(
                switch_point=self.switch_point,
                end_point=self.end_point,
                impact_factor=self.impact_factor,
                noise_thresh=noise,
                mode=self.shutter_mode,
            )
        if self.detector == "rule-based":
            return RuleBasedDetector(self._resolve_thresh(machine))
        if self.detector == "random":
            return RandomDetector(self.probability, seed=self.seed)
        if self.detector == "profile":
            if self.baseline_misses is None:
                raise ConfigError(
                    "the profile detector needs baseline_misses from a "
                    "solo profiling run"
                )
            return ProfileDetector(
                self.baseline_misses,
                tolerance=self.profile_tolerance,
                noise_floor=default_usage_threshold(machine),
            )
        raise ConfigError(f"unknown detector {self.detector!r}")

    def build_response(self, machine: MachineConfig) -> ResponsePolicy:
        """Instantiate the configured response policy."""
        if self.response == "rlgl":
            return RedLightGreenLight(
                length=self.response_length,
                adaptive=self.adaptive,
                max_length=self.max_response_length,
            )
        if self.response == "soft-lock":
            return SoftLock(
                self._resolve_thresh(machine),
                max_hold=self.soft_lock_max_hold,
            )
        if self.response == "dvfs":
            return FrequencyScaling(
                scale=self.dvfs_scale, length=self.response_length
            )
        if self.response == "partition":
            return CachePartition(
                quota=self.partition_quota,
                length=self.response_length,
            )
        raise ConfigError(f"unknown response {self.response!r}")

    def _resolve_thresh(self, machine: MachineConfig) -> float:
        if self.usage_thresh is not None:
            return self.usage_thresh
        return default_usage_threshold(machine)

    @property
    def label(self) -> str:
        """Short human-readable identifier for reports."""
        return f"caer({self.detector}+{self.response})"


class CaerRuntime:
    """The period hook implementing the CAER control loop.

    ``tracer``/``metrics`` default to the engine's, so wiring a tracer
    into the simulation engine is enough to capture the full decision
    trace; pass explicit instances to route CAER telemetry separately.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        config: CaerConfig,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        machine = engine.chip.machine
        self.config = config
        self.tracer = (
            tracer if tracer is not None
            else getattr(engine, "tracer", NULL_TRACER)
        )
        self.metrics = (
            metrics if metrics is not None
            else getattr(engine, "metrics", None)
        )
        self.detector = config.build_detector(machine)
        self.response = config.build_response(machine)
        self.table = CommunicationTable(window_size=config.window_size)
        self.ls_names: list[str] = []
        self.batch_names: list[str] = []
        for name, proc in engine.processes.items():
            self.table.register(name, proc.app_class)
            if proc.app_class is AppClass.LATENCY_SENSITIVE:
                self.ls_names.append(name)
            else:
                self.batch_names.append(name)
        if not self.batch_names:
            raise ConfigError("CAER needs at least one batch application")
        if not self.ls_names:
            raise ConfigError(
                "CAER needs at least one latency-sensitive application"
            )
        self._state = "detect"
        #: the assertion the active response is acting on (trace only)
        self._response_verdict: bool | None = None

    def __call__(
        self,
        engine: SimulationEngine,
        period: int,
        samples: dict[str, PMUSample],
    ) -> None:
        """One timer tick: publish, observe, decide, direct."""
        for name, sample in samples.items():
            self.table.publish(name, sample)
        obs = Observation(
            own_misses=self.table.batch_misses(),
            neighbor_misses=self.table.latency_sensitive_misses(),
            own_mean=self.table.batch_mean(),
            neighbor_mean=self.table.latency_sensitive_mean(),
            period=period,
        )
        assertion: bool | None = None
        speed = 1.0
        quota: float | None = None
        state_before = self._state
        rstep = None
        response_verdict: bool | None = None
        pause_self = False
        if self._state == "respond":
            rstep = self.response.step(obs)
            response_verdict = self._response_verdict
            pause = rstep.pause_batch
            speed = rstep.speed
            quota = rstep.l3_quota
            reason = "respond"
            if rstep.done:
                self._state = "detect"
                self.detector.reset()
        else:
            dstep = self.detector.step(obs)
            pause = dstep.pause_self
            pause_self = dstep.pause_self
            reason = "detect"
            assertion = dstep.assertion
            if assertion is not None:
                # Enter the response state immediately so its first
                # directive governs the very next period.
                self.response.begin(assertion)
                rstep = self.response.step(obs)
                response_verdict = assertion
                self._response_verdict = assertion
                pause = rstep.pause_batch
                speed = rstep.speed
                quota = rstep.l3_quota
                reason = "c-positive" if assertion else "c-negative"
                self._state = "detect" if rstep.done else "respond"
        if self.metrics is not None:
            self.metrics.counter("caer.periods").inc()
            if assertion is True:
                self.metrics.counter("caer.verdicts_positive").inc()
            elif assertion is False:
                self.metrics.counter("caer.verdicts_negative").inc()
            if pause:
                self.metrics.counter("caer.batch_paused_periods").inc()
        if self.tracer.enabled:
            self.tracer.emit(DetectionEvent(
                period=period,
                detector=self.detector.name,
                state=reason,
                own_misses=obs.own_misses,
                neighbor_misses=obs.neighbor_misses,
                own_mean=obs.own_mean,
                neighbor_mean=obs.neighbor_mean,
                threshold=self.detector.trace_threshold,
                pause_self=pause_self,
                verdict=assertion,
            ))
            if rstep is not None:
                self.tracer.emit(ResponseEvent(
                    period=period,
                    response=self.response.name,
                    verdict=bool(response_verdict),
                    pause_batch=rstep.pause_batch,
                    speed=rstep.speed,
                    l3_quota=rstep.l3_quota,
                    done=rstep.done,
                ))
            if self._state != state_before:
                self.tracer.emit(PhaseEvent(
                    period=period, scope="caer",
                    subject=self.detector.name, phase=self._state,
                ))
        self.table.directives.pause_batch = pause
        self.table.directives.batch_speed = speed
        self.table.directives.reason = reason
        for name in self.batch_names:
            engine.set_paused(name, pause)
            engine.set_speed(name, speed)
            engine.set_l3_quota(name, quota)
        engine.log_decision(
            {
                "period": period,
                "state": reason,
                "pause": pause,
                "speed": speed,
                "l3_quota": quota,
                "assertion": assertion,
                "own_misses": obs.own_misses,
                "neighbor_misses": obs.neighbor_misses,
                "own_mean": obs.own_mean,
                "neighbor_mean": obs.neighbor_mean,
            }
        )


def caer_factory(
    config: CaerConfig,
) -> Callable[[SimulationEngine], CaerRuntime]:
    """Adapter for :func:`repro.sim.scenario.run_colocated`.

    Returns a factory that, given the engine, attaches a fully-wired
    :class:`CaerRuntime` as its period hook.
    """
    return lambda engine: CaerRuntime(engine, config)
