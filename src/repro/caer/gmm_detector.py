"""A GMM-fence detection heuristic (learned, statistical).

The eris node agent (Intel's platform-resource-manager) detects
contention without hand-tuned thresholds: it fits a Gaussian mixture
to the observed metric distribution and *fences* the benign cluster —
observations beyond ``mean + k·sigma`` of the quiet component are
anomalies attributable to a noisy neighbour.  This detector is that
shape on CAER's substrate, fitted online:

* the first ``train_periods`` probe periods only gather the
  latency-sensitive side's windowed LLC-miss averages (no verdicts —
  ``assertion=None``, like Burst-Shutter mid-cycle);
* a two-component 1-D Gaussian mixture is then fitted to the sample
  with a deterministic EM loop (extreme-point initialisation, fixed
  iteration budget — no RNG, so runs stay bit-reproducible);
* the **fence** is ``mu_low + fence_sigma · sigma_low`` of the
  lower-mean ("uncontended") component, floored at ``noise_floor``;
* every later period verdicts immediately: contention is asserted
  exactly when the neighbour's windowed mean crosses the fence.

Unlike the rule-based heuristic the threshold is *learned from the
victim's own behaviour* — a victim whose quiet miss rate sits far from
the paper's 1500/ms constant still gets a fence in the right place.
``refit_every`` optionally re-fits on a sliding window so the fence
tracks phase changes.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from .detector import ContentionDetector, DetectorStep, Observation

#: EM iterations per fit; deterministic and cheap at window sizes here.
EM_ITERATIONS = 25

#: Sigma floor so a degenerate (constant) sample still yields a fence.
MIN_SIGMA = 1e-6


def fit_two_gaussians(
    samples: list[float],
) -> tuple[tuple[float, float], tuple[float, float]]:
    """Fit a two-component 1-D GMM; returns ((mu, sigma), (mu, sigma)).

    Deterministic EM: means initialise at the sample extremes, weights
    at 0.5, and the loop runs a fixed iteration budget.  Components are
    returned sorted by mean (quiet cluster first).
    """
    if not samples:
        raise ConfigError("cannot fit a mixture to an empty sample")
    lo, hi = min(samples), max(samples)
    spread = (hi - lo) or 1.0
    mu = [lo, hi]
    sigma = [max(spread / 4.0, MIN_SIGMA)] * 2
    weight = [0.5, 0.5]
    for _ in range(EM_ITERATIONS):
        # E-step: responsibilities of each component for each sample.
        resp0: list[float] = []
        for x in samples:
            dens = [
                weight[k]
                * math.exp(
                    -0.5 * ((x - mu[k]) / sigma[k]) ** 2
                )
                / sigma[k]
                for k in (0, 1)
            ]
            total = dens[0] + dens[1]
            resp0.append(dens[0] / total if total > 0 else 0.5)
        # M-step: re-estimate weights, means, sigmas.
        n0 = sum(resp0)
        n1 = len(samples) - n0
        if n0 < 1e-9 or n1 < 1e-9:
            break
        weight = [n0 / len(samples), n1 / len(samples)]
        mu[0] = sum(r * x for r, x in zip(resp0, samples)) / n0
        mu[1] = sum((1 - r) * x for r, x in zip(resp0, samples)) / n1
        var0 = sum(
            r * (x - mu[0]) ** 2 for r, x in zip(resp0, samples)
        ) / n0
        var1 = sum(
            (1 - r) * (x - mu[1]) ** 2 for r, x in zip(resp0, samples)
        ) / n1
        sigma = [
            max(math.sqrt(var0), MIN_SIGMA),
            max(math.sqrt(var1), MIN_SIGMA),
        ]
    components = sorted(zip(mu, sigma), key=lambda c: c[0])
    return components[0], components[1]


class GmmFenceDetector(ContentionDetector):
    """Fence the quiet mixture component; beyond it is contention."""

    name = "gmm-fence"

    def __init__(
        self,
        train_periods: int = 32,
        fence_sigma: float = 2.0,
        refit_every: int = 0,
        noise_floor: float = 0.0,
    ):
        if train_periods < 4:
            raise ConfigError(
                f"train_periods must be >= 4: {train_periods}"
            )
        if fence_sigma <= 0:
            raise ConfigError(f"fence_sigma must be > 0: {fence_sigma}")
        if refit_every < 0:
            raise ConfigError(f"refit_every must be >= 0: {refit_every}")
        if noise_floor < 0:
            raise ConfigError(f"noise_floor must be >= 0: {noise_floor}")
        self.train_periods = train_periods
        self.fence_sigma = fence_sigma
        self.refit_every = refit_every
        self.noise_floor = noise_floor
        self._samples: list[float] = []
        self._since_fit = 0
        self._fence: float | None = None
        self.verdicts: list[bool] = []

    @property
    def fence(self) -> float | None:
        """The fitted fence (None while still training)."""
        return self._fence

    def _fit(self) -> None:
        quiet, _loud = fit_two_gaussians(self._samples)
        mu, sigma = quiet
        self._fence = max(
            mu + self.fence_sigma * sigma, self.noise_floor
        )
        self.trace_threshold = self._fence
        self._since_fit = 0

    def step(self, obs: Observation) -> DetectorStep:
        """Train on the window, then fence every later observation."""
        self._samples.append(obs.neighbor_mean)
        if self.refit_every:
            # Sliding window keeps the fit bounded and phase-aware.
            del self._samples[: -max(self.train_periods, 4)]
        if self._fence is None:
            if len(self._samples) < self.train_periods:
                return DetectorStep(pause_self=False)
            self._fit()
        elif self.refit_every:
            self._since_fit += 1
            if self._since_fit >= self.refit_every:
                self._fit()
        contending = obs.neighbor_mean > self._fence
        self.verdicts.append(contending)
        return DetectorStep(pause_self=False, assertion=contending)

    def reset(self) -> None:
        """Keep the fitted fence; a response ending is not a phase change."""

    def __repr__(self) -> str:
        return (
            f"GmmFenceDetector(train={self.train_periods}, "
            f"sigma={self.fence_sigma}, fence={self._fence})"
        )
