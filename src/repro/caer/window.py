"""Fixed-capacity sample windows.

The communication table "records a window of sample points, which allows
us to observe trends of many samples" (§3.2).  :class:`SampleWindow` is
that structure: a ring buffer of per-period values with O(1) push and
O(1) running mean.
"""

from __future__ import annotations

from ..errors import ConfigError


class SampleWindow:
    """Ring buffer of the most recent ``capacity`` samples."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ConfigError(f"window capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._buffer: list[float] = [0.0] * capacity
        self._count = 0
        self._next = 0
        self._sum = 0.0

    def push(self, value: float) -> None:
        """Append a sample, evicting the oldest once full."""
        if self._count == self.capacity:
            self._sum -= self._buffer[self._next]
        else:
            self._count += 1
        self._buffer[self._next] = value
        self._sum += value
        self._next = (self._next + 1) % self.capacity

    def mean(self) -> float:
        """Mean of the stored samples (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def last(self) -> float:
        """The most recent sample (0.0 when empty)."""
        if not self._count:
            return 0.0
        return self._buffer[(self._next - 1) % self.capacity]

    def values(self) -> list[float]:
        """Samples in arrival order, oldest first."""
        if self._count < self.capacity:
            return self._buffer[: self._count]
        return (
            self._buffer[self._next:] + self._buffer[: self._next]
        )

    def tail_mean(self, n: int) -> float:
        """Mean of the ``n`` most recent samples."""
        if n < 1:
            raise ConfigError(f"tail size must be >= 1: {n}")
        values = self.values()
        if not values:
            return 0.0
        tail = values[-n:]
        return sum(tail) / len(tail)

    def clear(self) -> None:
        """Forget all samples."""
        self._buffer = [0.0] * self.capacity
        self._count = 0
        self._next = 0
        self._sum = 0.0

    @property
    def full(self) -> bool:
        """Whether the window holds ``capacity`` samples."""
        return self._count == self.capacity

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (
            f"SampleWindow(capacity={self.capacity}, count={self._count}, "
            f"mean={self.mean():.1f})"
        )
