"""The Burst-Shutter detection heuristic (§4.1, Algorithm 1).

The idea: if the batch application is hurting the latency-sensitive
neighbour, halting the batch ("shutter") and then releasing it at full
force ("burst") must produce a visible spike in the neighbour's LLC
misses.  One detection cycle is:

* a one-period *settle* step that issues the halt directive (directives
  take effect the following period, as in the real runtime where the
  reaction is read from the communication table at the next timer tick);
* ``switch_point`` periods with the batch halted, sampling the
  neighbour's *steady* miss rate;
* ``end_point - switch_point`` periods with the batch running at full
  force, sampling the *burst* miss rate;
* a verdict: contention is asserted when the burst average *differs
  from* the steady average by more than both the absolute
  ``noise_thresh`` and the relative ``impact_factor`` — the paper's
  tunable QoS "knob" (5% in §6.2).

The paper's Algorithm 1 tests one direction only (a miss *spike* during
the burst).  On this simulated substrate a memory-bound neighbour often
shows the opposite sign: the burst slows it down, so it issues fewer
accesses — and therefore fewer misses — per period, even while its miss
*ratio* rises.  Both signs are evidence that the burst impacted the
neighbour, so the default ``mode="two-sided"`` asserts contention on a
significant move in either direction; ``mode="spike"`` reproduces the
paper's literal one-sided test for comparison (see DESIGN.md).

Two opt-in hardening knobs (off by default, so the paper's setup stays
bit-identical) recover the heuristic under PMU signal faults
(:mod:`repro.faults`), whose artefacts are phase-*internal* outliers —
a dropped or delayed read delivers a zero sample, a saturated counter
pegs orders of magnitude above the phase's real level — while genuine
contention moves the whole phase *between* phases:

* ``fault_filter`` discards fault-signature samples (zero reads in an
  otherwise-active phase, samples far above the phase median) before
  comparing averages, and *abstains* from the verdict entirely when a
  phase retains no trustworthy sample — an unreadable cycle should not
  become a coin-flip;
* ``debounce`` asserts the majority of the last N raw verdicts, so one
  residual corrupted cycle cannot flip the runtime's response.
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigError
from .detector import ContentionDetector, DetectorStep, Observation

DEFAULT_SWITCH_POINT = 5
DEFAULT_END_POINT = 10
DEFAULT_IMPACT_FACTOR = 0.05
#: Default absolute spike floor, in misses/period: moves smaller than
#: the paper's "heavy usage" threshold are treated as noise.
DEFAULT_NOISE_THRESH = 20.0
#: Default outlier ceiling of the fault filter: a sample more than this
#: many times the phase median reads as a saturated/accumulated counter.
DEFAULT_SPIKE_CAP = 4.0
#: Default significance multiplier of the fault filter's adaptive
#: floor: the between-phase move must exceed this many standard errors
#: of the within-phase scatter before it counts as evidence.
DEFAULT_DISPERSION = 2.0


class BurstShutterDetector(ContentionDetector):
    """Algorithm 1: shutter the batch, burst it, compare neighbour misses."""

    name = "burst-shutter"

    def __init__(
        self,
        switch_point: int = DEFAULT_SWITCH_POINT,
        end_point: int = DEFAULT_END_POINT,
        impact_factor: float = DEFAULT_IMPACT_FACTOR,
        noise_thresh: float = DEFAULT_NOISE_THRESH,
        mode: str = "two-sided",
        fault_filter: bool = False,
        debounce: int = 1,
        spike_cap: float = DEFAULT_SPIKE_CAP,
        dispersion: float = DEFAULT_DISPERSION,
    ):
        if mode not in ("two-sided", "spike"):
            raise ConfigError(
                f"mode must be 'two-sided' or 'spike', got {mode!r}"
            )
        if switch_point < 1:
            raise ConfigError(f"switch_point must be >= 1: {switch_point}")
        if end_point <= switch_point:
            raise ConfigError(
                f"end_point ({end_point}) must exceed "
                f"switch_point ({switch_point})"
            )
        if impact_factor < 0:
            raise ConfigError(f"impact_factor must be >= 0: {impact_factor}")
        if noise_thresh < 0:
            raise ConfigError(f"noise_thresh must be >= 0: {noise_thresh}")
        if debounce < 1:
            raise ConfigError(f"debounce must be >= 1: {debounce}")
        if spike_cap <= 1.0:
            raise ConfigError(f"spike_cap must be > 1: {spike_cap}")
        if dispersion < 0:
            raise ConfigError(f"dispersion must be >= 0: {dispersion}")
        self.switch_point = switch_point
        self.end_point = end_point
        self.impact_factor = impact_factor
        self.noise_thresh = noise_thresh
        self.trace_threshold = noise_thresh
        self.mode = mode
        self.fault_filter = fault_filter
        self.debounce = debounce
        self.spike_cap = spike_cap
        self.dispersion = dispersion
        self._count = 0
        self._steady: list[float] = []
        self._burst: list[float] = []
        #: raw per-cycle verdicts (pre-debounce), for tests and the
        #: decision log; abstained cycles append nothing
        self.verdicts: list[bool] = []
        #: recent raw verdicts the debounce majority votes over
        self._history: deque[bool] = deque(maxlen=debounce)

    def step(self, obs: Observation) -> DetectorStep:
        """One period of the settle/shutter/burst cycle.

        The returned ``pause_self`` governs the *next* period, so the
        measurement attributed to each phase is taken from periods where
        the batch really was in that phase's state.
        """
        count = self._count
        switch, end = self.switch_point, self.end_point
        if count == 0:
            # Settle step: ask for the halt; the current period still
            # reflects the previous response state, so record nothing.
            self._count = 1
            return DetectorStep(pause_self=True)
        if count <= switch:
            # The batch was halted during this period: steady sample.
            self._steady.append(obs.neighbor_misses)
            self._count = count + 1
            # Stay halted until all steady samples are in, then release
            # the batch so the next period starts the burst.
            return DetectorStep(pause_self=count < switch)
        # The batch ran at full force during this period: burst sample.
        self._burst.append(obs.neighbor_misses)
        self._count = count + 1
        if self._count <= end:
            return DetectorStep(pause_self=False)
        verdict = self._compare()
        self.reset()
        if verdict is None:
            # Fault filter rejected a whole phase: abstain rather than
            # guess.  No assertion is emitted, so the runtime simply
            # starts the next detection cycle.
            return DetectorStep(pause_self=False)
        self.verdicts.append(verdict)
        if self.debounce > 1:
            self._history.append(verdict)
            verdict = (
                sum(self._history) * 2 > len(self._history)
            )
        return DetectorStep(pause_self=False, assertion=verdict)

    def _trusted(self, samples: list[float]) -> list[float] | None:
        """The phase samples minus fault signatures (``None`` = unusable).

        Inside one phase the batch state is constant, so the real
        signal is roughly level; PMU faults instead produce zero reads
        (dropped/delayed delivery) and huge outliers (saturated or
        accumulation-doubled counters).  Both are judged against the
        phase's own median, never against the other phase — the
        between-phase difference *is* the signal being protected.
        """
        active = sorted(s for s in samples if s > 0.0)
        if not active:
            # Every read was zero: either a genuinely silent neighbour
            # (below any threshold, harmless) or a fully dropped phase.
            # Keep the zeros; the comparison can only say "no move".
            return samples
        median = active[len(active) // 2]
        if median <= self.noise_thresh:
            # Too quiet to tell artefacts from signal; leave untouched.
            return samples
        ceiling = self.spike_cap * median
        kept = [s for s in samples if 0.0 < s <= ceiling]
        # The median always survives its own ceiling, so "nothing left"
        # really means "one sample left": a phase that thin supports
        # neither a robust average nor a scatter estimate.
        return kept if len(kept) >= 2 else None

    def _compare(self) -> bool | None:
        steady, burst = self._steady, self._burst
        floor = self.noise_thresh
        if self.fault_filter:
            trusted_steady = self._trusted(steady)
            trusted_burst = self._trusted(burst)
            if trusted_steady is None or trusted_burst is None:
                return None
            steady, burst = trusted_steady, trusted_burst
            # Adaptive significance floor: multiplicative counter noise
            # moves the phase averages apart without any real contention,
            # but it also scatters the samples *within* each phase.  A
            # clean signal is near-level inside a phase, so this gate is
            # inert on it; under heavy noise the between-phase move must
            # beat the within-phase standard error to count as evidence.
            floor = max(floor, self.dispersion * self._phase_sem(steady, burst))
        steady_average = sum(steady) / len(steady)
        burst_average = sum(burst) / len(burst)
        spike = burst_average - steady_average
        spiked = (
            spike > floor
            and burst_average > steady_average * (1.0 + self.impact_factor)
        )
        if self.mode == "spike":
            return spiked
        dropped = (
            -spike > floor
            and burst_average < steady_average * (1.0 - self.impact_factor)
        )
        return spiked or dropped

    @staticmethod
    def _phase_sem(steady: list[float], burst: list[float]) -> float:
        """Standard error of the between-phase difference of means."""
        total = 0.0
        for samples in (steady, burst):
            n = len(samples)
            mean = sum(samples) / n
            var = sum((s - mean) ** 2 for s in samples) / n
            total += var / n
        return total ** 0.5

    def reset(self) -> None:
        """Start a fresh settle/shutter/burst cycle."""
        self._count = 0
        self._steady = []
        self._burst = []

    @property
    def cycle_length(self) -> int:
        """Periods one full detection cycle takes (incl. the settle step)."""
        return self.end_point + 1

    def __repr__(self) -> str:
        return (
            f"BurstShutterDetector(switch={self.switch_point}, "
            f"end={self.end_point}, impact={self.impact_factor})"
        )
