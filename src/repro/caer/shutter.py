"""The Burst-Shutter detection heuristic (§4.1, Algorithm 1).

The idea: if the batch application is hurting the latency-sensitive
neighbour, halting the batch ("shutter") and then releasing it at full
force ("burst") must produce a visible spike in the neighbour's LLC
misses.  One detection cycle is:

* a one-period *settle* step that issues the halt directive (directives
  take effect the following period, as in the real runtime where the
  reaction is read from the communication table at the next timer tick);
* ``switch_point`` periods with the batch halted, sampling the
  neighbour's *steady* miss rate;
* ``end_point - switch_point`` periods with the batch running at full
  force, sampling the *burst* miss rate;
* a verdict: contention is asserted when the burst average *differs
  from* the steady average by more than both the absolute
  ``noise_thresh`` and the relative ``impact_factor`` — the paper's
  tunable QoS "knob" (5% in §6.2).

The paper's Algorithm 1 tests one direction only (a miss *spike* during
the burst).  On this simulated substrate a memory-bound neighbour often
shows the opposite sign: the burst slows it down, so it issues fewer
accesses — and therefore fewer misses — per period, even while its miss
*ratio* rises.  Both signs are evidence that the burst impacted the
neighbour, so the default ``mode="two-sided"`` asserts contention on a
significant move in either direction; ``mode="spike"`` reproduces the
paper's literal one-sided test for comparison (see DESIGN.md).
"""

from __future__ import annotations

from ..errors import ConfigError
from .detector import ContentionDetector, DetectorStep, Observation

DEFAULT_SWITCH_POINT = 5
DEFAULT_END_POINT = 10
DEFAULT_IMPACT_FACTOR = 0.05
#: Default absolute spike floor, in misses/period: moves smaller than
#: the paper's "heavy usage" threshold are treated as noise.
DEFAULT_NOISE_THRESH = 20.0


class BurstShutterDetector(ContentionDetector):
    """Algorithm 1: shutter the batch, burst it, compare neighbour misses."""

    name = "burst-shutter"

    def __init__(
        self,
        switch_point: int = DEFAULT_SWITCH_POINT,
        end_point: int = DEFAULT_END_POINT,
        impact_factor: float = DEFAULT_IMPACT_FACTOR,
        noise_thresh: float = DEFAULT_NOISE_THRESH,
        mode: str = "two-sided",
    ):
        if mode not in ("two-sided", "spike"):
            raise ConfigError(
                f"mode must be 'two-sided' or 'spike', got {mode!r}"
            )
        if switch_point < 1:
            raise ConfigError(f"switch_point must be >= 1: {switch_point}")
        if end_point <= switch_point:
            raise ConfigError(
                f"end_point ({end_point}) must exceed "
                f"switch_point ({switch_point})"
            )
        if impact_factor < 0:
            raise ConfigError(f"impact_factor must be >= 0: {impact_factor}")
        if noise_thresh < 0:
            raise ConfigError(f"noise_thresh must be >= 0: {noise_thresh}")
        self.switch_point = switch_point
        self.end_point = end_point
        self.impact_factor = impact_factor
        self.noise_thresh = noise_thresh
        self.trace_threshold = noise_thresh
        self.mode = mode
        self._count = 0
        self._steady: list[float] = []
        self._burst: list[float] = []
        #: verdict history, for tests and the decision log
        self.verdicts: list[bool] = []

    def step(self, obs: Observation) -> DetectorStep:
        """One period of the settle/shutter/burst cycle.

        The returned ``pause_self`` governs the *next* period, so the
        measurement attributed to each phase is taken from periods where
        the batch really was in that phase's state.
        """
        count = self._count
        switch, end = self.switch_point, self.end_point
        if count == 0:
            # Settle step: ask for the halt; the current period still
            # reflects the previous response state, so record nothing.
            self._count = 1
            return DetectorStep(pause_self=True)
        if count <= switch:
            # The batch was halted during this period: steady sample.
            self._steady.append(obs.neighbor_misses)
            self._count = count + 1
            # Stay halted until all steady samples are in, then release
            # the batch so the next period starts the burst.
            return DetectorStep(pause_self=count < switch)
        # The batch ran at full force during this period: burst sample.
        self._burst.append(obs.neighbor_misses)
        self._count = count + 1
        if self._count <= end:
            return DetectorStep(pause_self=False)
        verdict = self._compare()
        self.verdicts.append(verdict)
        self.reset()
        return DetectorStep(pause_self=False, assertion=verdict)

    def _compare(self) -> bool:
        steady_average = sum(self._steady) / len(self._steady)
        burst_average = sum(self._burst) / len(self._burst)
        spike = burst_average - steady_average
        spiked = (
            spike > self.noise_thresh
            and burst_average > steady_average * (1.0 + self.impact_factor)
        )
        if self.mode == "spike":
            return spiked
        dropped = (
            -spike > self.noise_thresh
            and burst_average < steady_average * (1.0 - self.impact_factor)
        )
        return spiked or dropped

    def reset(self) -> None:
        """Start a fresh settle/shutter/burst cycle."""
        self._count = 0
        self._steady = []
        self._burst = []

    @property
    def cycle_length(self) -> int:
        """Periods one full detection cycle takes (incl. the settle step)."""
        return self.end_point + 1

    def __repr__(self) -> str:
        return (
            f"BurstShutterDetector(switch={self.switch_point}, "
            f"end={self.end_point}, impact={self.impact_factor})"
        )
