"""A CDF/quantile detection heuristic (statistical, non-parametric).

The cpu-cycle-contention detector family compares each new sample
against the *empirical CDF* of its own recent history: a period whose
cycle (here: LLC-miss) count lands in the distribution's upper tail is
flagged as contended, with no parametric model and no absolute
threshold to tune.  This detector is that shape on CAER's substrate:

* a bounded window keeps the last ``window`` per-period LLC-miss
  counts of the latency-sensitive side (the *raw* per-period counts,
  not the communication table's rolling mean — the tail signal is what
  the mean smooths away);
* each period the current count's empirical quantile rank is computed
  against that history **before** the count joins the window (so a
  sustained burst cannot immediately re-normalise itself);
* contention is asserted when the rank reaches ``quantile`` — the
  observation is in the distribution's upper tail — and the batch side
  is itself active above ``noise_floor`` (both-sides logic, as in the
  paper's Algorithm 2: an idle batch cannot be the cause).

No verdict is issued until ``min_samples`` history periods exist
(``assertion=None``, like Burst-Shutter mid-cycle).
"""

from __future__ import annotations

from collections import deque

from ..errors import ConfigError
from .detector import ContentionDetector, DetectorStep, Observation


class CdfQuantileDetector(ContentionDetector):
    """Upper-tail rank of the current period against its own history."""

    name = "cdf-quantile"

    def __init__(
        self,
        window: int = 64,
        quantile: float = 0.85,
        min_samples: int = 12,
        noise_floor: float = 0.0,
    ):
        if window < 4:
            raise ConfigError(f"window must be >= 4: {window}")
        if not 0.0 < quantile <= 1.0:
            raise ConfigError(
                f"quantile must be in (0, 1]: {quantile}"
            )
        if min_samples < 2 or min_samples > window:
            raise ConfigError(
                f"min_samples must be in [2, window]: {min_samples}"
            )
        if noise_floor < 0:
            raise ConfigError(f"noise_floor must be >= 0: {noise_floor}")
        self.window = window
        self.quantile = quantile
        self.min_samples = min_samples
        self.noise_floor = noise_floor
        self.trace_threshold = quantile
        self._history: deque[float] = deque(maxlen=window)
        self.verdicts: list[bool] = []

    def rank(self, value: float) -> float:
        """Empirical CDF of ``value`` against the current history."""
        if not self._history:
            return 0.0
        below = sum(1 for x in self._history if x <= value)
        return below / len(self._history)

    def step(self, obs: Observation) -> DetectorStep:
        """Rank this period's misses in the tail of its own history."""
        value = obs.neighbor_misses
        if len(self._history) < self.min_samples:
            self._history.append(value)
            return DetectorStep(pause_self=False)
        rank = self.rank(value)
        contending = (
            rank >= self.quantile
            and value > self.noise_floor
            and obs.own_mean > self.noise_floor
        )
        self._history.append(value)
        self.verdicts.append(contending)
        return DetectorStep(pause_self=False, assertion=contending)

    def reset(self) -> None:
        """Keep the history; the CDF is the detector's whole memory."""

    def __repr__(self) -> str:
        return (
            f"CdfQuantileDetector(window={self.window}, "
            f"q={self.quantile}, min={self.min_samples})"
        )
