"""Command-line interface.

Regenerate any of the paper's artefacts from a shell::

    repro-caer fig 1           # Figure 1 table
    repro-caer fig 3           # Figure 3 ASCII time series
    repro-caer all             # every figure plus the headline numbers
    repro-caer headline        # just the §1/§6 means
    repro-caer ablation impact-factor
    repro-caer calibrate       # workload-vs-Figure-1 calibration table
    repro-caer list            # what can be run

Run length is controlled by ``--length`` or the ``REPRO_LENGTH``
environment variable (default 0.2; 1.0 is the slowest/most faithful).
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from pathlib import Path

from .errors import ConfigError, ReproError
from .experiments import (
    ABLATIONS,
    Campaign,
    CampaignSettings,
    figure1,
    figure2,
    figure3,
    figure3_correlations,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    headline_numbers,
    run_ablation,
)
from .runspec import RunSpec, backend_names, execute_run

_FIGURES = {
    "1": figure1,
    "2": figure2,
    "6": figure6,
    "7": figure7,
    "8": figure8,
    "9": figure9,
    "10": figure10,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-caer",
        description=(
            "Reproduction of 'Contention Aware Execution: Online "
            "Contention Detection and Response' (CGO 2010)"
        ),
    )
    parser.add_argument(
        "--length",
        type=float,
        default=None,
        help="run-length scale (default from REPRO_LENGTH or 0.2)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="simulation seed"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for simulation fan-out (default from "
            "REPRO_JOBS or the cpu count; 1 = serial)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=backend_names(),
        default=None,
        help=(
            "execution engine for every run (default from "
            "REPRO_BACKEND or 'sim'; 'statistical' is the closed-form "
            "fast engine)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk run cache",
    )
    parser.add_argument(
        "--csv",
        action="store_true",
        help="emit tables as CSV instead of aligned text",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help=(
            "write a JSONL decision trace per simulated run to "
            "results/traces/ (cached runs are not re-simulated and "
            "therefore not traced)"
        ),
    )
    parser.add_argument(
        "--trace-dir",
        default=None,
        help="directory for --trace output (default results/traces)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("fig", help="regenerate one figure")
    fig.add_argument("number", choices=sorted(_FIGURES) + ["3"])

    sub.add_parser("all", help="regenerate every figure + headline")
    sub.add_parser("headline", help="suite-mean penalties/utilization")

    abl = sub.add_parser("ablation", help="run a tuning-space sweep")
    abl.add_argument("name", choices=sorted(ABLATIONS))

    sub.add_parser(
        "scaling", help="multi-batch scaling study (extension)"
    )
    crossval = sub.add_parser(
        "crossval",
        help="cross-validation: sim vs. statistical backend over "
             "identical specs (--analytic for the closed-form model)",
    )
    crossval.add_argument(
        "--analytic",
        action="store_true",
        help="compare the analytic predictor against the campaign "
             "instead of the two backends",
    )
    sub.add_parser(
        "contenders", help="alternative-contender study (§6.1)"
    )
    faults = sub.add_parser(
        "faults",
        help="fault-injection sweep: detection accuracy vs. PMU "
             "signal-path fault intensity (robustness extension)",
    )
    faults.add_argument(
        "--victim", default="429.mcf",
        help="latency-sensitive benchmark under test (default 429.mcf)",
    )
    faults.add_argument(
        "--intensity",
        type=float,
        action="append",
        default=None,
        metavar="I",
        help="fault intensity to sweep (repeatable; default "
             "0 0.25 0.5 1.0)",
    )
    faults.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plans' RNG streams (default 0)",
    )
    shootout = sub.add_parser(
        "shootout",
        help="score every registered detector against the profile "
             "oracle (accuracy / penalty / utilization)",
    )
    shootout.add_argument(
        "--victim", default="429.mcf",
        help="latency-sensitive benchmark under test (default 429.mcf)",
    )
    shootout.add_argument(
        "--intensity",
        type=float,
        action="append",
        default=None,
        metavar="I",
        help="fault intensity to average accuracy over (repeatable; "
             "must include 0; default 0 0.5)",
    )
    shootout.add_argument(
        "--detector",
        action="append",
        default=None,
        metavar="NAME",
        help="detector to score (repeatable; default every "
             "registered detector)",
    )
    shootout.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the fault plans' RNG streams (default 0)",
    )
    fleet = sub.add_parser(
        "fleet",
        help="fleet layer: chaos-frontier sweep (default) or a single "
             "placement episode over simulated CAER nodes",
    )
    fleet.add_argument(
        "--nodes", type=int, default=None,
        help="simulated nodes in the fleet (default 4)",
    )
    fleet.add_argument(
        "--ticks", type=int, default=None,
        help="episode horizon in fleet ticks (default 48)",
    )
    fleet.add_argument(
        "--config", choices=("raw", "shutter", "rule", "random"),
        default="rule",
        help="CAER config every node runs (default rule)",
    )
    fleet.add_argument(
        "--victim", default="429.mcf",
        help="latency-sensitive benchmark on the nodes (default "
             "429.mcf)",
    )
    fleet.add_argument(
        "--intensity",
        type=float,
        action="append",
        default=None,
        metavar="I",
        help="node-fault intensity (repeatable for the sweep; with "
             "--episode the first value is used; default sweep "
             "0 0.1 0.2 0.4 0.7 1.0)",
    )
    fleet.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the node fault plans (default 0)",
    )
    fleet.add_argument(
        "--repeats", type=int, default=None,
        help="fault seeds averaged per sweep row (default 3)",
    )
    fleet.add_argument(
        "--episode",
        action="store_true",
        help="run one fleet episode and print its SLO report instead "
             "of the sweep",
    )
    fleet.add_argument(
        "--journal", default=None, metavar="PATH",
        help="fleet journal file for crash-safe episode resume "
             "(--episode only)",
    )
    fleet.add_argument(
        "--beacon-dir", default=None, metavar="DIR",
        help="write per-node heartbeat beacons here (--episode only; "
             "default REPRO_BEACON_DIR when set)",
    )
    quarantine = sub.add_parser(
        "quarantine",
        help="list or clear quarantined runs and fleet nodes",
    )
    quarantine.add_argument(
        "action", choices=("list", "clear"),
        help="list the quarantine, or clear it (journalled)",
    )
    quarantine.add_argument(
        "--digest", default=None, metavar="DIGEST",
        help="with clear: lift only this digest (default: all)",
    )
    quarantine.add_argument(
        "--journal", default=None, metavar="PATH",
        help="operate on an explicit journal file (e.g. a fleet "
             "journal) instead of the campaign's",
    )
    sub.add_parser(
        "plugins",
        help="list the registered detectors, responses, and backends",
    )
    sub.add_parser(
        "repeatability", help="seed-stability study"
    )
    report = sub.add_parser(
        "report", help="write the full evaluation to results/report.md"
    )
    report.add_argument(
        "--output", default="results/report.md",
        help="where to write the markdown report",
    )
    trace = sub.add_parser(
        "trace",
        help="simulate one run and dump its JSONL decision trace",
    )
    trace.add_argument("bench", help="benchmark name (e.g. mcf)")
    trace.add_argument(
        "config",
        help="solo, a paper tag (raw/shutter/rule/random), any "
             "registered detector name, or '<detector>+<response>'",
    )
    trace.add_argument(
        "--output",
        default=None,
        help="trace path (default results/traces/trace_<bench>__<config>.jsonl)",
    )
    stats = sub.add_parser(
        "stats", help="summarize cached campaign telemetry"
    )
    stats.add_argument(
        "--format",
        choices=("table", "json", "prometheus"),
        default="table",
        help=(
            "output format: human table, machine JSON, or the same "
            "Prometheus exposition the live /metrics endpoint serves"
        ),
    )
    watch = sub.add_parser(
        "watch",
        help="render in-flight campaign health from heartbeat beacons",
    )
    watch.add_argument(
        "--dir",
        default=None,
        help="beacon directory (default REPRO_BEACON_DIR or "
             "results/beacons)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="print one snapshot and exit (0 iff beacons were found) "
             "instead of looping until the campaign finishes",
    )
    watch.add_argument(
        "--interval",
        type=float,
        default=None,
        help="redraw cadence in seconds (default 1.0)",
    )
    timeline = sub.add_parser(
        "timeline",
        help="replay a JSONL trace as a per-period detect/respond "
             "timeline",
    )
    timeline.add_argument("path", help="JSONL trace file to replay")
    timeline.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="KIND",
        help="event kind to include (repeatable; default every kind "
             "except pmu_sample)",
    )
    timeline.add_argument(
        "--start", type=int, default=None,
        help="first period to include (inclusive)",
    )
    timeline.add_argument(
        "--end", type=int, default=None,
        help="last period to include (inclusive)",
    )
    timeline.add_argument(
        "--limit", type=int, default=None,
        help="cap the number of periods printed",
    )
    spec = sub.add_parser(
        "spec",
        help="print (or execute) the declarative JSON spec of one run",
    )
    spec.add_argument(
        "bench", nargs="?", default=None,
        help="benchmark name (e.g. mcf); omit when using --file",
    )
    spec.add_argument(
        "config", nargs="?", default="solo",
        help="solo, a paper tag (raw/shutter/rule/random), any "
             "registered detector name, or '<detector>+<response>' "
             "(default solo)",
    )
    spec.add_argument(
        "--file",
        default=None,
        metavar="PATH",
        help="read the spec as JSON from PATH ('-' = stdin) instead "
             "of building it from bench/config",
    )
    spec.add_argument(
        "--execute",
        action="store_true",
        help="execute the spec on its backend and print the outcome",
    )
    sub.add_parser("calibrate", help="workload calibration table")
    sub.add_parser("list", help="list available artefacts")
    return parser


def _settings(args: argparse.Namespace) -> CampaignSettings:
    settings = CampaignSettings.from_env()
    if args.length is not None:
        settings = dataclasses.replace(settings, length=args.length)
    if args.seed is not None:
        settings = dataclasses.replace(settings, seed=args.seed)
    if args.backend is not None:
        settings = dataclasses.replace(settings, backend=args.backend)
    return settings


def _load_spec(args: argparse.Namespace,
               settings: CampaignSettings) -> RunSpec:
    """Resolve the ``spec`` subcommand's input to a :class:`RunSpec`."""
    if args.file is not None:
        if args.file == "-":
            text = sys.stdin.read()
        else:
            try:
                text = Path(args.file).read_text()
            except OSError as exc:
                raise ConfigError(f"cannot read spec file: {exc}")
        return RunSpec.from_json(text)
    if args.bench is None:
        raise ConfigError(
            "spec needs a benchmark name (or --file PATH / --file -)"
        )
    from .workloads import resolve_benchmark_name

    return settings.run_spec(
        resolve_benchmark_name(args.bench), args.config
    )


def _emit(table, args: argparse.Namespace) -> None:
    if args.csv:
        sys.stdout.write(table.to_csv())
    else:
        sys.stdout.write(table.render())


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-caer`` console script.

    Library errors (unknown benchmark or configuration names, campaign
    failures) are reported as a one-line message on stderr with a
    nonzero exit — never a raw traceback.
    """
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    settings = _settings(args)
    if args.jobs is not None:
        from .experiments import resolve_jobs

        resolve_jobs(args.jobs, source="--jobs")
    if args.trace or args.trace_dir:
        trace_dir = args.trace_dir or "results/traces"
        os.makedirs(trace_dir, exist_ok=True)
        os.environ["REPRO_TRACE_DIR"] = trace_dir

    # Beacon-reading commands never build (or need) a Campaign.
    if args.command == "watch":
        from .experiments.watch import WATCH_INTERVAL, watch_loop, watch_once

        if args.once:
            return watch_once(args.dir)
        return watch_loop(
            args.dir,
            interval=(
                args.interval if args.interval is not None
                else WATCH_INTERVAL
            ),
        )

    if args.command == "timeline":
        from .experiments.telemetry import render_timeline
        from .obs import read_jsonl

        try:
            records = read_jsonl(args.path)
        except OSError as exc:
            raise ConfigError(f"cannot read trace file: {exc}")
        sys.stdout.write(
            render_timeline(
                records,
                kinds=tuple(args.kind) if args.kind else None,
                start=args.start,
                end=args.end,
                limit=args.limit,
            )
        )
        return 0

    campaign = Campaign(
        settings, use_disk_cache=not args.no_cache, jobs=args.jobs
    )

    # Live telemetry is opt-in via REPRO_METRICS_PORT: serve the
    # campaign's merged registry over HTTP for the whole invocation,
    # and default the beacon directory so warm-pool workers report in
    # (and `repro-caer watch` has something to read).
    from .obs import exporter_port

    port = exporter_port()
    if port is not None:
        from .experiments.watch import DEFAULT_BEACON_DIR
        from .obs import BEACON_DIR_ENV, start_exporter

        os.environ.setdefault(BEACON_DIR_ENV, DEFAULT_BEACON_DIR)
        exporter = start_exporter(campaign.export_snapshot, port=port)
        print(
            f"serving campaign metrics on {exporter.url} "
            f"(beacons under {os.environ[BEACON_DIR_ENV]})",
            file=sys.stderr,
        )
        try:
            return _run_command(args, settings, campaign)
        finally:
            exporter.close()
    return _run_command(args, settings, campaign)


def _run_command(
    args: argparse.Namespace,
    settings: CampaignSettings,
    campaign: Campaign,
) -> int:

    if args.command == "list":
        from .caer import registry

        print("figures: 1 2 3 6 7 8 9 10")
        print("ablations:", " ".join(sorted(ABLATIONS)))
        print("extensions: scaling crossval contenders faults "
              "shootout fleet quarantine repeatability report trace "
              "stats spec plugins")
        print("backends:", " ".join(backend_names()))
        print("detectors:", " ".join(registry.detector_names()))
        print("responses:", " ".join(registry.response_names()))
        return 0

    if args.command == "plugins":
        from .caer import registry

        print("detectors:", " ".join(registry.detector_names()))
        print("responses:", " ".join(registry.response_names()))
        print("backends:", " ".join(backend_names()))
        print(
            "config tags: solo raw shutter rule random, any detector "
            "name, or '<detector>+<response>'"
        )
        return 0

    if args.command == "spec":
        spec = _load_spec(args, settings)
        if not args.execute:
            print(spec.to_json())
            return 0
        outcome = execute_run(spec)
        print(f"spec {spec.digest}")
        print(f"backend: {outcome.backend}")
        print(f"run: {spec.describe()}")
        print(f"completion_periods: {outcome.completion_periods}")
        print(f"total_periods: {outcome.total_periods}")
        print(f"ls_total_llc_misses: {outcome.ls_total_llc_misses}")
        print(f"utilization_gained: {outcome.utilization_gained:.4f}")
        print(f"wall_seconds: {outcome.wall_seconds}")
        return 0

    if args.command == "trace":
        from .experiments.telemetry import render_trace_report, trace_run

        output = args.output
        if output is None:
            safe = args.bench.replace(".", "_")
            os.makedirs("results/traces", exist_ok=True)
            output = f"results/traces/trace_{safe}__{args.config}.jsonl"
        report = trace_run(settings, args.bench, args.config, output)
        sys.stdout.write(render_trace_report(report))
        return 0

    if args.command == "stats":
        from .experiments.telemetry import campaign_stats

        sys.stdout.write(campaign_stats(campaign, fmt=args.format))
        return 0

    if args.command == "calibrate":
        from .experiments.calibrate import main as calibrate_main

        calibrate_main([str(settings.length)])
        return 0

    if args.command == "headline":
        print(headline_numbers(campaign).render())
        return 0

    if args.command == "ablation":
        _emit(run_ablation(args.name, settings, jobs=args.jobs), args)
        return 0

    if args.command == "scaling":
        from .experiments.scaling import scaling_study

        _emit(scaling_study(settings, jobs=args.jobs), args)
        return 0

    if args.command == "crossval":
        from .experiments.crossval import analytic_figure1, backend_crossval

        if args.analytic:
            _emit(analytic_figure1(campaign), args)
        else:
            _emit(backend_crossval(settings, jobs=args.jobs), args)
        return 0

    if args.command == "contenders":
        from .experiments.contenders import contender_study

        _emit(contender_study(settings, jobs=args.jobs), args)
        return 0

    if args.command == "faults":
        from .experiments.faults import DEFAULT_INTENSITIES, fault_sweep
        from .workloads import resolve_benchmark_name

        intensities = (
            tuple(args.intensity)
            if args.intensity
            else DEFAULT_INTENSITIES
        )
        _emit(
            fault_sweep(
                settings,
                victim=resolve_benchmark_name(args.victim),
                intensities=intensities,
                jobs=args.jobs,
                fault_seed=args.fault_seed,
            ),
            args,
        )
        return 0

    if args.command == "shootout":
        from .experiments.shootout import (
            DEFAULT_INTENSITIES,
            detector_shootout,
        )
        from .workloads import resolve_benchmark_name

        intensities = (
            tuple(args.intensity)
            if args.intensity
            else DEFAULT_INTENSITIES
        )
        _emit(
            detector_shootout(
                settings,
                victim=resolve_benchmark_name(args.victim),
                intensities=intensities,
                detectors=(
                    tuple(args.detector) if args.detector else None
                ),
                jobs=args.jobs,
                fault_seed=args.fault_seed,
            ),
            args,
        )
        return 0

    if args.command == "fleet":
        return _run_fleet(args, campaign)

    if args.command == "quarantine":
        return _run_quarantine(args, campaign)

    if args.command == "repeatability":
        from .experiments.repeatability import repeatability_study

        _emit(repeatability_study(settings, jobs=args.jobs), args)
        return 0

    if args.command == "report":
        from .experiments.report import write_report

        path = write_report(campaign, args.output)
        print(f"report written to {path}")
        return 0

    if args.command == "fig":
        if args.number == "3":
            for chart in figure3(campaign).values():
                print(chart)
            _emit(figure3_correlations(campaign), args)
        else:
            _emit(_FIGURES[args.number](campaign), args)
        return 0

    if args.command == "all":
        for number in ("1", "2"):
            _emit(_FIGURES[number](campaign), args)
            print()
        for chart in figure3(campaign).values():
            print(chart)
        _emit(figure3_correlations(campaign), args)
        print()
        for number in ("6", "7", "8", "9", "10"):
            _emit(_FIGURES[number](campaign), args)
            print()
        print(headline_numbers(campaign).render())
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


def _run_fleet(args: argparse.Namespace, campaign: Campaign) -> int:
    """The ``fleet`` subcommand: chaos frontier, or one episode."""
    from .experiments.fleetchaos import (
        DEFAULT_INTENSITIES,
        DEFAULT_REPEATS,
        chaos_frontier,
    )
    from .faults.nodes import NodeFaultPlan
    from .fleet import (
        FleetEpisode,
        FleetJournal,
        FleetSpec,
        build_profiles,
        render_fleet_report,
    )
    from .workloads import resolve_benchmark_name

    spec = FleetSpec(
        config=args.config,
        victims=(resolve_benchmark_name(args.victim),),
        **{
            key: value
            for key, value in (
                ("nodes", args.nodes),
                ("ticks", args.ticks),
            )
            if value is not None
        },
    )
    # Calibration runs ride the campaign cache, shared with the paper
    # figures; prefetch fans any missing ones across workers.
    campaign.prefetch(spec.victims, ["solo", spec.config], jobs=args.jobs)
    if not args.episode:
        intensities = (
            tuple(args.intensity)
            if args.intensity
            else DEFAULT_INTENSITIES
        )
        table = chaos_frontier(
            campaign,
            spec=spec,
            intensities=intensities,
            fault_seed=args.fault_seed,
            repeats=(
                args.repeats if args.repeats is not None
                else DEFAULT_REPEATS
            ),
        )
        _emit(table, args)
        return 0
    intensity = args.intensity[0] if args.intensity else 0.0
    if intensity:
        spec = dataclasses.replace(
            spec,
            node_faults=NodeFaultPlan.scaled(
                intensity, seed=args.fault_seed
            ),
        )
    journal = (
        FleetJournal(args.journal, spec.digest)
        if args.journal
        else None
    )
    from .obs.heartbeat import beacon_dir

    beacons = args.beacon_dir or beacon_dir()
    profiles = build_profiles(campaign, spec)
    episode = FleetEpisode(
        spec, profiles, journal=journal, beacon_dir=beacons
    )
    result = episode.run()
    sys.stdout.write(render_fleet_report(result))
    return 0


def _run_quarantine(args: argparse.Namespace, campaign: Campaign) -> int:
    """The ``quarantine`` subcommand: list/clear runs and fleet nodes."""
    if args.journal:
        from .experiments.resilience import CampaignJournal

        journal = CampaignJournal(args.journal)
        records = [
            {
                "digest": digest,
                "label": (
                    f"({record.get('bench', '?')}, "
                    f"{record.get('config', '?')})"
                ),
                "attempts": record.get("attempts", 0),
                "error": record.get("error", "unknown failure"),
            }
            for digest, record in sorted(journal.quarantined.items())
        ]
        if args.action == "list":
            if not records:
                print("quarantine is empty")
                return 0
            for record in records:
                print(
                    f"{record['digest']}  {record['label']}  "
                    f"attempts={record['attempts']}  {record['error']}"
                )
            return 0
        cleared = 0
        for record in records:
            if args.digest and record["digest"] != args.digest:
                continue
            journal.record_cleared(record["digest"])
            cleared += 1
        if args.digest and not cleared:
            print(f"digest {args.digest} is not quarantined")
            return 1
        print(f"cleared {cleared} quarantine record(s)")
        return 0
    if args.action == "list":
        records = campaign.quarantine_report()
        if not records:
            print("quarantine is empty")
            return 0
        for record in records:
            print(
                f"{record.digest}  {record.label}  "
                f"attempts={record.attempts}  {record.error}"
            )
        return 0
    if args.digest:
        record = campaign.quarantined.pop(args.digest, None)
        if record is None:
            print(f"digest {args.digest} is not quarantined")
            return 1
        if campaign.journal is not None:
            campaign.journal.record_cleared(args.digest)
        print("cleared 1 quarantine record(s)")
        return 0
    cleared = campaign.clear_quarantine()
    print(f"cleared {cleared} quarantine record(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
