"""Access-pattern generators.

Each pattern is a (spec, runtime) pair: the frozen ``*Spec`` dataclass
validates parameters and states the footprint; ``instantiate`` builds a
stateful generator whose :meth:`next_address` is the simulator's hottest
call.  Random patterns therefore pre-draw numpy batches and serve them
from a plain Python list.

The patterns cover the behaviours the SPEC models need:

* :class:`SequentialStreamSpec` — cyclic streaming with per-line spatial
  locality (lbm, libquantum, milc, sphinx3);
* :class:`UniformRandomSpec` — uniform references over a working set;
* :class:`PointerChaseSpec` — a random-permutation cycle, the classic
  latency-bound dependent-load chain (mcf, omnetpp, xalancbmk);
* :class:`ZipfSpec` — skewed reuse (perlbench, gcc, gobmk);
* :class:`HotColdSpec` — a small hot structure plus a cold heap;
* :class:`StridedScanSpec` — strided sweeps (row-major numeric codes);
* :class:`MixtureSpec` — a probabilistic blend of the above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .base import AccessPattern, PatternSpec

_BATCH = 4096


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise WorkloadError(f"{name} must be positive, got {value}")


class _BufferedPattern(AccessPattern):
    """Base for patterns that serve addresses from pre-drawn batches."""

    def __init__(self) -> None:
        self._buffer: list[int] = []
        self._index = 0

    def _refill(self) -> list[int]:
        raise NotImplementedError

    def next_address(self) -> int:
        i = self._index
        buf = self._buffer
        if i >= len(buf):
            buf = self._buffer = self._refill()
            i = 0
        self._index = i + 1
        return buf[i]

    def next_addresses(self, n: int) -> list[int]:
        i = self._index
        buf = self._buffer
        avail = len(buf) - i
        if avail >= n:
            self._index = i + n
            return buf[i:i + n]
        out = buf[i:]
        n -= avail
        while True:
            buf = self._refill()
            if len(buf) >= n:
                self._buffer = buf
                self._index = n
                out.extend(buf[:n])
                return out
            out.extend(buf)
            n -= len(buf)


# -- sequential streaming ----------------------------------------------


@dataclass(frozen=True)
class SequentialStreamSpec(PatternSpec):
    """Cyclic sequential walk over ``lines`` lines.

    ``line_repeats`` consecutive accesses hit the same line before
    advancing, modelling spatial locality within a 64-byte line (a
    double-precision stream touches a line 8 times).
    """

    lines: int
    line_repeats: int = 4

    def __post_init__(self) -> None:
        _require_positive("lines", self.lines)
        _require_positive("line_repeats", self.line_repeats)

    def footprint_lines(self) -> int:
        return self.lines

    def instantiate(
        self, rng: np.random.Generator, base: int
    ) -> AccessPattern:
        return _SequentialStream(self.lines, self.line_repeats, base)


class _SequentialStream(AccessPattern):
    __slots__ = ("_lines", "_repeats", "_base", "_line", "_count")

    def __init__(self, lines: int, repeats: int, base: int):
        self._lines = lines
        self._repeats = repeats
        self._base = base
        self._line = 0
        self._count = 0

    def next_address(self) -> int:
        addr = self._base + self._line
        self._count += 1
        if self._count >= self._repeats:
            self._count = 0
            self._line += 1
            if self._line >= self._lines:
                self._line = 0
        return addr

    def next_addresses(self, n: int) -> list[int]:
        # The stream is periodic with period lines*repeats; index the
        # next n ticks of that cycle in one vectorised step.  The
        # single ``tolist`` conversion is the only materialisation —
        # the batch is handed to the bulk kernel wholesale, so no
        # intermediate Python list is ever built.
        repeats = self._repeats
        period = self._lines * repeats
        start = self._line * repeats + self._count
        ticks = (start + np.arange(n, dtype=np.int64)) % period
        end = (start + n) % period
        self._line = end // repeats
        self._count = end % repeats
        return (ticks // repeats + self._base).tolist()

    def next_addresses_array(self, n: int) -> np.ndarray:
        # Same periodic indexing as next_addresses, minus the tolist:
        # the ndarray goes straight into the vector kernel.
        repeats = self._repeats
        period = self._lines * repeats
        start = self._line * repeats + self._count
        ticks = (start + np.arange(n, dtype=np.int64)) % period
        end = (start + n) % period
        self._line = end // repeats
        self._count = end % repeats
        return ticks // repeats + self._base

    def footprint_lines(self) -> int:
        return self._lines


# -- uniform random ----------------------------------------------------


@dataclass(frozen=True)
class UniformRandomSpec(PatternSpec):
    """Uniformly random references over ``lines`` lines."""

    lines: int
    line_repeats: int = 1

    def __post_init__(self) -> None:
        _require_positive("lines", self.lines)
        _require_positive("line_repeats", self.line_repeats)

    def footprint_lines(self) -> int:
        return self.lines

    def instantiate(
        self, rng: np.random.Generator, base: int
    ) -> AccessPattern:
        return _UniformRandom(rng, self.lines, self.line_repeats, base)


class _UniformRandom(_BufferedPattern):
    def __init__(
        self, rng: np.random.Generator, lines: int, repeats: int, base: int
    ):
        super().__init__()
        self._rng = rng
        self._lines = lines
        self._repeats = repeats
        self._base = base

    def _refill(self) -> list[int]:
        draws = self._rng.integers(
            0, self._lines, size=_BATCH, dtype=np.int64
        )
        if self._repeats > 1:
            draws = np.repeat(draws, self._repeats)
        return (draws + self._base).tolist()

    def footprint_lines(self) -> int:
        return self._lines


# -- pointer chasing ---------------------------------------------------


@dataclass(frozen=True)
class PointerChaseSpec(PatternSpec):
    """A dependent-load chain over a random permutation of ``lines``.

    This is the canonical latency-bound pattern: each address is only
    known once the previous load returns, so phases using it should run
    with ``overlap`` near 1.
    """

    lines: int

    def __post_init__(self) -> None:
        _require_positive("lines", self.lines)

    def footprint_lines(self) -> int:
        return self.lines

    def instantiate(
        self, rng: np.random.Generator, base: int
    ) -> AccessPattern:
        return _PointerChase(rng, self.lines, base)


class _PointerChase(AccessPattern):
    __slots__ = ("_cycle", "_cycle_arr", "_pos", "_n")

    def __init__(self, rng: np.random.Generator, lines: int, base: int):
        # One cycle covering all lines.  The successor chain built by
        # shuffled successor assignment (succ[order[i]] = order[i+1],
        # wrapping) visits the lines in exactly the shuffled ordering,
        # so the emitted address sequence IS that ordering repeated —
        # materialise it once and serve slices, instead of walking a
        # successor table one dependent load at a time.  The simulated
        # semantics are untouched (same addresses, and the *simulated*
        # chain is still dependent — that lives in the phase's
        # ``overlap``, not in how the generator produces the stream).
        order = rng.permutation(lines)
        arr = order.astype(np.int64) + base
        self._cycle = arr.tolist()
        self._cycle_arr = arr
        self._pos = 0
        self._n = lines

    def next_address(self) -> int:
        pos = self._pos
        self._pos = pos + 1 if pos + 1 < self._n else 0
        return self._cycle[pos]

    def next_addresses(self, n: int) -> list[int]:
        cycle = self._cycle
        ln = self._n
        pos = self._pos
        end = pos + n
        if end < ln:
            self._pos = end
            return cycle[pos:end]
        out = cycle[pos:]
        end -= ln
        while end >= ln:
            out += cycle
            end -= ln
        out += cycle[:end]
        self._pos = end
        return out

    def next_addresses_array(self, n: int) -> np.ndarray:
        arr = self._cycle_arr
        ln = self._n
        pos = self._pos
        end = pos + n
        if end < ln:
            self._pos = end
            # Copy: callers may hold the batch across later draws.
            return arr[pos:end].copy()
        out = np.empty(n, dtype=np.int64)
        k = ln - pos
        out[:k] = arr[pos:]
        end -= ln
        while end >= ln:
            out[k:k + ln] = arr
            k += ln
            end -= ln
        out[k:] = arr[:end]
        self._pos = end
        return out

    def footprint_lines(self) -> int:
        return self._n


# -- zipf --------------------------------------------------------------


@dataclass(frozen=True)
class ZipfSpec(PatternSpec):
    """Zipf-distributed references: rank ``i`` has weight 1/(i+1)^alpha.

    Hot ranks are scattered over the address range (random permutation)
    so popularity is decoupled from set index.
    """

    lines: int
    alpha: float = 1.0

    def __post_init__(self) -> None:
        _require_positive("lines", self.lines)
        _require_positive("alpha", self.alpha)

    def footprint_lines(self) -> int:
        return self.lines

    def instantiate(
        self, rng: np.random.Generator, base: int
    ) -> AccessPattern:
        return _Zipf(rng, self.lines, self.alpha, base)


class _Zipf(_BufferedPattern):
    def __init__(
        self, rng: np.random.Generator, lines: int, alpha: float, base: int
    ):
        super().__init__()
        self._rng = rng
        self._base = base
        self._lines = lines
        weights = 1.0 / np.arange(1, lines + 1, dtype=np.float64) ** alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        self._placement = rng.permutation(lines)

    def _refill(self) -> list[int]:
        u = self._rng.random(_BATCH)
        ranks = np.searchsorted(self._cdf, u)
        return (self._placement[ranks] + self._base).tolist()

    def footprint_lines(self) -> int:
        return self._lines


# -- hot/cold ----------------------------------------------------------


@dataclass(frozen=True)
class HotColdSpec(PatternSpec):
    """A hot region of ``hot_lines`` hit with ``hot_fraction`` probability,
    else a uniformly random cold region of ``cold_lines``."""

    hot_lines: int
    cold_lines: int
    hot_fraction: float = 0.9

    def __post_init__(self) -> None:
        _require_positive("hot_lines", self.hot_lines)
        _require_positive("cold_lines", self.cold_lines)
        if not 0.0 < self.hot_fraction < 1.0:
            raise WorkloadError(
                f"hot_fraction must be in (0, 1): {self.hot_fraction}"
            )

    def footprint_lines(self) -> int:
        return self.hot_lines + self.cold_lines

    def instantiate(
        self, rng: np.random.Generator, base: int
    ) -> AccessPattern:
        return _HotCold(
            rng, self.hot_lines, self.cold_lines, self.hot_fraction, base
        )


class _HotCold(_BufferedPattern):
    def __init__(
        self,
        rng: np.random.Generator,
        hot: int,
        cold: int,
        hot_fraction: float,
        base: int,
    ):
        super().__init__()
        self._rng = rng
        self._hot = hot
        self._cold = cold
        self._fraction = hot_fraction
        self._base = base

    def _refill(self) -> list[int]:
        rng = self._rng
        is_hot = rng.random(_BATCH) < self._fraction
        hot_draws = rng.integers(0, self._hot, size=_BATCH, dtype=np.int64)
        cold_draws = self._hot + rng.integers(
            0, self._cold, size=_BATCH, dtype=np.int64
        )
        draws = np.where(is_hot, hot_draws, cold_draws)
        return (draws + self._base).tolist()

    def footprint_lines(self) -> int:
        return self._hot + self._cold


# -- strided scan ------------------------------------------------------


@dataclass(frozen=True)
class StridedScanSpec(PatternSpec):
    """Cyclic walk touching every ``stride``-th line of a region.

    With a power-of-two stride this concentrates pressure on a subset of
    cache sets, modelling bad-stride numeric codes.
    """

    lines: int
    stride: int = 2
    line_repeats: int = 1

    def __post_init__(self) -> None:
        _require_positive("lines", self.lines)
        _require_positive("stride", self.stride)
        _require_positive("line_repeats", self.line_repeats)

    def footprint_lines(self) -> int:
        return (self.lines + self.stride - 1) // self.stride

    def instantiate(
        self, rng: np.random.Generator, base: int
    ) -> AccessPattern:
        return _StridedScan(self.lines, self.stride, self.line_repeats, base)


class _StridedScan(AccessPattern):
    __slots__ = ("_lines", "_stride", "_repeats", "_base", "_pos", "_count")

    def __init__(self, lines: int, stride: int, repeats: int, base: int):
        self._lines = lines
        self._stride = stride
        self._repeats = repeats
        self._base = base
        self._pos = 0
        self._count = 0

    def next_address(self) -> int:
        addr = self._base + self._pos
        self._count += 1
        if self._count >= self._repeats:
            self._count = 0
            self._pos += self._stride
            if self._pos >= self._lines:
                self._pos = 0
        return addr

    def next_addresses(self, n: int) -> list[int]:
        # Positions cycle through ceil(lines/stride) stride multiples;
        # index the next n ticks of that cycle vectorised, as in
        # _SequentialStream.
        repeats = self._repeats
        stride = self._stride
        npos = (self._lines + stride - 1) // stride
        period = npos * repeats
        start = (self._pos // stride) * repeats + self._count
        ticks = (start + np.arange(n, dtype=np.int64)) % period
        end = (start + n) % period
        self._pos = (end // repeats) * stride
        self._count = end % repeats
        return ((ticks // repeats) * stride + self._base).tolist()

    def next_addresses_array(self, n: int) -> np.ndarray:
        repeats = self._repeats
        stride = self._stride
        npos = (self._lines + stride - 1) // stride
        period = npos * repeats
        start = (self._pos // stride) * repeats + self._count
        ticks = (start + np.arange(n, dtype=np.int64)) % period
        end = (start + n) % period
        self._pos = (end // repeats) * stride
        self._count = end % repeats
        return (ticks // repeats) * stride + self._base

    def footprint_lines(self) -> int:
        return (self._lines + self._stride - 1) // self._stride


# -- mixture -----------------------------------------------------------


@dataclass(frozen=True)
class MixtureSpec(PatternSpec):
    """Probabilistic blend of component patterns.

    ``components`` is a tuple of ``(weight, spec)`` pairs; each access is
    drawn from one component with probability proportional to its
    weight.  Components receive disjoint address sub-ranges.
    """

    components: tuple[tuple[float, PatternSpec], ...]

    def __post_init__(self) -> None:
        if len(self.components) < 2:
            raise WorkloadError("a mixture needs at least two components")
        for weight, _spec in self.components:
            _require_positive("mixture weight", weight)

    def footprint_lines(self) -> int:
        return sum(spec.footprint_lines() for _w, spec in self.components)

    def instantiate(
        self, rng: np.random.Generator, base: int
    ) -> AccessPattern:
        parts: list[AccessPattern] = []
        offset = base
        weights = []
        for weight, spec in self.components:
            parts.append(spec.instantiate(rng, offset))
            offset += spec.footprint_lines()
            weights.append(weight)
        return _Mixture(rng, parts, weights)


class _Mixture(AccessPattern):
    __slots__ = ("_rng", "_parts", "_probs", "_choices", "_index")

    def __init__(
        self,
        rng: np.random.Generator,
        parts: list[AccessPattern],
        weights: list[float],
    ):
        self._rng = rng
        self._parts = parts
        total = sum(weights)
        self._probs = [w / total for w in weights]
        self._choices: list[int] = []
        self._index = 0

    def next_address(self) -> int:
        i = self._index
        choices = self._choices
        if i >= len(choices):
            choices = self._choices = self._rng.choice(
                len(self._parts), size=_BATCH, p=self._probs
            ).tolist()
            i = 0
        self._index = i + 1
        return self._parts[choices[i]].next_address()

    def footprint_lines(self) -> int:
        return sum(p.footprint_lines() for p in self._parts)


# -- explicit trace replay ----------------------------------------------


@dataclass(frozen=True)
class TraceSpec(PatternSpec):
    """Replay an explicit line-address trace (cyclically).

    The bridge for users with real traces: any iterable of line numbers
    (e.g. from a binary-instrumentation tool, de-duplicated to cache
    lines) becomes a workload the simulator can co-locate and CAER can
    manage.  Addresses are offsets from the workload's base.
    """

    trace: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.trace:
            raise WorkloadError("an empty trace cannot be replayed")
        if any(a < 0 for a in self.trace):
            raise WorkloadError("trace addresses must be non-negative")

    def footprint_lines(self) -> int:
        return max(self.trace) + 1

    def instantiate(
        self, rng: np.random.Generator, base: int
    ) -> AccessPattern:
        return _TraceReplay(self.trace, base)


class _TraceReplay(AccessPattern):
    __slots__ = ("_addrs", "_index", "_footprint")

    def __init__(self, trace: tuple[int, ...], base: int):
        # Rebase once so replay serves precomputed absolute addresses.
        self._addrs = [base + a for a in trace]
        self._index = 0
        self._footprint = max(trace) + 1

    def next_address(self) -> int:
        addr = self._addrs[self._index]
        self._index += 1
        if self._index >= len(self._addrs):
            self._index = 0
        return addr

    def next_addresses(self, n: int) -> list[int]:
        addrs = self._addrs
        length = len(addrs)
        i = self._index
        out: list[int] = []
        while n > 0:
            take = min(n, length - i)
            out.extend(addrs[i:i + take])
            i += take
            if i >= length:
                i = 0
            n -= take
        self._index = i
        return out

    def footprint_lines(self) -> int:
        return self._footprint
