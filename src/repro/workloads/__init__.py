"""Synthetic workload models.

CAER observes applications exclusively through per-period PMU samples,
so a workload model only has to reproduce an application's *memory
behaviour*: its working-set size, access-pattern mix, memory intensity,
memory-level parallelism, and phase structure.
:mod:`repro.workloads.spec2006` provides models of the 21 C/C++ SPEC
CPU2006 benchmarks calibrated against the paper's Figures 1 and 2;
:mod:`repro.workloads.synthetic` provides parametrised microbenchmarks
for unit tests and ablations.
"""

from .base import (
    AccessPattern,
    PatternSpec,
    PhaseSpec,
    RuntimePhase,
    WorkloadInstance,
    WorkloadSpec,
)
from .patterns import (
    HotColdSpec,
    MixtureSpec,
    PointerChaseSpec,
    SequentialStreamSpec,
    StridedScanSpec,
    TraceSpec,
    UniformRandomSpec,
    ZipfSpec,
)
from .spec2006 import (
    SPEC2006_CPP,
    benchmark,
    benchmark_names,
    resolve_benchmark_name,
    spec_registry,
)
from .synthetic import compute_bound, pointer_chaser, streamer, zipf_worker

__all__ = [
    "AccessPattern",
    "PatternSpec",
    "PhaseSpec",
    "RuntimePhase",
    "WorkloadInstance",
    "WorkloadSpec",
    "SequentialStreamSpec",
    "UniformRandomSpec",
    "PointerChaseSpec",
    "ZipfSpec",
    "HotColdSpec",
    "MixtureSpec",
    "StridedScanSpec",
    "TraceSpec",
    "SPEC2006_CPP",
    "benchmark",
    "benchmark_names",
    "resolve_benchmark_name",
    "spec_registry",
    "streamer",
    "pointer_chaser",
    "zipf_worker",
    "compute_bound",
]
