"""Parametrised synthetic microbenchmarks.

These are the controllable workloads used by unit/property tests, the
analytical-model cross-validation, and the ablation benches: unlike the
SPEC models they expose their knobs directly, so a test can dial in
"streams exactly 2x the L3" or "compute bound, never leaves L1".
"""

from __future__ import annotations

from .base import PhaseSpec, WorkloadSpec
from .patterns import (
    PointerChaseSpec,
    SequentialStreamSpec,
    UniformRandomSpec,
    ZipfSpec,
)


def streamer(
    lines: int,
    instructions: float = 200_000.0,
    mem_ratio: float = 0.4,
    line_repeats: int = 4,
    overlap: float = 3.0,
    name: str = "synthetic.streamer",
) -> WorkloadSpec:
    """A pure streaming workload sweeping ``lines`` lines cyclically."""
    phase = PhaseSpec(
        pattern=SequentialStreamSpec(lines=lines, line_repeats=line_repeats),
        duration_instructions=instructions,
        mem_ratio=mem_ratio,
        base_cpi=0.4,
        overlap=overlap,
    )
    return WorkloadSpec(name=name, phases=(phase,),
                        total_instructions=instructions)


def pointer_chaser(
    lines: int,
    instructions: float = 200_000.0,
    mem_ratio: float = 0.25,
    name: str = "synthetic.chaser",
) -> WorkloadSpec:
    """A latency-bound pointer chase over ``lines`` lines (overlap 1)."""
    phase = PhaseSpec(
        pattern=PointerChaseSpec(lines=lines),
        duration_instructions=instructions,
        mem_ratio=mem_ratio,
        base_cpi=0.4,
        overlap=1.0,
    )
    return WorkloadSpec(name=name, phases=(phase,),
                        total_instructions=instructions)


def zipf_worker(
    lines: int,
    alpha: float = 1.0,
    instructions: float = 200_000.0,
    mem_ratio: float = 0.2,
    name: str = "synthetic.zipf",
) -> WorkloadSpec:
    """Skewed-reuse references over ``lines`` lines."""
    phase = PhaseSpec(
        pattern=ZipfSpec(lines=lines, alpha=alpha),
        duration_instructions=instructions,
        mem_ratio=mem_ratio,
        base_cpi=0.45,
        overlap=1.5,
    )
    return WorkloadSpec(name=name, phases=(phase,),
                        total_instructions=instructions)


def compute_bound(
    instructions: float = 200_000.0,
    name: str = "synthetic.compute",
) -> WorkloadSpec:
    """An almost memory-free workload (tiny L1-resident footprint)."""
    phase = PhaseSpec(
        pattern=UniformRandomSpec(lines=8),
        duration_instructions=instructions,
        mem_ratio=0.02,
        base_cpi=0.5,
        overlap=1.0,
    )
    return WorkloadSpec(name=name, phases=(phase,),
                        total_instructions=instructions)


def phased_worker(
    heavy_lines: int,
    light_lines: int,
    heavy_instructions: float = 40_000.0,
    light_instructions: float = 40_000.0,
    total_instructions: float = 400_000.0,
    name: str = "synthetic.phased",
) -> WorkloadSpec:
    """Alternates a heavy streaming phase with a light reuse phase.

    Handy for exercising phase-tracking logic (detectors must follow the
    victim's pressure as it comes and goes).
    """
    heavy = PhaseSpec(
        pattern=SequentialStreamSpec(lines=heavy_lines, line_repeats=4),
        duration_instructions=heavy_instructions,
        mem_ratio=0.35,
        base_cpi=0.4,
        overlap=2.5,
    )
    light = PhaseSpec(
        pattern=ZipfSpec(lines=light_lines, alpha=1.2),
        duration_instructions=light_instructions,
        mem_ratio=0.12,
        base_cpi=0.5,
        overlap=1.5,
    )
    return WorkloadSpec(name=name, phases=(heavy, light),
                        total_instructions=total_instructions)
