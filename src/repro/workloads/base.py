"""Workload model core types.

A workload is described declaratively by a :class:`WorkloadSpec` — an
immutable recipe of :class:`PhaseSpec` entries, each pairing an access
pattern with execution parameters — and *instantiated* per run into a
:class:`WorkloadInstance`, which owns mutable cursors (instructions
retired, current phase, pattern state) and is what the simulated core
actually drives.

Execution parameters per phase:

``mem_ratio``
    memory accesses per instruction (cache-line granularity).  A value
    of 0.25 means one access every four instructions.
``base_cpi``
    pipeline cycles per instruction when every access hits L1.
``overlap``
    memory-level parallelism: how many outstanding misses the phase
    overlaps on average.  Stall cycles are divided by this, so streaming
    phases (overlap 3-4) hide much of their miss latency while pointer
    chasing (overlap 1) exposes all of it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError


class AccessPattern(ABC):
    """A stateful generator of cache-line addresses."""

    @abstractmethod
    def next_address(self) -> int:
        """Produce the next line address (hot path)."""

    def next_addresses(self, n: int) -> list[int]:
        """Produce the next ``n`` line addresses as a list.

        The returned stream is exactly what ``n`` consecutive
        :meth:`next_address` calls would yield; subclasses override this
        to amortise per-address call overhead (the simulator's core loop
        consumes addresses in batches).  The caller owns the list.
        """
        next_address = self.next_address
        return [next_address() for _ in range(n)]

    def next_addresses_array(self, n: int) -> np.ndarray:
        """Produce the next ``n`` line addresses as an int64 array.

        The same stream :meth:`next_addresses` would yield, in ndarray
        form for the vector kernel.  Patterns that compute their
        batches in numpy anyway override this to skip the ``tolist``
        round-trip; everything else converts the list batch.
        """
        return np.asarray(self.next_addresses(n), dtype=np.int64)

    def footprint_lines(self) -> int:
        """Number of distinct lines the pattern can touch (if known)."""
        return 0


class PatternSpec(ABC):
    """Immutable recipe for an :class:`AccessPattern`."""

    @abstractmethod
    def instantiate(
        self, rng: np.random.Generator, base: int
    ) -> AccessPattern:
        """Build a fresh pattern addressing lines from ``base`` upward."""

    @abstractmethod
    def footprint_lines(self) -> int:
        """Distinct lines the instantiated pattern will touch."""


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a workload: a pattern plus execution parameters.

    ``duration_instructions`` is how many instructions the phase lasts
    before the workload moves to the next phase (phases cycle until the
    workload's total instruction budget runs out).
    """

    pattern: PatternSpec
    duration_instructions: float
    mem_ratio: float = 0.25
    base_cpi: float = 0.5
    overlap: float = 1.5
    #: fraction of accesses that are stores (drives writeback traffic
    #: when the machine models it; ~0.3 is typical of SPEC codes)
    store_ratio: float = 0.3

    def __post_init__(self) -> None:
        if self.duration_instructions <= 0:
            raise WorkloadError(
                f"phase duration must be positive: {self.duration_instructions}"
            )
        if not 0.0 < self.mem_ratio <= 1.0:
            raise WorkloadError(
                f"mem_ratio must be in (0, 1]: {self.mem_ratio}"
            )
        if self.base_cpi <= 0:
            raise WorkloadError(f"base_cpi must be positive: {self.base_cpi}")
        if self.overlap < 1.0:
            raise WorkloadError(f"overlap must be >= 1: {self.overlap}")
        if not 0.0 <= self.store_ratio <= 1.0:
            raise WorkloadError(
                f"store_ratio must be in [0, 1]: {self.store_ratio}"
            )


class RuntimePhase:
    """A :class:`PhaseSpec` instantiated for one run.

    Holds the live pattern and the derived per-access constants the core
    model's inner loop consumes.  The core draws addresses in batches
    through :meth:`take_addresses`; a batch cut short by an expiring
    cycle budget is returned through :meth:`push_back` so the observed
    address stream stays identical to per-access generation.
    """

    __slots__ = (
        "spec",
        "pattern",
        "instructions_per_access",
        "compute_cycles_per_access",
        "overlap",
        "store_ratio",
        "_pending",
        "_pending_pos",
        "_pending_arr",
        "_pending_arr_pos",
    )

    def __init__(self, spec: PhaseSpec, pattern: AccessPattern):
        self.spec = spec
        self.pattern = pattern
        self.instructions_per_access = 1.0 / spec.mem_ratio
        self.compute_cycles_per_access = spec.base_cpi / spec.mem_ratio
        self.overlap = spec.overlap
        self.store_ratio = spec.store_ratio
        self._pending: list[int] = []
        self._pending_pos = 0
        # Array-form pending (written only by the vector kernel's
        # push-back).  Always logically *ahead* of the list pending:
        # an array push-back returns the unconsumed suffix of a batch
        # whose addresses were already drawn past the list cursor.
        self._pending_arr: np.ndarray | None = None
        self._pending_arr_pos = 0

    def take_addresses(self, n: int) -> list[int]:
        """Up to ``n`` addresses, serving pushed-back ones first."""
        arr = self._pending_arr
        if arr is not None:
            # A scalar path took over after a vector push-back: fold
            # the array pending into the list pending once, in front.
            head = arr[self._pending_arr_pos:].tolist()
            self._pending_arr = None
            self._pending_arr_pos = 0
            if self._pending:
                head.extend(self._pending[self._pending_pos:])
            self._pending = head
            self._pending_pos = 0
        pend = self._pending
        if not pend:
            return self.pattern.next_addresses(n)
        pos = self._pending_pos
        avail = len(pend) - pos
        if avail > n:
            self._pending_pos = pos + n
            return pend[pos:pos + n]
        self._pending = []
        self._pending_pos = 0
        head = pend[pos:] if pos else pend
        if avail == n:
            return head
        # Extend in place instead of concatenating: the bulk kernel
        # consumes whole batches, so avoiding the intermediate copy
        # matters on the refill path.
        head.extend(self.pattern.next_addresses(n - avail))
        return head

    def take_addresses_array(self, n: int) -> np.ndarray:
        """Up to ``n`` addresses as an int64 array (vector-kernel path).

        The stream is identical to :meth:`take_addresses`.  Array
        pending (a vector push-back) is served first as zero-copy
        views; list pending (a scalar push-back) next, converted; the
        pattern refills the rest.
        """
        arr = self._pending_arr
        if arr is not None:
            pos = self._pending_arr_pos
            avail = arr.shape[0] - pos
            if avail > n:
                self._pending_arr_pos = pos + n
                return arr[pos:pos + n]
            self._pending_arr = None
            self._pending_arr_pos = 0
            head = arr[pos:] if pos else arr
            if avail == n:
                return head
            if self._pending:
                rest = np.asarray(
                    self.take_addresses(n - avail), dtype=np.int64
                )
            else:
                rest = self.pattern.next_addresses_array(n - avail)
            return np.concatenate((head, rest))
        if not self._pending:
            return self.pattern.next_addresses_array(n)
        return np.asarray(self.take_addresses(n), dtype=np.int64)

    def push_back(self, addrs: list[int], start: int) -> None:
        """Return ``addrs[start:]`` (unconsumed) to the stream front.

        ``addrs`` must be the most recent :meth:`take_addresses` result;
        its consumed prefix ``addrs[:start]`` stays consumed.
        """
        if start >= len(addrs):
            return
        if self._pending:
            # The batch was a window into the pending list; rewinding the
            # cursor by the unconsumed count restores exactly that suffix.
            self._pending_pos -= len(addrs) - start
        else:
            self._pending = addrs
            self._pending_pos = start

    def push_back_array(self, addrs: np.ndarray, start: int) -> None:
        """Array twin of :meth:`push_back`, storing views not copies.

        ``addrs`` must be the most recent :meth:`take_addresses_array`
        result.  When that batch was a window into the array pending,
        rewinding the cursor restores the suffix; otherwise the suffix
        view becomes the new array pending (served before any list
        pending, whose cursor already advanced past these addresses).
        """
        if start >= addrs.shape[0]:
            return
        if self._pending_arr is not None:
            self._pending_arr_pos -= addrs.shape[0] - start
        else:
            self._pending_arr = addrs
            self._pending_arr_pos = start


@dataclass(frozen=True)
class WorkloadSpec:
    """Immutable description of a complete workload."""

    name: str
    phases: tuple[PhaseSpec, ...]
    total_instructions: float

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"workload {self.name!r} has no phases")
        if self.total_instructions <= 0:
            raise WorkloadError(
                f"workload {self.name!r} needs a positive instruction "
                f"budget, got {self.total_instructions}"
            )

    def footprint_lines(self) -> int:
        """Peak distinct-line footprint across phases."""
        return max(p.pattern.footprint_lines() for p in self.phases)

    def instantiate(
        self, seed: int = 0, base: int = 0
    ) -> "WorkloadInstance":
        """Create a runnable instance with its own RNG stream."""
        return WorkloadInstance(self, seed=seed, base=base)


class WorkloadInstance:
    """Mutable execution state of one workload run.

    The simulated core drives this through three methods:
    :meth:`current_phase`, :meth:`accesses_left_in_phase`, and
    :meth:`account` — see :meth:`repro.arch.core.Core.run`.
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0, base: int = 0):
        self.spec = spec
        self.base = base
        rng = np.random.default_rng(seed)
        # Patterns persist across phase revisits, modelling a program
        # returning to a data structure it already walked (warm state).
        self._phases = [
            RuntimePhase(p, p.pattern.instantiate(rng, base))
            for p in spec.phases
        ]
        self._phase_index = 0
        self._phase_remaining = spec.phases[0].duration_instructions
        self._total_remaining = spec.total_instructions
        self.instructions_retired = 0.0
        self.finished = False

    def current_phase(self) -> RuntimePhase:
        """The phase the next access belongs to."""
        return self._phases[self._phase_index]

    def accesses_left_in_phase(self) -> int:
        """Upper bound on accesses before a phase/finish boundary.

        Always at least 1 for an unfinished workload so the core's
        chunk loop makes progress.
        """
        if self.finished:
            return 0
        phase = self._phases[self._phase_index]
        remaining = min(self._phase_remaining, self._total_remaining)
        return max(1, math.ceil(remaining / phase.instructions_per_access))

    def account(self, accesses: int) -> None:
        """Record that ``accesses`` accesses of the current phase ran.

        Advances instruction counters, rotates to the next phase at a
        phase boundary, and marks the workload finished when the total
        instruction budget is exhausted.
        """
        if accesses < 0:
            raise WorkloadError(f"negative access count: {accesses}")
        if accesses == 0 or self.finished:
            return
        phase = self._phases[self._phase_index]
        instructions = accesses * phase.instructions_per_access
        self.instructions_retired += instructions
        self._phase_remaining -= instructions
        self._total_remaining -= instructions
        if self._total_remaining <= 1e-9:
            self.finished = True
            return
        if self._phase_remaining <= 1e-9:
            self._phase_index = (self._phase_index + 1) % len(self._phases)
            self._phase_remaining = (
                self._phases[self._phase_index].spec.duration_instructions
            )

    @property
    def instructions_remaining(self) -> float:
        """Instructions left before the budget is exhausted."""
        return max(0.0, self._total_remaining)

    @property
    def progress(self) -> float:
        """Fraction of the instruction budget retired, in [0, 1]."""
        return min(1.0, self.instructions_retired / self.spec.total_instructions)

    def __repr__(self) -> str:
        return (
            f"WorkloadInstance({self.spec.name!r}, "
            f"progress={self.progress:.2%}, finished={self.finished})"
        )
