"""Models of the 21 C/C++ SPEC CPU2006 benchmarks used by the paper.

The paper's evaluation (§6.1) runs the C/C++ subset of SPEC CPU2006 on
ref inputs to completion, with ``470.lbm`` as the batch contender.  CAER
sees a benchmark only through its per-period LLC-miss and
instruction-retirement counts, so each model here reproduces the
benchmark's *memory personality*:

* the working set relative to the shared L3 (the paper's i7 920 has an
  8 MB L3; all sizes below are fractions of the configured L3 so the
  models track the machine scale),
* the dominant access pattern,
* memory intensity (accesses per instruction) and memory-level
  parallelism (stall overlap),
* phase structure, for the benchmarks whose time-varying behaviour the
  paper highlights (Figure 3 shows xalancbmk's and mcf's LLC-miss
  phases).

Contention sensitivity arises from three distinct mechanisms, and the
models compose them deliberately:

* a **reuse region** (uniform-random references over a region around L3
  capacity) holds cache that a streaming neighbour can steal — this is
  what makes a benchmark *sensitive*;
* a **cold walk** (a pointer chase or stream far beyond L3) produces a
  high baseline LLC-miss volume that contention cannot increase much —
  under LRU a cyclic walk larger than the cache has no reuse at all;
* **bandwidth appetite** (streaming with low spatial reuse) couples
  co-runners through the memory channel's queueing delay, the dominant
  effect for streaming pairs such as lbm-with-lbm.

Parameter values were calibrated against the shapes of the paper's
Figures 1 and 2: benchmarks the paper shows suffering >~25% slowdown
next to lbm (mcf, lbm, xalancbmk, soplex, sphinx3, libquantum, milc,
omnetpp) carry large reuse regions and/or bandwidth appetite, while the
insensitive ones (namd, povray, hmmer, sjeng, gromacs, calculix,
gobmk, perlbench) fit their private caches or a small L3 slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import UnknownBenchmarkError
from .base import PhaseSpec, WorkloadSpec
from .patterns import (
    HotColdSpec,
    MixtureSpec,
    PointerChaseSpec,
    SequentialStreamSpec,
    UniformRandomSpec,
    ZipfSpec,
)

#: L3 line capacity all working-set fractions below refer to.  This is
#: the *scaled* default machine's L3 (8192 lines); pass the actual
#: machine's capacity to :func:`benchmark` when running other scales.
DEFAULT_L3_LINES = 8192

#: Reference instruction budget of one run at length=1.0 (sim-scaled).
#: Each benchmark scales this by its measured solo instructions-per-
#: period so every model runs for a comparable number of probe periods.
BASE_INSTRUCTIONS = 1_000_000.0


@dataclass(frozen=True)
class BenchmarkInfo:
    """Registry entry: builder plus descriptive metadata."""

    name: str
    suite: str  # "int" or "fp"
    description: str
    build: Callable[[int, float], WorkloadSpec]


_REGISTRY: dict[str, BenchmarkInfo] = {}


def _register(name: str, suite: str, description: str):
    def decorator(build: Callable[[int, float], WorkloadSpec]):
        _REGISTRY[name] = BenchmarkInfo(name, suite, description, build)
        return build

    return decorator


def _spec(name: str, phases: list[PhaseSpec], budget: float) -> WorkloadSpec:
    return WorkloadSpec(
        name=name, phases=tuple(phases), total_instructions=budget
    )


def _lines(l3: int, fraction: float, floor: int = 32) -> int:
    """A working-set size as a fraction of the L3, with a floor."""
    return max(floor, int(fraction * l3))


# ----------------------------------------------------------------------
# SPEC CINT2006 (C/C++)
# ----------------------------------------------------------------------


@_register("400.perlbench", "int", "Perl interpreter: skewed reuse over a "
           "moderate heap, mostly private-cache resident")
def _perlbench(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=ZipfSpec(lines=_lines(l3, 0.18), alpha=1.3),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.18,
        base_cpi=0.45,
        overlap=1.6,
    )
    return _spec("400.perlbench", [phase], 33.0 * BASE_INSTRUCTIONS * length)


@_register("401.bzip2", "int", "Block-sorting compression: streaming "
           "buffers plus random block references, modest L3 slice")
def _bzip2(l3: int, length: float) -> WorkloadSpec:
    pattern = MixtureSpec(
        components=(
            (0.50, SequentialStreamSpec(lines=_lines(l3, 0.22),
                                        line_repeats=3)),
            (0.50, UniformRandomSpec(lines=_lines(l3, 0.22))),
        )
    )
    phase = PhaseSpec(
        pattern=pattern,
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.22,
        base_cpi=0.45,
        overlap=2.0,
    )
    return _spec("401.bzip2", [phase], 13.0 * BASE_INSTRUCTIONS * length)


@_register("403.gcc", "int", "Optimizing compiler: skewed IR reuse with "
           "periodic large sweeps over pass data")
def _gcc(l3: int, length: float) -> WorkloadSpec:
    hot = PhaseSpec(
        pattern=MixtureSpec(
            components=(
                (0.90, ZipfSpec(lines=_lines(l3, 0.28), alpha=1.1)),
                (0.10, UniformRandomSpec(lines=_lines(l3, 0.10))),
            )
        ),
        duration_instructions=max(0.05, 2.0 * length) * BASE_INSTRUCTIONS,
        mem_ratio=0.22,
        base_cpi=0.5,
        overlap=1.6,
    )
    sweep = PhaseSpec(
        pattern=SequentialStreamSpec(lines=_lines(l3, 0.45), line_repeats=4),
        duration_instructions=max(0.02, 0.7 * length) * BASE_INSTRUCTIONS,
        mem_ratio=0.26,
        base_cpi=0.5,
        overlap=2.2,
    )
    return _spec("403.gcc", [hot, sweep], 11.0 * BASE_INSTRUCTIONS * length)


@_register("429.mcf", "int", "Network simplex: random references over an "
           "arc array around L3 capacity plus cold graph walks, phased "
           "with hot bursts — the paper's most sensitive benchmark")
def _mcf(l3: int, length: float) -> WorkloadSpec:
    heavy = PhaseSpec(
        pattern=MixtureSpec(
            components=(
                (0.26, UniformRandomSpec(lines=_lines(l3, 0.45))),
                (0.15, PointerChaseSpec(lines=_lines(l3, 2.0, floor=128))),
                (0.59, ZipfSpec(lines=_lines(l3, 0.10), alpha=1.0)),
            )
        ),
        duration_instructions=max(0.02, 0.35 * length) * BASE_INSTRUCTIONS,
        mem_ratio=0.30,
        base_cpi=0.4,
        overlap=1.7,
    )
    light = PhaseSpec(
        pattern=ZipfSpec(lines=_lines(l3, 0.10), alpha=1.1),
        duration_instructions=max(0.02, 0.30 * length) * BASE_INSTRUCTIONS,
        mem_ratio=0.20,
        base_cpi=0.4,
        overlap=1.4,
    )
    return _spec("429.mcf", [heavy, light], 2.6 * BASE_INSTRUCTIONS * length)


@_register("445.gobmk", "int", "Go engine: board-pattern lookups with "
           "strong reuse, small footprint")
def _gobmk(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=ZipfSpec(lines=_lines(l3, 0.15), alpha=1.3),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.15,
        base_cpi=0.5,
        overlap=1.6,
    )
    return _spec("445.gobmk", [phase], 36.0 * BASE_INSTRUCTIONS * length)


@_register("456.hmmer", "int", "Profile HMM search: tight streaming over "
           "L2-resident score matrices")
def _hmmer(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=SequentialStreamSpec(lines=_lines(l3, 0.04), line_repeats=6),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.30,
        base_cpi=0.4,
        overlap=2.5,
    )
    return _spec("456.hmmer", [phase], 36.0 * BASE_INSTRUCTIONS * length)


@_register("458.sjeng", "int", "Chess engine: hash-table probes over a "
           "private-cache-sized transposition table")
def _sjeng(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=UniformRandomSpec(lines=_lines(l3, 0.05)),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.12,
        base_cpi=0.5,
        overlap=1.5,
    )
    return _spec("458.sjeng", [phase], 22.0 * BASE_INSTRUCTIONS * length)


@_register("462.libquantum", "int", "Quantum simulator: pure streaming "
           "over a register vector twice the L3 — bandwidth bound")
def _libquantum(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=SequentialStreamSpec(lines=_lines(l3, 2.0, floor=128),
                                     line_repeats=8),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.35,
        base_cpi=0.35,
        overlap=3.5,
    )
    return _spec("462.libquantum", [phase],
                 13.0 * BASE_INSTRUCTIONS * length)


@_register("464.h264ref", "int", "Video encoder: reference-frame streaming "
           "with motion-search reuse, mostly L2-resident")
def _h264ref(l3: int, length: float) -> WorkloadSpec:
    pattern = MixtureSpec(
        components=(
            (0.55, SequentialStreamSpec(lines=_lines(l3, 0.08),
                                       line_repeats=4)),
            (0.25, UniformRandomSpec(lines=_lines(l3, 0.15))),
            (0.20, ZipfSpec(lines=_lines(l3, 0.10), alpha=1.1)),
        )
    )
    phase = PhaseSpec(
        pattern=pattern,
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.20,
        base_cpi=0.45,
        overlap=2.0,
    )
    return _spec("464.h264ref", [phase], 18.0 * BASE_INSTRUCTIONS * length)


@_register("471.omnetpp", "int", "Discrete-event simulator: event-heap "
           "references around L3 capacity plus cold list walks")
def _omnetpp(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=MixtureSpec(
            components=(
                (0.20, UniformRandomSpec(lines=_lines(l3, 0.32))),
                (0.20, PointerChaseSpec(lines=_lines(l3, 1.3, floor=128))),
                (0.60, ZipfSpec(lines=_lines(l3, 0.08), alpha=1.0)),
            )
        ),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.24,
        base_cpi=0.45,
        overlap=1.85,
    )
    return _spec("471.omnetpp", [phase], 3.6 * BASE_INSTRUCTIONS * length)


@_register("473.astar", "int", "Path-finding: map references around half "
           "the L3 with hot open-list reuse")
def _astar(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=MixtureSpec(
            components=(
                (0.25, UniformRandomSpec(lines=_lines(l3, 0.22))),
                (0.75, ZipfSpec(lines=_lines(l3, 0.12), alpha=1.05)),
            )
        ),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.20,
        base_cpi=0.45,
        overlap=1.5,
    )
    return _spec("473.astar", [phase], 12.0 * BASE_INSTRUCTIONS * length)


@_register("483.xalancbmk", "int", "XSLT processor: alternating DOM-walk "
           "bursts (heavy LLC missing) and quiet string phases — the "
           "spiky benchmark of the paper's Figure 3")
def _xalancbmk(l3: int, length: float) -> WorkloadSpec:
    walk = PhaseSpec(
        pattern=MixtureSpec(
            components=(
                (0.26, UniformRandomSpec(lines=_lines(l3, 0.42))),
                (0.25, PointerChaseSpec(lines=_lines(l3, 1.5, floor=128))),
                (0.49, ZipfSpec(lines=_lines(l3, 0.06), alpha=1.1)),
            )
        ),
        duration_instructions=max(0.02, 0.30 * length) * BASE_INSTRUCTIONS,
        mem_ratio=0.26,
        base_cpi=0.45,
        overlap=1.7,
    )
    quiet = PhaseSpec(
        pattern=ZipfSpec(lines=_lines(l3, 0.08), alpha=1.2),
        duration_instructions=max(0.03, 0.55 * length) * BASE_INSTRUCTIONS,
        mem_ratio=0.16,
        base_cpi=0.45,
        overlap=1.5,
    )
    return _spec(
        "483.xalancbmk", [walk, quiet], 3.9 * BASE_INSTRUCTIONS * length
    )


# ----------------------------------------------------------------------
# SPEC CFP2006 (C/C++)
# ----------------------------------------------------------------------


@_register("433.milc", "fp", "Lattice QCD: streaming sweeps over lattice "
           "fields beyond L3 plus gauge-field reuse")
def _milc(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=MixtureSpec(
            components=(
                (0.70, SequentialStreamSpec(lines=_lines(l3, 1.8, floor=128),
                                            line_repeats=6)),
                (0.30, UniformRandomSpec(lines=_lines(l3, 0.3))),
            )
        ),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.30,
        base_cpi=0.4,
        overlap=3.3,
    )
    return _spec("433.milc", [phase], 10.0 * BASE_INSTRUCTIONS * length)


@_register("435.gromacs", "fp", "Molecular dynamics: hot neighbour lists "
           "with a small cold tail, private-cache friendly")
def _gromacs(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=HotColdSpec(
            hot_lines=_lines(l3, 0.04),
            cold_lines=_lines(l3, 0.15),
            hot_fraction=0.93,
        ),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.18,
        base_cpi=0.45,
        overlap=2.0,
    )
    return _spec("435.gromacs", [phase], 21.0 * BASE_INSTRUCTIONS * length)


@_register("444.namd", "fp", "Molecular dynamics: tiled force loops, tiny "
           "resident footprint — the paper's insensitive example")
def _namd(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=SequentialStreamSpec(lines=_lines(l3, 0.05), line_repeats=8),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.22,
        base_cpi=0.4,
        overlap=2.5,
    )
    return _spec("444.namd", [phase], 50.0 * BASE_INSTRUCTIONS * length)


@_register("447.dealII", "fp", "Finite elements: matrix sweeps blended "
           "with indexed reuse, moderate L3 pressure")
def _dealii(l3: int, length: float) -> WorkloadSpec:
    pattern = MixtureSpec(
        components=(
            (0.50, SequentialStreamSpec(lines=_lines(l3, 0.12),
                                        line_repeats=5)),
            (0.15, UniformRandomSpec(lines=_lines(l3, 0.14))),
            (0.35, ZipfSpec(lines=_lines(l3, 0.10), alpha=1.15)),
        )
    )
    phase = PhaseSpec(
        pattern=pattern,
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.20,
        base_cpi=0.45,
        overlap=2.1,
    )
    return _spec("447.dealII", [phase], 18.0 * BASE_INSTRUCTIONS * length)


@_register("450.soplex", "fp", "Simplex LP solver: sparse-matrix streaming "
           "past L3 plus scattered column reuse")
def _soplex(l3: int, length: float) -> WorkloadSpec:
    pattern = MixtureSpec(
        components=(
            (0.55, SequentialStreamSpec(lines=_lines(l3, 1.2, floor=128),
                                        line_repeats=3)),
            (0.40, UniformRandomSpec(lines=_lines(l3, 0.25))),
            (0.05, ZipfSpec(lines=_lines(l3, 0.05), alpha=1.2)),
        )
    )
    phase = PhaseSpec(
        pattern=pattern,
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.28,
        base_cpi=0.4,
        overlap=2.1,
    )
    return _spec("450.soplex", [phase], 5.2 * BASE_INSTRUCTIONS * length)


@_register("453.povray", "fp", "Ray tracer: compute bound, scene data "
           "essentially L1/L2 resident")
def _povray(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=ZipfSpec(lines=_lines(l3, 0.02), alpha=1.3),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.10,
        base_cpi=0.55,
        overlap=1.5,
    )
    return _spec("453.povray", [phase], 57.0 * BASE_INSTRUCTIONS * length)


@_register("454.calculix", "fp", "Structural FEM: small tiled kernels "
           "with bursty but cache-resident data")
def _calculix(l3: int, length: float) -> WorkloadSpec:
    pattern = MixtureSpec(
        components=(
            (0.6, SequentialStreamSpec(lines=_lines(l3, 0.06),
                                       line_repeats=6)),
            (0.4, ZipfSpec(lines=_lines(l3, 0.04), alpha=1.1)),
        )
    )
    phase = PhaseSpec(
        pattern=pattern,
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.15,
        base_cpi=0.45,
        overlap=1.8,
    )
    return _spec("454.calculix", [phase], 38.0 * BASE_INSTRUCTIONS * length)


@_register("470.lbm", "fp", "Lattice-Boltzmann: relentless streaming over "
           "a grid several times the L3 — the paper's batch contender")
def _lbm(l3: int, length: float) -> WorkloadSpec:
    phase = PhaseSpec(
        pattern=SequentialStreamSpec(lines=_lines(l3, 5.0, floor=256),
                                     line_repeats=4),
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.40,
        base_cpi=0.4,
        overlap=3.5,
    )
    return _spec("470.lbm", [phase], 6.1 * BASE_INSTRUCTIONS * length)


@_register("482.sphinx3", "fp", "Speech recognition: acoustic-model "
           "streaming with search reuse, around L3 capacity")
def _sphinx3(l3: int, length: float) -> WorkloadSpec:
    pattern = MixtureSpec(
        components=(
            (0.64, SequentialStreamSpec(lines=_lines(l3, 1.0, floor=128),
                                        line_repeats=4)),
            (0.36, UniformRandomSpec(lines=_lines(l3, 0.26))),
        )
    )
    phase = PhaseSpec(
        pattern=pattern,
        duration_instructions=BASE_INSTRUCTIONS,
        mem_ratio=0.30,
        base_cpi=0.4,
        overlap=2.6,
    )
    return _spec("482.sphinx3", [phase], 6.8 * BASE_INSTRUCTIONS * length)


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------

#: Benchmark names in the paper's figure order (CINT then CFP).
SPEC2006_CPP: tuple[str, ...] = (
    "400.perlbench",
    "401.bzip2",
    "403.gcc",
    "429.mcf",
    "445.gobmk",
    "456.hmmer",
    "458.sjeng",
    "462.libquantum",
    "464.h264ref",
    "471.omnetpp",
    "473.astar",
    "483.xalancbmk",
    "433.milc",
    "435.gromacs",
    "444.namd",
    "447.dealII",
    "450.soplex",
    "453.povray",
    "454.calculix",
    "470.lbm",
    "482.sphinx3",
)


def spec_registry() -> dict[str, BenchmarkInfo]:
    """All registered benchmark entries, keyed by SPEC name."""
    return dict(_REGISTRY)


def benchmark_names() -> tuple[str, ...]:
    """Names of the modelled benchmarks, in the paper's figure order."""
    return SPEC2006_CPP


def resolve_benchmark_name(name: str) -> str:
    """Canonicalise ``name`` to its full SPEC form (``"mcf"`` ->
    ``"429.mcf"``), raising :class:`UnknownBenchmarkError` otherwise."""
    if name in _REGISTRY:
        return name
    matches = [n for n in _REGISTRY if n.split(".", 1)[-1] == name]
    if len(matches) == 1:
        return matches[0]
    raise UnknownBenchmarkError(name, tuple(sorted(_REGISTRY)))


def benchmark(
    name: str,
    l3_lines: int = DEFAULT_L3_LINES,
    length: float = 1.0,
) -> WorkloadSpec:
    """Build a benchmark model sized for an L3 of ``l3_lines`` lines.

    ``length`` scales the instruction budget (1.0 is the experiment
    harness's default run length; tests use shorter runs).  Accepts both
    full SPEC names (``"429.mcf"``) and bare suffixes (``"mcf"``).
    """
    return _REGISTRY[resolve_benchmark_name(name)].build(l3_lines, length)
