"""Per-core performance monitoring unit (PMU).

The real CAER reads hardware counters through Perfmon2; here the
counters are fed by the simulated core and cache hierarchy.  The
interface mirrors how CAER uses the hardware (§3.2): counters accumulate
for free while the application runs, and a periodic probe *reads and
restarts* them, yielding per-period deltas.

:class:`CorePMU` is the hardware-side counter bank;
:mod:`repro.perfmon` layers the Perfmon2-like session API on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class PMUEvent(str, Enum):
    """Countable events, named after their Nehalem counterparts."""

    CYCLES = "UNHALTED_CORE_CYCLES"
    INSTRUCTIONS_RETIRED = "INSTRUCTIONS_RETIRED"
    LLC_MISSES = "LLC_MISSES"
    LLC_REFERENCES = "LLC_REFERENCES"
    L2_MISSES = "L2_MISSES"
    L1_MISSES = "L1_MISSES"
    BACK_INVALIDATIONS = "L3_BACK_INVALIDATIONS"
    LINES_STOLEN = "L3_LINES_EVICTED_BY_OTHER_CORE"


@dataclass(frozen=True)
class PMUSample:
    """One period's worth of counter deltas for one core.

    This is the unit of information CAER's communication table stores:
    everything the runtime knows about an application, it knows through
    a stream of these samples.
    """

    cycles: float
    instructions: float
    llc_misses: int
    llc_references: int
    l2_misses: int
    l1_misses: int
    back_invalidations: int
    lines_stolen: int

    @property
    def ipc(self) -> float:
        """Instructions retired per cycle during the period."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def llc_miss_rate(self) -> float:
        """LLC misses per LLC reference during the period."""
        if not self.llc_references:
            return 0.0
        return self.llc_misses / self.llc_references

    def get(self, event: PMUEvent) -> float:
        """Read one event's delta by descriptor."""
        mapping = {
            PMUEvent.CYCLES: self.cycles,
            PMUEvent.INSTRUCTIONS_RETIRED: self.instructions,
            PMUEvent.LLC_MISSES: self.llc_misses,
            PMUEvent.LLC_REFERENCES: self.llc_references,
            PMUEvent.L2_MISSES: self.l2_misses,
            PMUEvent.L1_MISSES: self.l1_misses,
            PMUEvent.BACK_INVALIDATIONS: self.back_invalidations,
            PMUEvent.LINES_STOLEN: self.lines_stolen,
        }
        return mapping[event]

    @classmethod
    def zero(cls) -> "PMUSample":
        """An all-zero sample (an idle period)."""
        return cls(0.0, 0.0, 0, 0, 0, 0, 0, 0)


class CorePMU:
    """Counter bank of one core, with read-and-restart semantics."""

    def __init__(self, core: "object", hierarchy_counters: "object"):
        """Bind to a core's cumulative counters.

        ``core`` must expose ``cycles_executed`` and
        ``instructions_retired``; ``hierarchy_counters`` is the core's
        :class:`repro.arch.hierarchy.HierarchyCounters`.
        """
        self._core = core
        self._hier = hierarchy_counters
        self._last = self._snapshot()
        self.reads = 0

    def _snapshot(self) -> tuple[float, float, int, int, int, int, int, int]:
        hier = self._hier
        return (
            self._core.cycles_executed,
            self._core.instructions_retired,
            hier.l3_misses,
            hier.l3_hits + hier.l3_misses,
            hier.l2_misses,
            hier.l1_misses,
            hier.back_invalidations,
            hier.lines_stolen,
        )

    def read(self) -> PMUSample:
        """Return deltas since the previous read and restart counting."""
        now = self._snapshot()
        last = self._last
        self._last = now
        self.reads += 1
        return PMUSample(*(a - b for a, b in zip(now, last)))

    def peek(self) -> PMUSample:
        """Return deltas since the previous read *without* restarting."""
        now = self._snapshot()
        return PMUSample(*(a - b for a, b in zip(now, self._last)))
