"""The core execution model.

Each core runs one process at a time and is modelled as an in-order
engine whose progress is gated by memory stalls:

* every instruction costs the workload's ``base_cpi`` cycles of pipeline
  time (this folds in L1-hit latency, which real pipelines hide);
* every access that misses L1 additionally stalls the core for the extra
  latency of the level that served it, divided by the workload's
  ``overlap`` factor (memory-level parallelism: streaming codes overlap
  several outstanding misses, pointer chasers cannot).

The loop advances one *memory access* at a time — between accesses the
workload retires ``1 / mem_ratio`` instructions — which is what makes a
whole-benchmark simulation tractable in Python while still reproducing
the paper's Figure 3 phenomenon: periods with many LLC misses are
periods with few instructions retired.
"""

from __future__ import annotations

from ..config import MachineConfig
from .hierarchy import CacheHierarchy
from .memory import MainMemory


class Core:
    """One core: executes a process against the shared hierarchy."""

    def __init__(
        self,
        core_id: int,
        machine: MachineConfig,
        hierarchy: CacheHierarchy,
        memory: MainMemory,
    ):
        self.core_id = core_id
        self.machine = machine
        self.hierarchy = hierarchy
        self.memory = memory
        #: cumulative cycles this core spent executing (not idling)
        self.cycles_executed = 0.0
        #: cumulative instructions retired on this core
        self.instructions_retired = 0.0
        #: cumulative memory accesses issued
        self.accesses_issued = 0
        lat = machine.latencies
        # Extra stall beyond an L1 hit, indexed by serving level (1..3);
        # level 4 is priced dynamically by the memory channel.
        self._extra_stall = (0.0, 0.0, float(lat.l2 - lat.l1),
                             float(lat.l3 - lat.l1))
        self._l1_latency = float(lat.l1)

    def run(self, process: "object", cycle_budget: float,
            start_cycle: float = 0.0) -> float:
        """Execute ``process`` for up to ``cycle_budget`` cycles.

        ``process`` is a :class:`repro.sim.process.SimProcess` (duck
        typed to avoid a package cycle): it exposes ``finished``,
        ``current_phase()`` and ``account(accesses)``.

        Returns the cycles actually consumed — less than the budget only
        if the process ran to completion inside it.
        """
        if cycle_budget <= 0.0:
            return 0.0
        used = 0.0
        total_accesses = 0
        total_instructions = 0.0
        hier_access = self.hierarchy.access
        mem_access = self.memory.access
        extra = self._extra_stall
        l1_lat = self._l1_latency
        cid = self.core_id

        while used < cycle_budget and not process.finished:
            phase = process.current_phase()
            self.hierarchy.set_store_ratio(cid, phase.store_ratio)
            next_address = phase.pattern.next_address
            ipa = phase.instructions_per_access
            cpa = phase.compute_cycles_per_access
            inv_overlap = 1.0 / phase.overlap
            chunk = process.accesses_left_in_phase()
            done = 0
            while done < chunk and used < cycle_budget:
                level = hier_access(cid, next_address())
                if level == 1:
                    used += cpa
                elif level == 4:
                    stall = mem_access(start_cycle + used) - l1_lat
                    used += cpa + stall * inv_overlap
                else:
                    used += cpa + extra[level] * inv_overlap
                done += 1
            total_accesses += done
            total_instructions += done * ipa
            process.account(done)

        self.cycles_executed += used if used <= cycle_budget else cycle_budget
        self.accesses_issued += total_accesses
        self.instructions_retired += total_instructions
        return min(used, cycle_budget)

    def idle(self, cycles: float) -> None:
        """Account an idle stretch (no counters advance; hook for tests)."""

    def charge_overhead(self, cycles: float) -> None:
        """Charge runtime-overhead cycles to this core.

        Used by the perfmon layer to model the (small) cost of probing
        the PMU each period: the cycles are consumed but retire no
        instructions.
        """
        if cycles < 0:
            raise ValueError(f"overhead cycles must be >= 0, got {cycles}")
        self.cycles_executed += cycles

    def __repr__(self) -> str:
        return (
            f"Core({self.core_id}, cycles={self.cycles_executed:.0f}, "
            f"instructions={self.instructions_retired:.0f})"
        )
